"""Power-performance metrics."""

from .metrics import (
    MetricError,
    bips3_per_watt,
    delay_seconds,
    energy_delay_squared,
    relative_efficiency,
)

__all__ = [
    "bips3_per_watt",
    "delay_seconds",
    "energy_delay_squared",
    "relative_efficiency",
    "MetricError",
]
