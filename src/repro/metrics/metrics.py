"""Power-performance metrics (Section 4.2, footnote 2).

The paper evaluates designs by delay (inverse throughput over a notional
full run), power (watts) and ``bips^3/w`` — the voltage-invariant
efficiency metric derived from the cubic power/voltage relationship [2].
All functions accept scalars or numpy arrays.
"""

from __future__ import annotations

import numpy as np


class MetricError(ValueError):
    """Raised for non-physical metric inputs."""


def _check_positive(name: str, value) -> None:
    if np.any(np.asarray(value) <= 0):
        raise MetricError(f"{name} must be positive")


def delay_seconds(bips, ref_instructions: float):
    """End-to-end delay of a ``ref_instructions``-long run at ``bips``."""
    _check_positive("bips", bips)
    _check_positive("ref_instructions", ref_instructions)
    return ref_instructions / (np.asarray(bips, dtype=float) * 1e9)


def bips3_per_watt(bips, watts):
    """The paper's efficiency metric: inverse energy delay-squared."""
    _check_positive("watts", watts)
    bips = np.asarray(bips, dtype=float)
    if np.any(bips < 0):
        raise MetricError("bips must be non-negative")
    return bips**3 / np.asarray(watts, dtype=float)


def energy_delay_squared(bips, watts, ref_instructions: float):
    """ED^2 product over the full run — the inverse view of bips^3/w."""
    delay = delay_seconds(bips, ref_instructions)
    energy = np.asarray(watts, dtype=float) * delay
    return energy * delay**2


def relative_efficiency(bips, watts, baseline_bips: float, baseline_watts: float):
    """Efficiency normalized to a baseline design (Figures 5, 9)."""
    return bips3_per_watt(bips, watts) / bips3_per_watt(
        baseline_bips, baseline_watts
    )
