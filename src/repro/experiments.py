"""Experiment registry: one runner per paper table and figure.

Each runner regenerates the data behind one artifact of the paper's
evaluation (see DESIGN.md's experiment index) and renders it as text.
The registry powers both the CLI (``repro run F5a``) and the benchmark
harness (``benchmarks/bench_*.py``).

Experiment ids: T1-T4 (tables), F1-F9b (figures), X1-X12 (extensions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from .designspace import sampling_space
from .harness import (
    Series,
    get_scale,
    render_boxplot,
    render_boxplot_panel,
    render_series,
    render_table,
)
from .harness.scale import ScalePreset
from .regression import (
    boxplot_stats,
    error_table,
    fit_ols,
    linear_terms,
    main_effects_only_terms,
    performance_spec,
    power_spec,
    validate_model,
)
from .simulator import baseline_config
from .studies import StudyContext, depth, heterogeneity, pareto, search
from .workloads import REPRESENTATIVE


@dataclass
class ExperimentResult:
    """Rendered output + structured data of one experiment."""

    id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)


_CONTEXTS: Dict[str, StudyContext] = {}


def shared_context(
    scale: Optional[ScalePreset] = None,
    workers: int = 1,
    resilience=None,
    batch_size: Optional[int] = None,
) -> StudyContext:
    """Process-wide context per scale: one campaign serves every figure.

    ``resilience`` (a :class:`repro.harness.ResilienceConfig`) and
    ``batch_size`` (block size of the batched timing kernel) only take
    effect when the context for this scale is first built — the campaign
    runs once and is shared afterwards.
    """
    scale = scale or get_scale()
    if scale.name not in _CONTEXTS:
        _CONTEXTS[scale.name] = StudyContext(
            scale=scale,
            workers=workers,
            resilience=resilience,
            batch_size=batch_size,
        )
    return _CONTEXTS[scale.name]


# -- tables ---------------------------------------------------------------


def run_t1(ctx: StudyContext) -> ExperimentResult:
    """Table 1: the design space definition."""
    space = sampling_space()
    rows = []
    for parameter in space.parameters:
        values = parameter.values
        rows.append(
            [
                parameter.group,
                parameter.name,
                parameter.unit,
                f"{values[0]}..{values[-1]}",
                parameter.cardinality,
            ]
        )
    text = render_table(
        ["Set", "Parameter", "Measure", "Range", "|Si|"],
        rows,
        title=f"Table 1 design space: |S| = {len(space):,}",
    )
    return ExperimentResult("T1", "Design space", text, {"size": len(space)})


def run_t2(ctx: StudyContext) -> ExperimentResult:
    """Table 2: per-benchmark bips^3/w-maximizing architectures."""
    rows = pareto.table2(ctx, validate=True)
    table_rows = []
    for r in rows:
        p = r.point
        table_rows.append(
            [
                r.benchmark,
                int(p["depth"]),
                int(p["width"]),
                int(p["gpr_phys"]),
                int(p["br_resv"]),
                int(p["il1_kb"]),
                int(p["dl1_kb"]),
                p["l2_mb"],
                r.predicted_delay,
                f"{r.delay_error * 100:+.1f}%",
                r.predicted_watts,
                f"{r.power_error * 100:+.1f}%",
            ]
        )
    text = render_table(
        ["bench", "Depth", "Width", "Reg", "Resv", "I-$", "D-$", "L2-$",
         "Delay", "DErr", "Power", "PErr"],
        table_rows,
        title="Table 2: bips^3/w maximizing per-benchmark architectures",
    )
    return ExperimentResult(
        "T2", "Efficiency optima", text, {"rows": rows}
    )


def run_t3(ctx: StudyContext) -> ExperimentResult:
    """Table 3: the POWER4-like baseline."""
    config = baseline_config()
    summary = config.describe()
    rows = [[key, value] for key, value in summary.items()]
    text = render_table(
        ["setting", "value"], rows, title="Table 3: baseline architecture"
    )
    return ExperimentResult("T3", "Baseline architecture", text, {"config": summary})


def run_t4(ctx: StudyContext) -> ExperimentResult:
    """Table 4: K=4 compromise architectures."""
    clustering = heterogeneity.table4(ctx, k=4)
    rows = []
    for i, cluster in enumerate(clustering.clusters, start=1):
        p = cluster.point
        rows.append(
            [
                i,
                int(p["depth"]),
                int(p["width"]),
                int(p["gpr_phys"]),
                int(p["br_resv"]),
                int(p["il1_kb"]),
                int(p["dl1_kb"]),
                p["l2_mb"],
                cluster.mean_delay,
                cluster.mean_power,
                ",".join(cluster.benchmarks),
            ]
        )
    text = render_table(
        ["Cluster", "Depth", "Width", "Reg", "Resv", "I-$", "D-$", "L2-$",
         "AvgDelay", "AvgPower", "Benchmarks"],
        rows,
        title="Table 4: K=4 compromise architectures",
    )
    return ExperimentResult(
        "T4", "Compromise architectures", text, {"clustering": clustering}
    )


# -- figures ----------------------------------------------------------------


def run_f1(ctx: StudyContext) -> ExperimentResult:
    """Figure 1: validation error boxplots for random designs."""
    perf_panel, power_panel = {}, {}
    perf_summaries, power_summaries = [], []
    for benchmark in ctx.benchmarks:
        data = ctx.campaign.dataset(benchmark, "validation").columns()
        perf = validate_model(ctx.model(benchmark, "bips"), data, benchmark)
        power = validate_model(ctx.model(benchmark, "watts"), data, benchmark)
        perf_panel[benchmark] = perf.stats
        power_panel[benchmark] = power.stats
        perf_summaries.append(perf)
        power_summaries.append(power)
    text = "\n\n".join(
        [
            render_boxplot_panel(
                "Figure 1 (left): performance prediction error",
                perf_panel,
                percent=True,
            ),
            render_boxplot_panel(
                "Figure 1 (right): power prediction error", power_panel, percent=True
            ),
            f"medians (%): perf={error_table(perf_summaries)}",
            f"medians (%): power={error_table(power_summaries)}",
        ]
    )
    return ExperimentResult(
        "F1",
        "Random validation errors",
        text,
        {
            "perf_medians": error_table(perf_summaries),
            "power_medians": error_table(power_summaries),
        },
    )


def run_f2(ctx: StudyContext) -> ExperimentResult:
    """Figure 2: predicted delay/power characterization."""
    blocks = []
    data = {}
    for benchmark in REPRESENTATIVE:
        table = pareto.characterize(ctx, benchmark)
        trend = pareto.resource_trend(ctx, benchmark, "l2_mb")
        lines = [
            f"{benchmark}: {len(table)} designs, "
            f"delay {table.delay.min():.2f}..{table.delay.max():.2f}s, "
            f"power {table.watts.min():.1f}..{table.watts.max():.1f}W"
        ]
        for level, stats in trend.items():
            lines.append(
                f"  L2={level:>4}MB: mean delay {stats['mean_delay']:.2f}s, "
                f"mean power {stats['mean_power']:.1f}W"
            )
        blocks.append("\n".join(lines))
        data[benchmark] = {"trend_l2": trend}
    text = "Figure 2: design space characterization\n" + "\n".join(blocks)
    return ExperimentResult("F2", "Characterization", text, data)


def run_f3(ctx: StudyContext) -> ExperimentResult:
    """Figure 3: modeled vs simulated pareto optima."""
    blocks = []
    data = {}
    for benchmark in REPRESENTATIVE:
        validation = pareto.validate_frontier(ctx, benchmark)
        modeled = Series(
            f"{benchmark}-modeled",
            tuple(validation.model_delay),
            tuple(validation.model_power),
        )
        simulated = Series(
            f"{benchmark}-simulated",
            tuple(validation.simulated_delay),
            tuple(validation.simulated_power),
        )
        blocks += [render_series(modeled), render_series(simulated)]
        data[benchmark] = validation
    text = "Figure 3: pareto frontiers (delay, power)\n" + "\n".join(blocks)
    return ExperimentResult("F3", "Pareto frontiers", text, data)


def run_f4(ctx: StudyContext) -> ExperimentResult:
    """Figure 4: error distributions on the pareto frontier."""
    delay_panel, power_panel = {}, {}
    medians = {"delay": {}, "power": {}}
    for benchmark in ctx.benchmarks:
        validation = pareto.validate_frontier(ctx, benchmark)
        delay_panel[benchmark] = validation.delay_errors.stats
        power_panel[benchmark] = validation.power_errors.stats
        medians["delay"][benchmark] = validation.delay_errors.median_percent
        medians["power"][benchmark] = validation.power_errors.median_percent
    overall_delay = float(np.median(list(medians["delay"].values())))
    overall_power = float(np.median(list(medians["power"].values())))
    text = "\n\n".join(
        [
            render_boxplot_panel(
                "Figure 4 (left): frontier delay error", delay_panel, percent=True
            ),
            render_boxplot_panel(
                "Figure 4 (right): frontier power error", power_panel, percent=True
            ),
            f"overall medians: delay={overall_delay:.1f}% power={overall_power:.1f}%",
        ]
    )
    medians["overall_delay"] = overall_delay
    medians["overall_power"] = overall_power
    return ExperimentResult("F4", "Frontier errors", text, medians)


def run_f5a(ctx: StudyContext) -> ExperimentResult:
    """Figure 5a: original line + enhanced boxplots per depth."""
    summary = depth.suite_depth_summary(ctx)
    lines = ["Figure 5a: efficiency relative to original bips^3/w optimum"]
    line_series = Series(
        "original (line plot)",
        tuple(summary.depths),
        tuple(summary.original_relative),
    )
    lines.append(render_series(line_series))
    for d in summary.depths:
        stats = summary.distributions[d]
        bound = summary.bound_relative[d]
        exceed = summary.exceed_baseline_fraction[d]
        lines.append(
            render_boxplot(f"{int(d)}FO4", stats)
            + f" bound={bound:.2f} frac>baseline={exceed * 100:.0f}%"
        )
    return ExperimentResult(
        "F5a", "Depth efficiency", "\n".join(lines), {"summary": summary}
    )


def run_f5b(ctx: StudyContext) -> ExperimentResult:
    """Figure 5b: d-L1 sizes among the 95th-percentile designs."""
    distribution = depth.top_percentile_cache_distribution(ctx)
    sizes = sorted(next(iter(distribution.values())))
    rows = [
        [int(d)] + [f"{distribution[d][size] * 100:.1f}%" for size in sizes]
        for d in distribution
    ]
    text = render_table(
        ["FO4"] + [f"{int(s)}KB" for s in sizes],
        rows,
        title="Figure 5b: d-L1 size distribution of 95th percentile designs",
    )
    return ExperimentResult(
        "F5b", "Top-design cache sizes", text, {"distribution": distribution}
    )


def run_f6(ctx: StudyContext) -> ExperimentResult:
    """Figure 6: predicted vs simulated efficiency, both analyses."""
    validation = depth.validate_depth_study(ctx)
    depths = tuple(validation.depths)
    series = [
        Series("predicted-original", depths, tuple(validation.predicted_original)),
        Series("simulated-original", depths, tuple(validation.simulated_original)),
        Series("predicted-enhanced", depths, tuple(validation.predicted_enhanced)),
        Series("simulated-enhanced", depths, tuple(validation.simulated_enhanced)),
    ]
    text = "Figure 6: depth-study validation (relative bips^3/w)\n" + "\n".join(
        render_series(s) for s in series
    )
    return ExperimentResult("F6", "Depth validation", text, {"validation": validation})


def run_f7(ctx: StudyContext) -> ExperimentResult:
    """Figure 7: decomposed performance and power validation."""
    validation = depth.validate_depth_study(ctx)
    series = []
    for analysis in ("original", "enhanced"):
        series += [
            Series(f"bips-predicted-{analysis}", tuple(validation.depths),
                   tuple(validation.predicted_bips[analysis])),
            Series(f"bips-simulated-{analysis}", tuple(validation.depths),
                   tuple(validation.simulated_bips[analysis])),
            Series(f"watts-predicted-{analysis}", tuple(validation.depths),
                   tuple(validation.predicted_watts[analysis])),
            Series(f"watts-simulated-{analysis}", tuple(validation.depths),
                   tuple(validation.simulated_watts[analysis])),
        ]
    text = "Figure 7: decomposed depth validation\n" + "\n".join(
        render_series(s) for s in series
    )
    return ExperimentResult(
        "F7", "Decomposed validation", text, {"validation": validation}
    )


def run_f8(ctx: StudyContext) -> ExperimentResult:
    """Figure 8: delay/power of optima vs K=4 compromises."""
    mapping = heterogeneity.delay_power_map(ctx)
    lines = ["Figure 8: delay/power map (optima then compromises)"]
    for benchmark, (d, p) in mapping.optima.items():
        cluster = mapping.assignment[benchmark]
        lines.append(
            f"  {benchmark:7s}: delay={d:.2f}s power={p:.1f}W cluster={cluster + 1}"
        )
    for i, (d, p) in enumerate(mapping.compromises, start=1):
        lines.append(f"  compromise {i}: delay={d:.2f}s power={p:.1f}W")
    return ExperimentResult("F8", "Delay/power map", "\n".join(lines), {"map": mapping})


def run_f9a(ctx: StudyContext) -> ExperimentResult:
    """Figure 9a: predicted efficiency gains vs cluster count."""
    sweep = heterogeneity.k_sweep(ctx, simulate=False)
    lines = ["Figure 9a: predicted bips^3/w gains vs heterogeneity"]
    lines.append(
        render_series(
            Series("average", tuple(sweep.cluster_counts), tuple(sweep.average))
        )
    )
    for benchmark, gains in sweep.per_benchmark.items():
        lines.append(
            render_series(Series(benchmark, tuple(sweep.cluster_counts), tuple(gains)))
        )
    return ExperimentResult(
        "F9a", "Predicted heterogeneity gains", "\n".join(lines), {"sweep": sweep}
    )


def run_f9b(ctx: StudyContext) -> ExperimentResult:
    """Figure 9b: simulated efficiency gains vs cluster count."""
    sweep = heterogeneity.k_sweep(ctx, simulate=True)
    lines = ["Figure 9b: simulated bips^3/w gains vs heterogeneity"]
    lines.append(
        render_series(
            Series("average", tuple(sweep.cluster_counts), tuple(sweep.average))
        )
    )
    for benchmark, gains in sweep.per_benchmark.items():
        lines.append(
            render_series(Series(benchmark, tuple(sweep.cluster_counts), tuple(gains)))
        )
    return ExperimentResult(
        "F9b", "Simulated heterogeneity gains", "\n".join(lines), {"sweep": sweep}
    )


# -- extensions ---------------------------------------------------------------


def run_x1(ctx: StudyContext) -> ExperimentResult:
    """Ablation: model form (full vs no interactions vs linear)."""
    variants = {
        "paper (splines+interactions)": None,
        "no interactions": main_effects_only_terms(),
        "linear only": linear_terms(),
    }
    rows = []
    data = {}
    for label, terms in variants.items():
        perf_summaries, power_summaries = [], []
        for benchmark in ctx.benchmarks:
            train = ctx.campaign.dataset(benchmark, "train").columns()
            val = ctx.campaign.dataset(benchmark, "validation").columns()
            perf_model_spec = performance_spec()
            power_model_spec = power_spec()
            if terms is not None:
                perf_model_spec = perf_model_spec.with_terms(terms, name=label)
                power_model_spec = power_model_spec.with_terms(terms, name=label)
            perf_model = fit_ols(perf_model_spec, train)
            power_model = fit_ols(power_model_spec, train)
            perf_summaries.append(validate_model(perf_model, val, benchmark))
            power_summaries.append(validate_model(power_model, val, benchmark))
        perf_median = error_table(perf_summaries)["overall"]
        power_median = error_table(power_summaries)["overall"]
        rows.append([label, perf_median, power_median])
        data[label] = {"perf": perf_median, "power": power_median}
    text = render_table(
        ["model form", "perf median err (%)", "power median err (%)"],
        rows,
        title="X1: model-form ablation",
    )
    return ExperimentResult("X1", "Model ablation", text, data)


def run_x2(ctx: StudyContext) -> ExperimentResult:
    """Ablation: training sample size vs validation error."""
    campaign = ctx.campaign
    n_total = len(campaign.train_points)
    fractions = (0.25, 0.5, 0.75, 1.0)
    rows = []
    data = {}
    for fraction in fractions:
        n = max(40, int(n_total * fraction))
        n = min(n, n_total)
        perf_summaries = []
        for benchmark in ctx.benchmarks:
            dataset = campaign.dataset(benchmark, "train").subset(range(n))
            val = campaign.dataset(benchmark, "validation").columns()
            model = fit_ols(performance_spec(), dataset.columns())
            perf_summaries.append(validate_model(model, val, benchmark))
        median = error_table(perf_summaries)["overall"]
        rows.append([n, median])
        data[n] = median
    text = render_table(
        ["training samples", "perf median err (%)"],
        rows,
        title="X2: sample-size ablation",
    )
    return ExperimentResult("X2", "Sample-size ablation", text, data)


def run_x3(ctx: StudyContext) -> ExperimentResult:
    """Extension: heuristic search vs exhaustive prediction."""
    rows = []
    data = {}
    for benchmark in REPRESENTATIVE:
        comparison = search.compare_search_strategies(ctx, benchmark)
        rows.append(
            [
                benchmark,
                comparison.exhaustive_evaluations,
                comparison.descent.evaluations,
                f"{comparison.descent_quality * 100:.1f}%",
                comparison.genetic.evaluations,
                f"{comparison.genetic_quality * 100:.1f}%",
            ]
        )
        data[benchmark] = comparison
    text = render_table(
        ["bench", "exhaustive evals", "descent evals", "descent quality",
         "genetic evals", "genetic quality"],
        rows,
        title="X3: regression-guided heuristic search",
    )
    return ExperimentResult("X3", "Heuristic search", text, data)


def run_x4(ctx: StudyContext) -> ExperimentResult:
    """Extension: bips^3/w voltage invariance (footnote 2)."""
    from .power import invariance_study, split_power

    config = baseline_config()
    result = ctx.simulate("gzip", ctx.baseline)
    # rebuild a literal-config result for clean scaling
    parts = split_power(config, ctx.simulate("gzip", ctx.baseline))
    study = invariance_study(config, result)
    rows = [
        [f"{p.voltage_scale:.2f}", f"{p.bips:.2f}", f"{p.watts:.1f}",
         f"{p.bips_per_watt:.4f}", f"{p.bips3_per_watt:.4f}"]
        for p in study.points
    ]
    table = render_table(
        ["V scale", "bips", "watts", "bips/w", "bips^3/w"], rows,
        title="X4: voltage sweep of the baseline design (gzip)",
    )
    spreads = ", ".join(
        f"{name}={value:.2f}x" for name, value in study.spreads.items()
    )
    static_share = parts["static"] / parts["total"]
    text = "\n".join(
        [
            table,
            f"metric spreads over the sweep: {spreads}",
            f"static power share {static_share * 100:.0f}% — the residual "
            "bips^3/w drift comes entirely from leakage's sub-cubic "
            "voltage scaling",
        ]
    )
    return ExperimentResult("X4", "Voltage invariance", text, {
        "spreads": study.spreads, "static_share": static_share,
    })


def run_x5(ctx: StudyContext) -> ExperimentResult:
    """Extension: sampler comparison (UAR vs stratified vs Halton)."""
    from .designspace import sample_halton, sample_stratified, sample_uar
    from .harness.dataset import Dataset
    from .workloads import get_profile

    space = ctx.sampling_space
    scale = ctx.scale
    n = scale.n_train
    samplers = {
        "UAR (paper)": lambda: sample_uar(space, n, seed=scale.seed + 11),
        "stratified by depth": lambda: sample_stratified(
            space, "depth",
            max(1, n // space.parameter("depth").cardinality),
            seed=scale.seed + 11,
        ),
        "halton": lambda: sample_halton(space, n),
    }
    benchmarks = ("gzip", "mcf")
    rows = []
    data_out = {}
    for label, draw in samplers.items():
        points = draw()
        medians = []
        for benchmark in benchmarks:
            trace = ctx.simulator.trace_for(
                get_profile(benchmark), scale.trace_length, seed=scale.seed
            )
            results = ctx.simulator.simulate_batch(
                space, points, trace, batch_size=ctx.batch_size
            )
            dataset = Dataset.from_results(benchmark, space, points, results)
            model = fit_ols(performance_spec(), dataset.columns())
            validation = ctx.campaign.dataset(benchmark, "validation").columns()
            summary = validate_model(model, validation, benchmark)
            medians.append(summary.median_percent)
        rows.append([label, len(points)] + [f"{m:.2f}%" for m in medians])
        data_out[label] = dict(zip(benchmarks, medians))
    text = render_table(
        ["sampler", "n"] + [f"{b} perf err" for b in benchmarks],
        rows,
        title="X5: design-space sampler comparison (validation median error)",
    )
    return ExperimentResult("X5", "Sampler comparison", text, data_out)


def run_x6(ctx: StudyContext) -> ExperimentResult:
    """Extension: regression vs ANN comparator (Ipek et al. [5])."""
    import time as time_module

    from .baselines import ANNConfig, fit_ann
    from .regression import PREDICTORS, SqrtTransform, prediction_errors

    rows = []
    data_out = {}
    for benchmark in ("gzip", "mcf", "mesa"):
        train = ctx.campaign.dataset(benchmark, "train").columns()
        validation = ctx.campaign.dataset(benchmark, "validation").columns()

        started = time_module.perf_counter()
        regression = fit_ols(performance_spec(), train)
        regression_fit_s = time_module.perf_counter() - started
        regression_err = 100 * float(
            np.median(
                prediction_errors(validation["bips"], regression.predict(validation))
            )
        )

        started = time_module.perf_counter()
        ann = fit_ann(
            train, "bips", PREDICTORS,
            transform=SqrtTransform(),
            config=ANNConfig(hidden_units=16, epochs=2500, learning_rate=0.2, seed=3),
        )
        ann_fit_s = time_module.perf_counter() - started
        ann_err = 100 * float(
            np.median(prediction_errors(validation["bips"], ann.predict(validation)))
        )
        rows.append([
            benchmark,
            f"{regression_err:.2f}%", f"{regression_fit_s * 1000:.0f}ms",
            f"{ann_err:.2f}%", f"{ann_fit_s * 1000:.0f}ms",
        ])
        data_out[benchmark] = {
            "regression_err": regression_err,
            "ann_err": ann_err,
            "regression_fit_s": regression_fit_s,
            "ann_fit_s": ann_fit_s,
        }
    text = render_table(
        ["bench", "OLS err", "OLS fit", "ANN err", "ANN fit"],
        rows,
        title="X6: regression vs neural-network comparator (perf model)",
    )
    return ExperimentResult("X6", "ANN comparison", text, data_out)


def run_x7(ctx: StudyContext) -> ExperimentResult:
    """Extension: the future-work space (associativity + in-order issue)."""
    from .designspace import DesignEncoder, extended_space, sample_uar
    from .regression import extended_performance_spec, prediction_errors
    from .workloads import get_profile

    space = extended_space()
    scale = ctx.scale
    points = sample_uar(space, scale.n_train, seed=scale.seed + 13)
    encoder = DesignEncoder(space)
    matrix = encoder.encode(points)
    rows = []
    data_out = {}
    for benchmark in ("gzip", "mesa"):
        trace = ctx.simulator.trace_for(
            get_profile(benchmark), scale.trace_length, seed=scale.seed
        )
        results = ctx.simulator.simulate_batch(
            space, points, trace, batch_size=ctx.batch_size
        )
        data = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}
        data["bips"] = np.array([r.bips for r in results])
        holdout = max(10, len(points) // 5)
        train = {k: v[:-holdout] for k, v in data.items()}
        test = {k: v[-holdout:] for k, v in data.items()}
        model = fit_ols(extended_performance_spec(), train)
        errors = prediction_errors(test["bips"], model.predict(test))
        base = space.snap(
            depth=18, width=8, gpr_phys=80, br_resv=12, il1_kb=64,
            dl1_kb=32, l2_mb=2.0, dl1_assoc=2, in_order=0,
        )
        pair = encoder.encode([base, base.replace(in_order=1)])
        columns = {n: pair[:, j] for j, n in enumerate(encoder.feature_names)}
        ooo, ino = model.predict(columns)
        rows.append([
            benchmark, f"{model.r_squared:.3f}",
            f"{100 * float(np.median(errors)):.2f}%",
            f"{ooo / ino:.2f}x",
        ])
        data_out[benchmark] = {
            "r_squared": model.r_squared,
            "median_err": float(np.median(errors)),
            "ooo_gain": float(ooo / ino),
        }
    text = render_table(
        ["bench", "R^2", "holdout err", "OoO bips gain @ width 8"],
        rows,
        title="X7: extended design space (dl1 associativity + issue discipline)",
    )
    return ExperimentResult("X7", "Extended space", text, data_out)


def run_x8(ctx: StudyContext) -> ExperimentResult:
    """Extension: idealized next-line prefetching, per benchmark."""
    from .workloads import get_profile

    scale = ctx.scale
    rows = []
    data_out = {}
    config_off = baseline_config()
    config_on = baseline_config().with_overrides(prefetch=True)
    for benchmark in ctx.benchmarks:
        trace = ctx.simulator.trace_for(
            get_profile(benchmark), scale.trace_length, seed=scale.seed
        )
        off = ctx.simulator.simulate(trace, config_off)
        on = ctx.simulator.simulate(trace, config_on)
        speedup = on.bips / off.bips
        efficiency_gain = on.bips3_per_watt / off.bips3_per_watt
        coverage = (
            on.counts.prefetch_covered / off.counts.dl1_misses
            if off.counts.dl1_misses
            else 0.0
        )
        rows.append([
            benchmark, f"{off.bips:.2f}", f"{on.bips:.2f}",
            f"{speedup:.2f}x", f"{coverage * 100:.0f}%",
            f"{efficiency_gain:.2f}x",
        ])
        data_out[benchmark] = {
            "speedup": speedup,
            "coverage": coverage,
            "efficiency_gain": efficiency_gain,
        }
    text = render_table(
        ["bench", "bips off", "bips on", "speedup", "miss coverage",
         "bips^3/w gain"],
        rows,
        title="X8: idealized next-line prefetching at the baseline design",
    )
    return ExperimentResult("X8", "Prefetching", text, data_out)


def run_x9(ctx: StudyContext) -> ExperimentResult:
    """Extension: bootstrap robustness of study conclusions."""
    from .studies import robustness

    replicates = 15
    rows = []
    data_out = {}
    for benchmark in ("ammp", "mcf", "gzip"):
        stability = robustness.optimum_stability(
            ctx, benchmark, replicates=replicates, seed=5
        )
        agreement = stability.parameter_agreement
        rows.append([
            benchmark,
            f"{stability.modal_fraction * 100:.0f}%",
            f"{agreement['depth'] * 100:.0f}%",
            f"{agreement['width'] * 100:.0f}%",
            f"{agreement['l2_mb'] * 100:.0f}%",
            f"{stability.efficiency_cv * 100:.1f}%",
        ])
        data_out[benchmark] = stability
    table = render_table(
        ["bench", "modal design", "depth agree", "width agree",
         "L2 agree", "eff. CV"],
        rows,
        title=f"X9: bootstrap stability of Table 2 optima ({replicates} replicates)",
    )
    depth_stability = robustness.depth_optimum_stability(
        ctx, replicates=replicates, seed=5, benchmarks=["ammp", "mcf", "gzip"]
    )
    histogram = " ".join(
        f"{int(d)}:{f * 100:.0f}%"
        for d, f in depth_stability.depth_histogram.items()
        if f
    )
    text = "\n".join(
        [
            table,
            f"suite depth optimum: nominal {int(depth_stability.nominal_depth)}FO4; "
            f"bootstrap histogram {histogram}; "
            f"{depth_stability.within_one_level * 100:.0f}% of replicates within "
            "one grid level",
        ]
    )
    data_out["depth"] = depth_stability
    return ExperimentResult("X9", "Conclusion robustness", text, data_out)


def run_x10(ctx: StudyContext) -> ExperimentResult:
    """Extension: scheduling the suite on a heterogeneous CMP."""
    from .studies import scheduling

    comparison = scheduling.compare_cmp_designs(ctx, core_types=4)
    rows = []
    for benchmark, core in comparison.heterogeneous.assignment.items():
        efficiency = comparison.heterogeneous.per_benchmark_efficiency[benchmark]
        homo_eff = comparison.homogeneous.per_benchmark_efficiency[benchmark]
        point = comparison.heterogeneous.cores[core]
        rows.append([
            benchmark,
            f"{int(point['depth'])}/{int(point['width'])}/{point['l2_mb']}",
            f"{efficiency / homo_eff:.2f}x",
        ])
    table = render_table(
        ["bench", "core (FO4/width/L2MB)", "gain vs homogeneous"],
        rows,
        title="X10: optimal scheduling on the K=4 heterogeneous CMP",
    )
    text = "\n".join(
        [
            table,
            f"geomean bips^3/w: heterogeneous+optimal scheduling is "
            f"{comparison.heterogeneity_gain:.2f}x the homogeneous CMP; "
            f"optimal assignment is {comparison.scheduling_gain:.2f}x naive "
            "assignment on the same cores",
        ]
    )
    return ExperimentResult("X10", "CMP scheduling", text, {"comparison": comparison})


def run_x11(ctx: StudyContext) -> ExperimentResult:
    """Extension: which design parameters matter, per benchmark."""
    from .regression import predictor_importance

    rows = []
    data_out = {}
    for benchmark in ctx.benchmarks:
        data = ctx.campaign.dataset(benchmark, "train").columns()
        perf = predictor_importance(performance_spec(), data)
        power = predictor_importance(power_spec(), data)
        perf_shares = perf.shares()
        rows.append(
            [benchmark]
            + [f"{perf_shares[name] * 100:.0f}%" for name in
               ("depth", "width", "gpr_phys", "il1_kb", "dl1_kb", "l2_mb")]
            + [perf.ranked()[0], power.ranked()[0]]
        )
        data_out[benchmark] = {"perf": perf, "power": power}
    text = render_table(
        ["bench", "depth", "width", "regs", "i$", "d$", "l2",
         "top perf driver", "top power driver"],
        rows,
        title="X11: performance-variance share per design parameter "
              "(drop-one partial R^2)",
    )
    return ExperimentResult("X11", "Parameter importance", text, data_out)


def run_x12(ctx: StudyContext) -> ExperimentResult:
    """Extension: mechanistic interval model vs trained regression."""
    from .baselines import interval_model_for
    from .designspace import DesignEncoder
    from .regression import prediction_errors, spearman
    from .simulator import config_from_point
    from .workloads import get_profile

    scale = ctx.scale
    space = ctx.exploration_space
    rows = []
    data_out = {}
    n_eval = min(25, scale.n_validation)
    for benchmark in ("gzip", "mcf", "mesa", "gcc"):
        trace = ctx.simulator.trace_for(
            get_profile(benchmark), scale.trace_length, seed=scale.seed
        )
        interval = interval_model_for(trace)
        points = ctx.exploration_points()[:n_eval]
        actual = np.array(
            [r.bips for r in ctx.simulate_many(benchmark, points)]
        )
        mech = np.array(
            [interval.predict_bips(config_from_point(space, p)) for p in points]
        )
        encoder = DesignEncoder(space)
        matrix = encoder.encode(points)
        columns = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}
        learned = ctx.model(benchmark, "bips").predict(columns)
        mech_err = 100 * float(np.median(prediction_errors(actual, mech)))
        learned_err = 100 * float(np.median(prediction_errors(actual, learned)))
        rows.append([
            benchmark,
            f"{mech_err:.1f}%", f"{spearman(mech, actual):.2f}",
            f"{learned_err:.1f}%", f"{spearman(learned, actual):.2f}",
        ])
        data_out[benchmark] = {
            "mechanistic_err": mech_err,
            "regression_err": learned_err,
        }
    text = "\n".join([
        render_table(
            ["bench", "interval err", "interval rank-r",
             "regression err", "regression rank-r"],
            rows,
            title="X12: zero-training mechanistic model vs trained regression "
                  f"({n_eval} random designs each)",
        ),
        "the interval model costs zero simulations but pays in accuracy and "
        "ranking reliability — the gap the paper's sampled-training approach "
        "closes with ~1,000 simulations amortized over every later query",
    ])
    return ExperimentResult("X12", "Mechanistic baseline", text, data_out)


EXPERIMENTS: Dict[str, Callable[[StudyContext], ExperimentResult]] = {
    "T1": run_t1,
    "F1": run_f1,
    "F2": run_f2,
    "F3": run_f3,
    "F4": run_f4,
    "T2": run_t2,
    "T3": run_t3,
    "F5a": run_f5a,
    "F5b": run_f5b,
    "F6": run_f6,
    "F7": run_f7,
    "T4": run_t4,
    "F8": run_f8,
    "F9a": run_f9a,
    "F9b": run_f9b,
    "X1": run_x1,
    "X2": run_x2,
    "X3": run_x3,
    "X4": run_x4,
    "X5": run_x5,
    "X6": run_x6,
    "X7": run_x7,
    "X8": run_x8,
    "X9": run_x9,
    "X10": run_x10,
    "X11": run_x11,
    "X12": run_x12,
}


def run_experiment(
    experiment_id: str,
    ctx: Optional[StudyContext] = None,
    scale: Optional[ScalePreset] = None,
) -> ExperimentResult:
    """Run one experiment by id against the shared context."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"choices are {sorted(EXPERIMENTS)}"
        ) from None
    return runner(ctx or shared_context(scale))
