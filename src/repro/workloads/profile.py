"""Workload profiles.

A :class:`WorkloadProfile` is the statistical description of one benchmark:
instruction mix, dependence structure (ILP), branch behaviour, data and
instruction locality.  The synthetic trace generator realizes a profile as
a concrete trace; the nine-benchmark suite in :mod:`repro.workloads.suite`
tunes one profile per paper benchmark.

These profiles substitute for the paper's proprietary sampled PowerPC
traces (Section 2.2).  They are chosen so that each benchmark exhibits the
qualitative character the paper reports — e.g. mcf is memory-bound with a
multi-megabyte working set, gzip is compute-bound with a small footprint,
mesa has abundant instruction-level parallelism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from .trace import OP_CODES


class ProfileError(ValueError):
    """Raised for inconsistent profile definitions."""


#: A reuse stratum: (probability mass, upper reuse-distance limit in
#: blocks).  Distances within a stratum are log-uniform between the
#: previous stratum's limit and this one's.
ReuseStrata = Tuple[Tuple[float, float], ...]


def validate_strata(name: str, label: str, strata: ReuseStrata) -> None:
    """Check a reuse-distance specification is a proper distribution."""
    if not strata:
        raise ProfileError(f"{name}: {label} must have at least one stratum")
    total = sum(weight for weight, _ in strata)
    if abs(total - 1.0) > 1e-9:
        raise ProfileError(f"{name}: {label} weights sum to {total}, expected 1.0")
    previous = 0.0
    for weight, limit in strata:
        if weight < 0:
            raise ProfileError(f"{name}: {label} has a negative weight")
        if limit <= previous:
            raise ProfileError(
                f"{name}: {label} limits must be strictly increasing "
                f"({limit} after {previous})"
            )
        previous = limit


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of a benchmark program.

    Attributes
    ----------
    name, description:
        Identification; ``name`` keys caches and results.
    mix:
        Op-class name -> fraction of dynamic instructions.  Must sum to 1.
    dep_distance_mean:
        Mean register-dependence distance (geometric).  Larger values mean
        producers sit further back, exposing more instruction-level
        parallelism to a wide window.
    second_operand_rate:
        Probability an instruction carries a second register source.
    load_chain_rate:
        Probability a load's address depends on the previous load
        (pointer chasing; serializes the memory stream as in mcf).
    branch_bias:
        Outcome persistence of *biased* static branches: the probability a
        branch repeats its previous outcome.  A last-outcome (1-bit BHT)
        predictor's accuracy on such a site equals this persistence.
    unpredictable_rate:
        Fraction of static branches that are essentially random (p=0.5).
    static_branches:
        Number of distinct static branch sites.
    data_reuse_strata:
        LRU stack-distance distribution of data accesses, as
        (weight, limit-in-blocks) strata; determines the benchmark's
        miss-rate-versus-cache-size curve (its cacheability signature).
    instr_reuse_strata:
        Reuse-distance distribution of instruction fetch blocks; the
        i-cache analogue of ``data_reuse_strata``.
    ifetch_run_mean:
        Mean dynamic instructions fetched before crossing into a new fetch
        block (sequential run length of the front end).
    data_footprint_blocks:
        Distinct 128-byte data blocks the benchmark touches.
    data_zipf:
        Zipf popularity exponent over data blocks; higher = hotter hot set
        = better cacheability.
    sequential_run_mean:
        Mean length of sequential block runs in the data stream (spatial
        locality / streaming behaviour).
    instr_footprint_blocks:
        Distinct 128-byte instruction blocks (static code size proxy).
    loop_length_mean:
        Mean loop body length in instruction blocks.
    loop_iterations_mean:
        Mean iterations per loop visit; large values concentrate fetch in
        small regions (i-cache friendly).
    ref_instructions:
        Notional full-run dynamic instruction count; converts simulated
        instruction rate into end-to-end delay seconds, the paper's delay
        axis.
    """

    name: str
    description: str
    mix: Dict[str, float]
    dep_distance_mean: float
    second_operand_rate: float
    load_chain_rate: float
    branch_bias: float
    unpredictable_rate: float
    static_branches: int
    data_reuse_strata: ReuseStrata
    instr_reuse_strata: ReuseStrata
    ifetch_run_mean: float
    data_footprint_blocks: int
    data_zipf: float
    sequential_run_mean: float
    instr_footprint_blocks: int
    loop_length_mean: float
    loop_iterations_mean: float
    ref_instructions: float
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("profile name must be non-empty")
        unknown = set(self.mix) - set(OP_CODES)
        if unknown:
            raise ProfileError(f"{self.name}: unknown op classes {sorted(unknown)}")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ProfileError(f"{self.name}: mix sums to {total}, expected 1.0")
        if any(v < 0 for v in self.mix.values()):
            raise ProfileError(f"{self.name}: negative mix fraction")
        if self.dep_distance_mean < 1:
            raise ProfileError(f"{self.name}: dep_distance_mean must be >= 1")
        for label, value in (
            ("second_operand_rate", self.second_operand_rate),
            ("load_chain_rate", self.load_chain_rate),
            ("unpredictable_rate", self.unpredictable_rate),
        ):
            if not 0 <= value <= 1:
                raise ProfileError(f"{self.name}: {label} must be in [0, 1]")
        if not 0.5 <= self.branch_bias <= 1:
            raise ProfileError(f"{self.name}: branch_bias must be in [0.5, 1]")
        if self.static_branches < 1:
            raise ProfileError(f"{self.name}: needs at least one static branch")
        validate_strata(self.name, "data_reuse_strata", self.data_reuse_strata)
        validate_strata(self.name, "instr_reuse_strata", self.instr_reuse_strata)
        if self.ifetch_run_mean < 1:
            raise ProfileError(f"{self.name}: ifetch_run_mean must be >= 1")
        if self.data_footprint_blocks < 1 or self.instr_footprint_blocks < 1:
            raise ProfileError(f"{self.name}: footprints must be positive")
        if self.data_zipf < 0:
            raise ProfileError(f"{self.name}: data_zipf must be non-negative")
        if self.sequential_run_mean < 1:
            raise ProfileError(f"{self.name}: sequential_run_mean must be >= 1")
        if self.loop_length_mean < 1 or self.loop_iterations_mean < 1:
            raise ProfileError(f"{self.name}: loop shape parameters must be >= 1")
        if self.ref_instructions <= 0:
            raise ProfileError(f"{self.name}: ref_instructions must be positive")

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that touch data memory."""
        return self.mix.get("load", 0.0) + self.mix.get("store", 0.0)

    @property
    def branch_fraction(self) -> float:
        return self.mix.get("branch", 0.0)

    @property
    def fp_fraction(self) -> float:
        return self.mix.get("fp", 0.0) + self.mix.get("fp_div", 0.0)

    def data_footprint_bytes(self) -> int:
        return self.data_footprint_blocks * 128

    def instr_footprint_bytes(self) -> int:
        return self.instr_footprint_blocks * 128

    def data_miss_rate(self, capacity_blocks: float) -> float:
        """Expected data miss rate of an LRU cache of ``capacity_blocks``."""
        return reuse_survival(self.data_reuse_strata, capacity_blocks)

    def instr_miss_rate(self, capacity_blocks: float) -> float:
        """Expected fetch-block miss rate at ``capacity_blocks``."""
        return reuse_survival(self.instr_reuse_strata, capacity_blocks)


def reuse_survival(strata: ReuseStrata, capacity_blocks: float) -> float:
    """P(reuse distance >= capacity) under a log-uniform strata model.

    This is the analytical miss-rate curve implied by a profile's reuse
    distribution; the stack-distance memory model realizes it empirically.
    """
    if capacity_blocks <= 0:
        return 1.0
    survival = 0.0
    previous = 1.0  # distances start at 1 block
    for weight, limit in strata:
        lo, hi = previous, limit
        if capacity_blocks <= lo:
            survival += weight
        elif capacity_blocks < hi:
            span = math.log(hi) - math.log(lo)
            if span > 0:
                survival += weight * (math.log(hi) - math.log(capacity_blocks)) / span
        previous = limit
    return survival
