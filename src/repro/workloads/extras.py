"""Supplementary workload profiles beyond the paper's nine benchmarks.

The paper notes its framework "may be generally applied to other
workloads with similar accuracy" (Section 2.2).  These profiles model four
additional SPEC2000-class programs with characters distinct from the main
suite, for generality experiments and user reference:

- **art** — FP neural-network simulation: tiny kernel, brutal data cache
  behaviour (large array swept repeatedly, low spatial locality).
- **swim** — FP stencil code: heavily streaming like applu but wider
  arrays and near-perfect branches.
- **vpr** — integer place & route: twolf-like but more pointer chasing.
- **crafty** — chess search: branchy, deep recursion, working set that
  fits in generous L1s, big-ish code.

They are *not* part of :data:`repro.workloads.SUITE` (the paper's studies
use exactly the paper's nine); access them via :data:`EXTRA_SUITE` or
:func:`get_extra_profile`.
"""

from __future__ import annotations

from typing import Dict

from .profile import WorkloadProfile

ART = WorkloadProfile(
    name="art",
    description="SPEC2000 FP: neural net; small kernel, cache-hostile sweeps",
    mix={"fp": 0.34, "fp_div": 0.01, "int": 0.20, "load": 0.30, "store": 0.06,
         "branch": 0.09},
    dep_distance_mean=9.0,
    second_operand_rate=0.50,
    load_chain_rate=0.05,
    branch_bias=0.96,
    unpredictable_rate=0.04,
    static_branches=96,
    data_reuse_strata=((0.42, 28), (0.06, 512), (0.04, 30000), (0.48, 300000)),
    instr_reuse_strata=((0.99, 16), (0.01, 48)),
    ifetch_run_mean=13.0,
    data_footprint_blocks=3 * 1024 * 8,  # ~3MB swept repeatedly
    data_zipf=0.10,
    sequential_run_mean=10.0,
    instr_footprint_blocks=40,
    loop_length_mean=5.0,
    loop_iterations_mean=120.0,
    ref_instructions=1.8e9,
)

SWIM = WorkloadProfile(
    name="swim",
    description="SPEC2000 FP: shallow-water stencil; wide streaming arrays",
    mix={"fp": 0.38, "fp_div": 0.02, "int": 0.16, "load": 0.28, "store": 0.10,
         "branch": 0.06},
    dep_distance_mean=13.0,
    second_operand_rate=0.55,
    load_chain_rate=0.01,
    branch_bias=0.97,
    unpredictable_rate=0.02,
    static_branches=64,
    data_reuse_strata=((0.58, 40), (0.04, 1024), (0.02, 40000), (0.36, 600000)),
    instr_reuse_strata=((0.99, 12), (0.01, 40)),
    ifetch_run_mean=15.0,
    data_footprint_blocks=12 * 1024 * 8,  # ~12MB of arrays
    data_zipf=0.10,
    sequential_run_mean=30.0,
    instr_footprint_blocks=36,
    loop_length_mean=5.0,
    loop_iterations_mean=150.0,
    ref_instructions=2.4e9,
)

VPR = WorkloadProfile(
    name="vpr",
    description="SPEC2000 INT: FPGA place & route; pointer-heavy graph walks",
    mix={"int": 0.42, "int_mul": 0.03, "load": 0.28, "store": 0.08,
         "branch": 0.19},
    dep_distance_mean=3.4,
    second_operand_rate=0.45,
    load_chain_rate=0.28,
    branch_bias=0.90,
    unpredictable_rate=0.22,
    static_branches=768,
    data_reuse_strata=((0.66, 48), (0.12, 900), (0.16, 10000), (0.06, 90000)),
    instr_reuse_strata=((0.95, 48), (0.05, 200)),
    ifetch_run_mean=9.0,
    data_footprint_blocks=10240,  # ~1.25MB
    data_zipf=0.95,
    sequential_run_mean=2.0,
    instr_footprint_blocks=220,
    loop_length_mean=12.0,
    loop_iterations_mean=25.0,
    ref_instructions=1.7e9,
)

CRAFTY = WorkloadProfile(
    name="crafty",
    description="SPEC2000 INT: chess search; branchy, L1-resident data",
    mix={"int": 0.52, "int_mul": 0.02, "load": 0.21, "store": 0.07,
         "branch": 0.18},
    dep_distance_mean=3.8,
    second_operand_rate=0.50,
    load_chain_rate=0.08,
    branch_bias=0.91,
    unpredictable_rate=0.16,
    static_branches=1536,
    data_reuse_strata=((0.90, 56), (0.08, 500), (0.02, 2000)),
    instr_reuse_strata=((0.85, 80), (0.12, 500), (0.03, 1400)),
    ifetch_run_mean=8.0,
    data_footprint_blocks=2048,  # ~256KB
    data_zipf=1.20,
    sequential_run_mean=4.0,
    instr_footprint_blocks=700,
    loop_length_mean=14.0,
    loop_iterations_mean=10.0,
    ref_instructions=1.9e9,
)

#: The supplementary suite, keyed by name.
EXTRA_SUITE: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in (ART, SWIM, VPR, CRAFTY)
}


def get_extra_profile(name: str) -> WorkloadProfile:
    """Supplementary profile by name."""
    try:
        return EXTRA_SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown extra benchmark {name!r}; available: {sorted(EXTRA_SUITE)}"
        ) from None
