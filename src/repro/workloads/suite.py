"""The nine-benchmark suite (Section 2.2).

One profile per paper benchmark: SPECjbb plus eight SPEC2000 programs
(ammp, applu, equake, gcc, gzip, mcf, mesa, twolf).  Parameters are tuned
so each benchmark reproduces its qualitative character from the paper:

- **ammp** — FP with good ILP and a cacheable multi-MB hot set.
- **applu / equake** — FP streaming codes with little reuse; the smallest
  caches are efficiency-optimal for them in Table 2.
- **gcc** — branchy integer code, low ILP, large instruction footprint.
- **gzip** — compute-bound integer code with a tiny working set.
- **jbb** — server workload: large code footprint, decent parallelism.
- **mcf** — memory-bound pointer chasing over a ~16MB working set; the only
  benchmark whose Table 2 optimum carries a 4MB L2 (Figure 2 shows its
  delay collapsing from 5.3s to 1.9s as L2 grows 0.25 -> 4MB).
- **mesa** — abundant ILP, modest data set, large code footprint.
- **twolf** — moderate integer code with a ~1MB working set.

Reuse strata are (probability, limit-in-128B-blocks) pairs — the
benchmark's miss-rate-versus-capacity signature.  For orientation within
the Table 1 space: d-L1 spans 64..1024 blocks (8..128KB), i-L1 spans
128..2048 blocks (16..256KB) and L2 spans 2048..32768 blocks (0.25..4MB).
``ref_instructions`` are notional full-run dynamic instruction counts used
to convert instruction rate into end-to-end delay seconds.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .profile import WorkloadProfile

AMMP = WorkloadProfile(
    name="ammp",
    description="SPEC2000 FP: molecular dynamics; good ILP, cacheable hot set",
    mix={"fp": 0.32, "fp_div": 0.02, "int": 0.22, "load": 0.26, "store": 0.10,
         "branch": 0.08},
    dep_distance_mean=14.0,
    second_operand_rate=0.50,
    load_chain_rate=0.04,
    branch_bias=0.94,
    unpredictable_rate=0.08,
    static_branches=256,
    data_reuse_strata=((0.90, 40), (0.06, 800), (0.03, 12000), (0.01, 100000)),
    instr_reuse_strata=((0.97, 24), (0.03, 180)),
    ifetch_run_mean=12.0,
    data_footprint_blocks=24576,  # ~3MB
    data_zipf=1.10,
    sequential_run_mean=4.0,
    instr_footprint_blocks=200,
    loop_length_mean=8.0,
    loop_iterations_mean=50.0,
    ref_instructions=2.5e9,
)

APPLU = WorkloadProfile(
    name="applu",
    description="SPEC2000 FP: PDE solver; streaming with little reuse",
    mix={"fp": 0.35, "fp_div": 0.03, "int": 0.18, "load": 0.27, "store": 0.09,
         "branch": 0.08},
    dep_distance_mean=12.5,
    second_operand_rate=0.55,
    load_chain_rate=0.016,
    branch_bias=0.96,
    unpredictable_rate=0.05,
    static_branches=128,
    data_reuse_strata=((0.55, 32), (0.05, 1024), (0.02, 40000), (0.38, 500000)),
    instr_reuse_strata=((0.98, 16), (0.02, 110)),
    ifetch_run_mean=14.0,
    data_footprint_blocks=65536,  # ~8MB
    data_zipf=0.20,
    sequential_run_mean=24.0,
    instr_footprint_blocks=120,
    loop_length_mean=6.0,
    loop_iterations_mean=80.0,
    ref_instructions=2.2e9,
)

EQUAKE = WorkloadProfile(
    name="equake",
    description="SPEC2000 FP: earthquake simulation; streaming, sparse",
    mix={"fp": 0.30, "fp_div": 0.02, "int": 0.20, "load": 0.30, "store": 0.08,
         "branch": 0.10},
    dep_distance_mean=10.0,
    second_operand_rate=0.50,
    load_chain_rate=0.06,
    branch_bias=0.94,
    unpredictable_rate=0.08,
    static_branches=192,
    data_reuse_strata=((0.50, 40), (0.10, 1024), (0.08, 16000), (0.32, 300000)),
    instr_reuse_strata=((0.96, 32), (0.04, 300)),
    ifetch_run_mean=12.0,
    data_footprint_blocks=49152,  # ~6MB
    data_zipf=0.35,
    sequential_run_mean=12.0,
    instr_footprint_blocks=320,
    loop_length_mean=10.0,
    loop_iterations_mean=40.0,
    ref_instructions=2.0e9,
)

GCC = WorkloadProfile(
    name="gcc",
    description="SPEC2000 INT: compiler; branchy, low ILP, big code",
    mix={"int": 0.45, "int_mul": 0.02, "load": 0.24, "store": 0.11,
         "branch": 0.18},
    dep_distance_mean=3.6,
    second_operand_rate=0.45,
    load_chain_rate=0.12,
    branch_bias=0.90,
    unpredictable_rate=0.30,
    static_branches=2048,
    data_reuse_strata=((0.70, 56), (0.15, 700), (0.12, 6000), (0.03, 60000)),
    instr_reuse_strata=((0.75, 90), (0.15, 500), (0.08, 1300), (0.02, 4000)),
    ifetch_run_mean=8.0,
    data_footprint_blocks=12288,  # ~1.5MB
    data_zipf=0.90,
    sequential_run_mean=3.0,
    instr_footprint_blocks=1400,
    loop_length_mean=20.0,
    loop_iterations_mean=6.0,
    ref_instructions=1.8e9,
)

GZIP = WorkloadProfile(
    name="gzip",
    description="SPEC2000 INT: compression; compute-bound, tiny working set",
    mix={"int": 0.50, "int_mul": 0.03, "load": 0.22, "store": 0.09,
         "branch": 0.16},
    dep_distance_mean=4.3,
    second_operand_rate=0.45,
    load_chain_rate=0.04,
    branch_bias=0.92,
    unpredictable_rate=0.22,
    static_branches=512,
    data_reuse_strata=((0.88, 48), (0.10, 600), (0.02, 1500)),
    instr_reuse_strata=((0.97, 40), (0.03, 70)),
    ifetch_run_mean=9.0,
    data_footprint_blocks=1536,  # ~192KB
    data_zipf=1.30,
    sequential_run_mean=6.0,
    instr_footprint_blocks=80,
    loop_length_mean=6.0,
    loop_iterations_mean=60.0,
    ref_instructions=1.5e9,
)

JBB = WorkloadProfile(
    name="jbb",
    description="SPECjbb: Java server; large code footprint, decent ILP",
    mix={"int": 0.42, "int_mul": 0.02, "fp": 0.02, "load": 0.26, "store": 0.12,
         "branch": 0.16},
    dep_distance_mean=11.0,
    second_operand_rate=0.45,
    load_chain_rate=0.10,
    branch_bias=0.92,
    unpredictable_rate=0.12,
    static_branches=4096,
    data_reuse_strata=((0.68, 52), (0.12, 800), (0.14, 8000), (0.06, 80000)),
    instr_reuse_strata=((0.66, 100), (0.20, 600), (0.10, 1500), (0.04, 5000)),
    ifetch_run_mean=8.0,
    data_footprint_blocks=20480,  # ~2.5MB
    data_zipf=0.85,
    sequential_run_mean=3.0,
    instr_footprint_blocks=2000,
    loop_length_mean=16.0,
    loop_iterations_mean=8.0,
    ref_instructions=2.0e9,
)

MCF = WorkloadProfile(
    name="mcf",
    description="SPEC2000 INT: network simplex; memory-bound pointer chasing",
    mix={"int": 0.35, "int_mul": 0.02, "load": 0.35, "store": 0.09,
         "branch": 0.19},
    dep_distance_mean=2.6,
    second_operand_rate=0.40,
    load_chain_rate=0.40,
    branch_bias=0.90,
    unpredictable_rate=0.25,
    static_branches=512,
    data_reuse_strata=((0.45, 48), (0.12, 1500), (0.28, 26000), (0.15, 400000)),
    instr_reuse_strata=((0.985, 20), (0.015, 60)),
    ifetch_run_mean=10.0,
    data_footprint_blocks=131072,  # ~16MB
    data_zipf=0.55,
    sequential_run_mean=2.0,
    instr_footprint_blocks=60,
    loop_length_mean=8.0,
    loop_iterations_mean=30.0,
    ref_instructions=1.2e9,
)

MESA = WorkloadProfile(
    name="mesa",
    description="SPEC2000 FP: 3D graphics; abundant ILP, large code",
    mix={"fp": 0.28, "int_mul": 0.02, "int": 0.30, "load": 0.22, "store": 0.08,
         "branch": 0.10},
    dep_distance_mean=22.0,
    second_operand_rate=0.55,
    load_chain_rate=0.02,
    branch_bias=0.97,
    unpredictable_rate=0.03,
    static_branches=384,
    data_reuse_strata=((0.82, 44), (0.12, 500), (0.05, 3500), (0.01, 30000)),
    instr_reuse_strata=((0.80, 120), (0.15, 900), (0.04, 1800), (0.01, 3000)),
    ifetch_run_mean=11.0,
    data_footprint_blocks=4096,  # ~512KB
    data_zipf=1.00,
    sequential_run_mean=8.0,
    instr_footprint_blocks=1600,
    loop_length_mean=30.0,
    loop_iterations_mean=12.0,
    ref_instructions=3.0e9,
)

TWOLF = WorkloadProfile(
    name="twolf",
    description="SPEC2000 INT: place & route; moderate ILP, ~1MB working set",
    mix={"int": 0.44, "int_mul": 0.04, "load": 0.26, "store": 0.08,
         "branch": 0.18},
    dep_distance_mean=4.2,
    second_operand_rate=0.45,
    load_chain_rate=0.16,
    branch_bias=0.91,
    unpredictable_rate=0.20,
    static_branches=1024,
    data_reuse_strata=((0.72, 48), (0.12, 900), (0.13, 7000), (0.03, 50000)),
    instr_reuse_strata=((0.96, 40), (0.04, 140)),
    ifetch_run_mean=9.0,
    data_footprint_blocks=8192,  # ~1MB
    data_zipf=1.00,
    sequential_run_mean=2.0,
    instr_footprint_blocks=150,
    loop_length_mean=10.0,
    loop_iterations_mean=40.0,
    ref_instructions=1.6e9,
)

#: The paper's nine benchmarks in its reporting order.
SUITE: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (AMMP, APPLU, EQUAKE, GCC, GZIP, JBB, MCF, MESA, TWOLF)
}

BENCHMARK_NAMES = tuple(SUITE)

#: The paper's "representative benchmarks" used in Figures 2 and 3.
REPRESENTATIVE = ("ammp", "mcf")


def get_profile(name: str) -> WorkloadProfile:
    """Profile for one benchmark; raises KeyError with the valid names."""
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; suite contains {sorted(SUITE)}"
        ) from None


def suite_profiles(names: Optional[List[str]] = None) -> List[WorkloadProfile]:
    """Profiles for the requested benchmarks (default: whole suite)."""
    if names is None:
        return list(SUITE.values())
    return [get_profile(name) for name in names]
