"""Workload profiles, synthetic traces and the nine-benchmark suite."""

from .generator import TraceGenerator, generate_trace
from .profile import ProfileError, WorkloadProfile
from .suite import (
    BENCHMARK_NAMES,
    REPRESENTATIVE,
    SUITE,
    get_profile,
    suite_profiles,
)
from .characterize import (
    WorkloadCharacter,
    branch_predictability,
    characterize,
    dataflow_ilp,
    footprint_growth,
    instruction_miss_rate_curve,
    miss_rate_curve,
)
from .extras import EXTRA_SUITE, get_extra_profile
from .io import TRACE_FORMAT_VERSION, load_trace, save_trace
from .sampling import (
    SamplingValidation,
    TraceSamplingError,
    systematic_sample,
    validate_sampling,
)
from .validation import Check, ConformanceReport, validate_trace
from .trace import (
    FPR_WRITERS,
    GPR_WRITERS,
    OP_BRANCH,
    OP_CODES,
    OP_FP,
    OP_FP_DIV,
    OP_INT,
    OP_INT_MUL,
    OP_LOAD,
    OP_NAMES,
    OP_STORE,
    Trace,
    TraceError,
)

__all__ = [
    "WorkloadProfile",
    "ProfileError",
    "Trace",
    "TraceError",
    "TraceGenerator",
    "generate_trace",
    "SUITE",
    "BENCHMARK_NAMES",
    "REPRESENTATIVE",
    "get_profile",
    "suite_profiles",
    "OP_INT",
    "OP_INT_MUL",
    "OP_FP",
    "OP_FP_DIV",
    "OP_LOAD",
    "OP_STORE",
    "OP_BRANCH",
    "OP_NAMES",
    "OP_CODES",
    "GPR_WRITERS",
    "FPR_WRITERS",
    "validate_trace",
    "ConformanceReport",
    "Check",
    "save_trace",
    "load_trace",
    "TRACE_FORMAT_VERSION",
    "EXTRA_SUITE",
    "get_extra_profile",
    "characterize",
    "WorkloadCharacter",
    "dataflow_ilp",
    "branch_predictability",
    "miss_rate_curve",
    "instruction_miss_rate_curve",
    "footprint_growth",
    "systematic_sample",
    "validate_sampling",
    "SamplingValidation",
    "TraceSamplingError",
]
