"""Trace sampling (the SMARTS/SimPoint axis of the paper's argument).

Section 1 positions the paper against trace sampling [20, 24]: sampling
shrinks *each simulation's input* while regression shrinks *the number of
simulations* — complementary reductions.  This module implements the
trace-sampling side so the claim can be exercised: systematic segment
sampling of a long trace into a short representative one, with a
validation helper comparing sampled-trace against full-trace simulation.

Dependence distances that would reach across a segment boundary are
clipped to the segment (the sampled segments are independent snippets, as
in SMARTS's measurement intervals); reuse distances, branch outcomes and
block ids carry over unchanged, so cache and predictor behaviour remain
representative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .trace import Trace, TraceError


class TraceSamplingError(ValueError):
    """Raised for infeasible sampling requests."""


def systematic_sample(
    trace: Trace,
    segments: int,
    segment_length: int,
    offset: int = 0,
) -> Trace:
    """SMARTS-style systematic sampling: every k-th segment of the trace.

    ``segments`` segments of ``segment_length`` instructions are taken at
    equal strides starting at ``offset``; the concatenation is returned as
    a new (shorter) trace.  Requires the requested sample to fit in the
    trace.
    """
    if segments < 1 or segment_length < 1:
        raise TraceSamplingError("segments and segment_length must be >= 1")
    n = len(trace)
    total = segments * segment_length
    if total > n:
        raise TraceSamplingError(
            f"sample of {total} instructions exceeds trace length {n}"
        )
    if not 0 <= offset < n:
        raise TraceSamplingError(f"offset {offset} out of range")
    stride = max((n - offset) // segments, segment_length)

    starts = [offset + i * stride for i in range(segments)]
    if starts[-1] + segment_length > n:
        raise TraceSamplingError(
            "segments do not fit: reduce segments, length, or offset"
        )

    pieces: Dict[str, list] = {
        column: []
        for column in (
            "op", "src1", "src2", "mem_block", "data_reuse",
            "iblock", "instr_reuse", "taken", "branch_site",
        )
    }
    for start in starts:
        stop = start + segment_length
        local = np.arange(segment_length, dtype=np.int64)
        for column in pieces:
            pieces[column].append(getattr(trace, column)[start:stop])
        # clip dependences to the segment: a producer before the segment
        # start is treated as long-ready (distance 0 = no register source)
        for source in ("src1", "src2"):
            clipped = pieces[source][-1].copy()
            out_of_segment = clipped > local
            clipped[out_of_segment] = 0
            pieces[source][-1] = clipped

    columns = {name: np.concatenate(chunks) for name, chunks in pieces.items()}
    return Trace(
        name=trace.name,
        ref_instructions=trace.ref_instructions,
        metadata={
            **trace.metadata,
            "sampled_from": float(n),
            "segments": float(segments),
            "segment_length": float(segment_length),
        },
        **columns,
    )


@dataclass
class SamplingValidation:
    """Sampled-versus-full simulation comparison for one benchmark."""

    benchmark: str
    full_bips: float
    sampled_bips: float
    full_watts: float
    sampled_watts: float
    reduction: float  #: full length / sampled length

    @property
    def bips_error(self) -> float:
        """Relative bips error of the sampled trace."""
        return abs(self.sampled_bips - self.full_bips) / self.full_bips

    @property
    def watts_error(self) -> float:
        return abs(self.sampled_watts - self.full_watts) / self.full_watts


def validate_sampling(
    trace: Trace,
    config,
    segments: int,
    segment_length: int,
    simulator=None,
) -> SamplingValidation:
    """Simulate full and sampled traces on one config; compare results."""
    from ..simulator import Simulator

    simulator = simulator or Simulator()
    sampled = systematic_sample(trace, segments, segment_length)
    if len(sampled) == 0:
        raise ValueError("sampled trace is empty; check segment parameters")
    full_result = simulator.simulate(trace, config)
    sampled_result = simulator.simulate(sampled, config)
    return SamplingValidation(
        benchmark=trace.name,
        full_bips=full_result.bips,
        sampled_bips=sampled_result.bips,
        full_watts=float(full_result.watts),
        sampled_watts=float(sampled_result.watts),
        reduction=len(trace) / len(sampled),
    )
