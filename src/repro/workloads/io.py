"""Trace persistence.

Traces are deterministic functions of (profile, length, seed), so
persistence is a convenience rather than a necessity — but sharing exact
trace files is how the paper's community exchanged workloads, and saved
traces decouple downstream analyses from generator evolution.

Format: compressed ``.npz`` holding the column arrays plus a JSON-encoded
header (name, ref_instructions, metadata, format version).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .trace import Trace, TraceError

#: Bump when the on-disk layout changes.
TRACE_FORMAT_VERSION = 1

_COLUMNS = (
    "op",
    "src1",
    "src2",
    "mem_block",
    "data_reuse",
    "iblock",
    "instr_reuse",
    "taken",
    "branch_site",
)


def save_trace(trace: Trace, path) -> Path:
    """Write ``trace`` to ``path`` (``.npz``); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = json.dumps(
        {
            "version": TRACE_FORMAT_VERSION,
            "name": trace.name,
            "ref_instructions": trace.ref_instructions,
            "metadata": trace.metadata,
        }
    )
    arrays = {column: getattr(trace, column) for column in _COLUMNS}
    np.savez_compressed(path, header=np.array(header), **arrays)
    return path


def load_trace(path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"]))
            arrays = {column: archive[column] for column in _COLUMNS}
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as error:
        raise TraceError(f"unreadable trace file {path}: {error}") from error
    if header.get("version") != TRACE_FORMAT_VERSION:
        raise TraceError(
            f"trace file {path} has format version {header.get('version')}, "
            f"expected {TRACE_FORMAT_VERSION}"
        )
    return Trace(
        name=header["name"],
        ref_instructions=header["ref_instructions"],
        metadata=header.get("metadata", {}),
        **arrays,
    )
