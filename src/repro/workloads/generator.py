"""Synthetic trace generation.

Realizes a :class:`~repro.workloads.profile.WorkloadProfile` as a concrete
:class:`~repro.workloads.trace.Trace`.  Generation is deterministic given
(profile, length, seed): the paper replays the *same* trace of each
benchmark across all sampled designs, and reproducing that protocol
requires the trace to be a pure function of its inputs.

The generator models:

- **op mix** — multinomial draw per the profile's mix;
- **register dependences** — geometric producer distances whose mean sets
  the workload's inherent instruction-level parallelism, with optional
  load-to-load chaining for pointer-chasing codes;
- **data locality** — every memory access carries an LRU stack distance
  drawn from the profile's reuse strata (the benchmark's cacheability
  signature, consumed by the stack-distance memory model) *and* a concrete
  block id from a Zipf-popularity walk (consumed by the functional cache
  model);
- **instruction locality** — fetch-block boundary events with their own
  reuse distances, plus a loop-walk block stream for the functional model;
- **branch behaviour** — static sites whose outcomes follow a Markov
  persistence process: a biased site repeats its previous outcome with
  probability ``branch_bias`` (so a 1-bit BHT achieves exactly that
  accuracy on it), while unpredictable sites are coin flips.
"""

from __future__ import annotations

import zlib

import numpy as np

from .profile import ReuseStrata, WorkloadProfile
from .trace import (
    NO_DATA,
    NO_FETCH,
    OP_BRANCH,
    OP_CODES,
    OP_LOAD,
    OP_STORE,
    Trace,
)

#: Instructions per 128-byte instruction block (4-byte fixed-width ISA).
INSTRUCTIONS_PER_BLOCK = 32

#: Multiplier for scattering popularity ranks over the block address space.
_SCATTER_PRIME = 2654435761  # Knuth's multiplicative hash constant


def _profile_seed(profile: WorkloadProfile, seed: int) -> int:
    """Stable per-profile seed: the same benchmark always gets the same trace."""
    return (zlib.crc32(profile.name.encode("utf-8")) ^ (seed * 0x9E3779B1)) & 0x7FFFFFFF


def _zipf_cdf(footprint: int, exponent: float) -> np.ndarray:
    """Cumulative popularity distribution over ranks 1..footprint."""
    ranks = np.arange(1, footprint + 1, dtype=float)
    weights = ranks ** (-exponent) if exponent > 0 else np.ones(footprint)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _scatter(rank: np.ndarray, footprint: int) -> np.ndarray:
    """Map popularity ranks to scattered block ids (stable hash)."""
    return (rank * _SCATTER_PRIME) % footprint


def sample_reuse_distances(
    rng: np.random.Generator, strata: ReuseStrata, size: int
) -> np.ndarray:
    """Draw ``size`` reuse distances from (weight, limit) strata.

    A draw picks a stratum by weight, then a distance log-uniformly
    between the previous stratum's limit and its own.
    """
    if size == 0:
        return np.empty(0, dtype=np.int64)
    weights = np.array([w for w, _ in strata], dtype=float)
    weights = weights / weights.sum()
    limits = np.array([limit for _, limit in strata], dtype=float)
    lows = np.concatenate(([1.0], limits[:-1]))
    choices = rng.choice(len(strata), size=size, p=weights)
    lo = lows[choices]
    hi = limits[choices]
    if (lo <= 0).any() or (hi < lo).any():
        raise ValueError("reuse-distance strata must be positive and ordered")
    u = rng.random(size)
    distances = lo * np.exp(u * np.log(hi / lo))
    return np.maximum(1, distances).astype(np.int64)


class TraceGenerator:
    """Deterministic synthetic trace generator for one profile."""

    def __init__(self, profile: WorkloadProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    def generate(self, length: int) -> Trace:
        """Generate a trace of ``length`` dynamic instructions."""
        if length < 1:
            raise ValueError(f"trace length must be positive, got {length}")
        profile = self.profile
        rng = np.random.default_rng(_profile_seed(profile, self.seed))

        ops = self._draw_ops(rng, length)
        src1, src2 = self._draw_dependences(rng, ops)
        mem_block, data_reuse = self._draw_data_stream(rng, ops)
        iblock, instr_reuse = self._draw_instruction_stream(rng, length)
        taken, branch_site = self._draw_branches(rng, ops)

        return Trace(
            name=profile.name,
            op=ops,
            src1=src1,
            src2=src2,
            mem_block=mem_block,
            data_reuse=data_reuse,
            iblock=iblock,
            instr_reuse=instr_reuse,
            taken=taken,
            branch_site=branch_site,
            ref_instructions=profile.ref_instructions,
            metadata={"seed": float(self.seed), "length": float(length)},
        )

    # -- components ----------------------------------------------------------

    def _draw_ops(self, rng: np.random.Generator, length: int) -> np.ndarray:
        classes = sorted(self.profile.mix, key=lambda name: OP_CODES[name])
        codes = np.array([OP_CODES[name] for name in classes], dtype=np.uint8)
        probabilities = np.array([self.profile.mix[name] for name in classes])
        probabilities = probabilities / probabilities.sum()
        return rng.choice(codes, size=length, p=probabilities)

    def _draw_dependences(self, rng, ops: np.ndarray):
        """Producer distances; geometric with the profile's mean."""
        profile = self.profile
        n = len(ops)
        p = min(1.0, 1.0 / profile.dep_distance_mean)
        src1 = rng.geometric(p, size=n).astype(np.int32)
        src2 = rng.geometric(p, size=n).astype(np.int32)
        # Only a fraction of instructions carry a second register source.
        src2[rng.random(n) >= profile.second_operand_rate] = 0
        # Pointer chasing: a chained load's address comes from the previous
        # load, serializing the memory stream.
        if profile.load_chain_rate > 0:
            load_positions = np.flatnonzero(ops == OP_LOAD)
            if load_positions.size > 1:
                chained = rng.random(load_positions.size - 1) < profile.load_chain_rate
                followers = load_positions[1:][chained]
                producers = load_positions[:-1][chained]
                src1[followers] = (followers - producers).astype(np.int32)
        # Clip distances so no dependence reaches before the trace start.
        positions = np.arange(n, dtype=np.int32)
        np.minimum(src1, positions, out=src1)
        np.minimum(src2, positions, out=src2)
        return src1, src2

    def _draw_data_stream(self, rng, ops: np.ndarray):
        """Reuse distances + block ids for loads and stores."""
        profile = self.profile
        n = len(ops)
        mem_block = np.full(n, -1, dtype=np.int64)
        data_reuse = np.full(n, NO_DATA, dtype=np.int64)
        mem_positions = np.flatnonzero((ops == OP_LOAD) | (ops == OP_STORE))
        count = mem_positions.size
        if count == 0:
            return mem_block, data_reuse

        data_reuse[mem_positions] = sample_reuse_distances(
            rng, profile.data_reuse_strata, count
        )

        # Concrete block ids for the functional cache model: Zipf popularity
        # with geometric sequential runs.
        footprint = profile.data_footprint_blocks
        cdf = _zipf_cdf(footprint, profile.data_zipf)
        uniforms = rng.random(count)
        run_draws = rng.geometric(1.0 / profile.sequential_run_mean, size=count)
        ranks = np.searchsorted(cdf, uniforms, side="left") + 1
        scattered = _scatter(ranks.astype(np.int64), footprint)

        blocks = np.empty(count, dtype=np.int64)
        run_remaining = 0
        current = 0
        for i in range(count):
            if run_remaining > 0:
                current = (current + 1) % footprint
                run_remaining -= 1
            else:
                current = int(scattered[i])
                run_remaining = int(run_draws[i]) - 1
            blocks[i] = current
        mem_block[mem_positions] = blocks
        return mem_block, data_reuse

    def _draw_instruction_stream(self, rng, length: int):
        """Fetch-block events with reuse distances, plus a block walk."""
        profile = self.profile

        # Fetch-boundary events: geometric run lengths of straight-line
        # fetch between block changes.
        instr_reuse = np.full(length, NO_FETCH, dtype=np.int64)
        positions = []
        position = 0
        while position < length:
            positions.append(position)
            position += int(rng.geometric(1.0 / profile.ifetch_run_mean))
        events = np.array(positions, dtype=np.int64)
        instr_reuse[events] = sample_reuse_distances(
            rng, profile.instr_reuse_strata, events.size
        )

        # Concrete instruction blocks (functional model): loop walk.
        footprint = profile.instr_footprint_blocks
        n_blocks = (length + INSTRUCTIONS_PER_BLOCK - 1) // INSTRUCTIONS_PER_BLOCK
        starts = rng.integers(0, footprint, size=n_blocks + 1)
        lengths = rng.geometric(1.0 / profile.loop_length_mean, size=n_blocks + 1)
        iterations = rng.geometric(
            1.0 / profile.loop_iterations_mean, size=n_blocks + 1
        )
        block_sequence = np.empty(n_blocks, dtype=np.int32)
        loop = 0
        start = int(starts[0])
        body = int(lengths[0])
        remaining_iters = int(iterations[0])
        offset = 0
        for i in range(n_blocks):
            block_sequence[i] = (start + offset) % footprint
            offset += 1
            if offset >= body:
                offset = 0
                remaining_iters -= 1
                if remaining_iters <= 0:
                    loop = min(loop + 1, n_blocks)
                    start = int(starts[loop])
                    body = int(lengths[loop])
                    remaining_iters = int(iterations[loop])
        iblock = np.repeat(block_sequence, INSTRUCTIONS_PER_BLOCK)[:length].astype(
            np.int32
        )
        return iblock, instr_reuse

    def _draw_branches(self, rng, ops: np.ndarray):
        """Branch sites and Markov-persistent outcomes.

        Each dynamic branch is assigned a static site; a site repeats its
        previous outcome with its persistence probability (``branch_bias``
        for biased sites, 0.5 for unpredictable ones), so a last-outcome
        predictor's per-site accuracy equals the site's persistence.
        """
        profile = self.profile
        n = len(ops)
        taken = np.zeros(n, dtype=bool)
        branch_site = np.full(n, -1, dtype=np.int32)
        branch_positions = np.flatnonzero(ops == OP_BRANCH)
        count = branch_positions.size
        if count == 0:
            return taken, branch_site

        n_sites = profile.static_branches
        sites = rng.integers(0, n_sites, size=count).astype(np.int32)
        branch_site[branch_positions] = sites

        site_rng = np.random.default_rng(_profile_seed(profile, self.seed) + 1)
        unpredictable = site_rng.random(n_sites) < profile.unpredictable_rate
        persistence = np.where(unpredictable, 0.5, profile.branch_bias)
        state = site_rng.random(n_sites) < 0.6  # initial outcomes, mostly taken

        stay = rng.random(count)
        outcomes = np.empty(count, dtype=bool)
        state_list = state.tolist()
        persistence_list = persistence.tolist()
        sites_list = sites.tolist()
        stay_list = stay.tolist()
        for k in range(count):
            site = sites_list[k]
            previous = state_list[site]
            flips = stay_list[k] >= persistence_list[site]
            outcome = not previous if flips else previous
            outcomes[k] = outcome
            state_list[site] = outcome
        taken[branch_positions] = outcomes
        return taken, branch_site


def generate_trace(
    profile: WorkloadProfile, length: int, seed: int = 0
) -> Trace:
    """Convenience wrapper: ``TraceGenerator(profile, seed).generate(length)``."""
    return TraceGenerator(profile, seed).generate(length)
