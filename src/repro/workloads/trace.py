"""Trace representation.

A :class:`Trace` is the unit of simulator input: a fixed sequence of
dynamic instructions with register dependences encoded as *producer
distances* (how many instructions back the producing instruction sits),
data-memory block ids for loads/stores, instruction-block ids for the
fetch stream, and resolved branch outcomes.

The paper replays 100M-instruction PowerPC traces through Turandot; we
replay synthetic traces (see :mod:`repro.workloads.generator`) through our
simulator.  Storage is column-oriented numpy arrays so traces are compact
and cheap to hand to the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

# Operation classes.  Values are stable: traces persisted to disk rely on them.
OP_INT = 0        #: simple fixed-point ALU op
OP_INT_MUL = 1    #: fixed-point multiply/divide class (long latency)
OP_FP = 2         #: floating-point add/multiply class
OP_FP_DIV = 3     #: floating-point divide/sqrt class (long latency)
OP_LOAD = 4       #: memory load
OP_STORE = 5      #: memory store
OP_BRANCH = 6     #: conditional branch

OP_NAMES = {
    OP_INT: "int",
    OP_INT_MUL: "int_mul",
    OP_FP: "fp",
    OP_FP_DIV: "fp_div",
    OP_LOAD: "load",
    OP_STORE: "store",
    OP_BRANCH: "branch",
}
OP_CODES = {name: code for code, name in OP_NAMES.items()}

#: Reuse distance assigned to cold (first-touch) accesses: effectively
#: infinite, so they miss in every finite cache.
COLD_DISTANCE = 1 << 40

#: ``instr_reuse`` value meaning "no new fetch block at this instruction".
NO_FETCH = -1

#: ``data_reuse`` value for non-memory instructions.
NO_DATA = -1

#: Op classes that write a general-purpose (integer) physical register.
GPR_WRITERS = (OP_INT, OP_INT_MUL, OP_LOAD)
#: Op classes that write a floating-point physical register.
FPR_WRITERS = (OP_FP, OP_FP_DIV)


class TraceError(ValueError):
    """Raised for structurally invalid traces."""


@dataclass
class Trace:
    """A dynamic instruction trace.

    All arrays share length ``n`` (one entry per dynamic instruction):

    - ``op``: uint8 op class code.
    - ``src1``/``src2``: int32 producer distances (0 = no register source;
      ``d > 0`` means "depends on the instruction ``d`` earlier").
    - ``mem_block``: int64 data block id touched by loads/stores (-1 for
      non-memory ops).  A block models 128 bytes.  Consumed by the
      *functional* memory model.
    - ``data_reuse``: int64 LRU stack distance (in blocks) of the data
      access (:data:`NO_DATA` for non-memory ops, :data:`COLD_DISTANCE`
      for first touches).  Consumed by the default *stack-distance* memory
      model, which gives steady-state cache behaviour even for short
      traces — the role trace sampling [11] plays for the paper.
    - ``iblock``: int32 instruction block id fetched for this instruction.
    - ``instr_reuse``: int64 reuse distance of the fetch block when this
      instruction starts a new fetch block (:data:`NO_FETCH` otherwise).
    - ``taken``: bool branch outcome (False for non-branches).
    - ``branch_site``: int32 static branch id for predictor indexing
      (-1 for non-branches).
    """

    name: str
    op: np.ndarray
    src1: np.ndarray
    src2: np.ndarray
    mem_block: np.ndarray
    data_reuse: np.ndarray
    iblock: np.ndarray
    instr_reuse: np.ndarray
    taken: np.ndarray
    branch_site: np.ndarray
    ref_instructions: float = 1e9
    metadata: Dict[str, float] = field(default_factory=dict)
    #: Memoized config-independent data derived from the (immutable)
    #: columns — see :meth:`derived`.  Not part of the trace's identity.
    _derived: Dict[tuple, object] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = len(self.op)
        arrays = {
            "src1": self.src1,
            "src2": self.src2,
            "mem_block": self.mem_block,
            "data_reuse": self.data_reuse,
            "iblock": self.iblock,
            "instr_reuse": self.instr_reuse,
            "taken": self.taken,
            "branch_site": self.branch_site,
        }
        for label, array in arrays.items():
            if len(array) != n:
                raise TraceError(
                    f"trace {self.name!r}: column {label} has length "
                    f"{len(array)}, expected {n}"
                )
        if n == 0:
            raise TraceError(f"trace {self.name!r} is empty")
        if self.op.min() < OP_INT or self.op.max() > OP_BRANCH:
            raise TraceError(f"trace {self.name!r} has unknown op codes")
        positions = np.arange(n)
        for label, column in (("src1", self.src1), ("src2", self.src2)):
            if column.min() < 0:
                raise TraceError(f"trace {self.name!r}: negative {label} distance")
            if (column > positions).any():
                raise TraceError(
                    f"trace {self.name!r}: {label} distance reaches before trace start"
                )
        is_mem = np.isin(self.op, (OP_LOAD, OP_STORE))
        if (self.mem_block[is_mem] < 0).any():
            raise TraceError(f"trace {self.name!r}: memory op without block id")
        if (self.data_reuse[is_mem] < 0).any():
            raise TraceError(
                f"trace {self.name!r}: memory op without reuse distance"
            )
        if (self.data_reuse[~is_mem] != NO_DATA).any():
            raise TraceError(
                f"trace {self.name!r}: non-memory op carries a data reuse distance"
            )
        if self.ref_instructions <= 0:
            raise TraceError(f"trace {self.name!r}: ref_instructions must be positive")

    def __len__(self) -> int:
        return len(self.op)

    def derived(self, key: tuple, build):
        """Memoize ``build()`` under ``key`` for this trace's lifetime.

        Consumers (e.g. the batched timing kernel) hoist expensive
        config-independent precomputation — access streams, dependence
        columns, predictor replays — out of their hot loops and key it
        here, so it is computed once per trace object rather than once per
        call.  ``key`` must capture every input to ``build`` other than
        the trace columns themselves (which are immutable by convention).
        """
        try:
            return self._derived[key]
        except KeyError:
            value = self._derived[key] = build()
            return value

    # -- summaries -----------------------------------------------------------

    def mix(self) -> Dict[str, float]:
        """Fraction of instructions in each op class."""
        n = len(self)
        if n == 0:
            return {OP_NAMES[code]: 0.0 for code in OP_NAMES}
        counts = np.bincount(self.op, minlength=OP_BRANCH + 1)
        return {OP_NAMES[code]: counts[code] / n for code in OP_NAMES}

    def branch_count(self) -> int:
        return int((self.op == OP_BRANCH).sum())

    def load_count(self) -> int:
        return int((self.op == OP_LOAD).sum())

    def store_count(self) -> int:
        return int((self.op == OP_STORE).sum())

    def data_footprint(self) -> int:
        """Distinct data blocks touched."""
        blocks = self.mem_block[self.mem_block >= 0]
        return int(np.unique(blocks).size) if blocks.size else 0

    def instruction_footprint(self) -> int:
        """Distinct instruction blocks fetched."""
        return int(np.unique(self.iblock).size)

    def fetch_events(self) -> int:
        """Number of new-fetch-block events in the instruction stream."""
        return int((self.instr_reuse != NO_FETCH).sum())

    def taken_rate(self) -> float:
        branches = self.op == OP_BRANCH
        count = int(branches.sum())
        return float(self.taken[branches].mean()) if count else 0.0

    def summary(self) -> Dict[str, float]:
        """Headline statistics used by docs, tests and the CLI."""
        stats: Dict[str, float] = {"instructions": float(len(self))}
        stats.update({f"mix_{k}": v for k, v in self.mix().items()})
        stats["data_footprint_blocks"] = float(self.data_footprint())
        stats["instr_footprint_blocks"] = float(self.instruction_footprint())
        stats["taken_rate"] = self.taken_rate()
        return stats
