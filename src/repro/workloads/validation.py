"""Trace-versus-profile conformance validation.

The paper's traces were systematically validated against the full
reference executions they sample (Iyengar et al. [11]).  Our analogue
checks that a generated trace is a faithful realization of its profile:
op mix, branch persistence, reuse-distance survival and dependence
structure all within tolerance.  Used by tests, and available to users
who define custom workloads (a mis-specified profile shows up here before
it silently skews a design study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .profile import WorkloadProfile
from .trace import NO_FETCH, OP_BRANCH, OP_NAMES, Trace


@dataclass
class Check:
    """One conformance check outcome."""

    name: str
    expected: float
    observed: float
    tolerance: float

    @property
    def passed(self) -> bool:
        return abs(self.observed - self.expected) <= self.tolerance

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (
            f"{self.name}: expected {self.expected:.4f}, observed "
            f"{self.observed:.4f} (±{self.tolerance:.4f}) [{status}]"
        )


@dataclass
class ConformanceReport:
    """All checks for one (trace, profile) pair."""

    benchmark: str
    checks: List[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            check.name: {
                "expected": check.expected,
                "observed": check.observed,
                "tolerance": check.tolerance,
            }
            for check in self.checks
        }


def _mix_tolerance(fraction: float, n: int) -> float:
    """3-sigma binomial tolerance with a floor for tiny samples."""
    sigma = np.sqrt(max(fraction * (1 - fraction), 1e-6) / n)
    return max(3.0 * sigma, 0.01)


def validate_trace(trace: Trace, profile: WorkloadProfile) -> ConformanceReport:
    """Check that ``trace`` realizes ``profile`` within sampling noise."""
    report = ConformanceReport(benchmark=profile.name)
    n = len(trace)
    mix = trace.mix()

    # -- op mix ---------------------------------------------------------------
    for op_name in OP_NAMES.values():
        expected = profile.mix.get(op_name, 0.0)
        report.checks.append(
            Check(
                name=f"mix_{op_name}",
                expected=expected,
                observed=mix[op_name],
                tolerance=_mix_tolerance(expected, n),
            )
        )

    # -- branch persistence ------------------------------------------------
    branch_mask = trace.op == OP_BRANCH
    sites = trace.branch_site[branch_mask].tolist()
    takens = trace.taken[branch_mask].tolist()
    last: Dict[int, bool] = {}
    repeats = total = 0
    for site, taken in zip(sites, takens):
        if site in last:
            total += 1
            repeats += last[site] == taken
        last[site] = taken
    if total >= 50:
        expected_persistence = (
            profile.unpredictable_rate * 0.5
            + (1 - profile.unpredictable_rate) * profile.branch_bias
        )
        # Two noise sources: transition sampling (binomial over `total`
        # observed repeats) and *site realization* — which sites came up
        # unpredictable is itself a draw over `static_branches` sites, and
        # each unpredictable site shifts persistence by (bias - 0.5).
        rate = profile.unpredictable_rate
        site_sigma = np.sqrt(max(rate * (1 - rate), 1e-6) / profile.static_branches)
        realization = site_sigma * (profile.branch_bias - 0.5)
        tolerance = max(3.0 * (np.sqrt(0.25 / total) + realization), 0.03)
        report.checks.append(
            Check(
                name="branch_persistence",
                expected=expected_persistence,
                observed=repeats / total,
                tolerance=tolerance,
            )
        )

    # -- reuse-distance survival ----------------------------------------------
    reuse = trace.data_reuse[trace.data_reuse >= 0]
    if reuse.size >= 100:
        for capacity in (64, 1024, 16384):
            report.checks.append(
                Check(
                    name=f"data_survival_{capacity}",
                    expected=profile.data_miss_rate(capacity),
                    observed=float((reuse >= capacity).mean()),
                    tolerance=max(3.0 * np.sqrt(0.25 / reuse.size), 0.02),
                )
            )

    # -- instruction-side survival ------------------------------------------
    instr = trace.instr_reuse[trace.instr_reuse != NO_FETCH]
    if instr.size >= 100:
        for capacity in (128, 1024):
            report.checks.append(
                Check(
                    name=f"instr_survival_{capacity}",
                    expected=profile.instr_miss_rate(capacity),
                    observed=float((instr >= capacity).mean()),
                    tolerance=max(3.0 * np.sqrt(0.25 / instr.size), 0.02),
                )
            )

    # -- dependence distances ---------------------------------------------
    # geometric distances are clipped at the trace start and rewritten by
    # load chaining, so compare medians robustly with a generous band
    src1 = trace.src1[trace.src1 > 0]
    if src1.size >= 100:
        expected_median = max(1.0, np.log(2.0) * profile.dep_distance_mean)
        report.checks.append(
            Check(
                name="dependence_median",
                expected=expected_median,
                observed=float(np.median(src1)),
                tolerance=max(0.5 * expected_median, 1.5),
            )
        )

    return report
