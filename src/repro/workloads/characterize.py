"""Workload characterization.

Quantifies the program properties that drive design-space behaviour —
inherent ILP, branch predictability, cacheability, footprint growth — the
quantities architects consult when interpreting why a benchmark's optimum
lands where it does (e.g. the Section 4.1 discussion of ammp's parallelism
versus mcf's memory boundedness).

All analyses operate on a concrete :class:`~repro.workloads.trace.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .trace import NO_FETCH, OP_BRANCH, Trace

#: Default capacities (in 128B blocks) for miss-rate curves: 8KB .. 8MB.
DEFAULT_CAPACITIES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)


def miss_rate_curve(
    trace: Trace, capacities: Sequence[int] = DEFAULT_CAPACITIES
) -> Dict[int, float]:
    """Empirical data miss rate versus LRU capacity (blocks)."""
    reuse = trace.data_reuse[trace.data_reuse >= 0]
    if reuse.size == 0:
        return {int(c): 0.0 for c in capacities}
    return {int(c): float((reuse >= c).mean()) for c in capacities}


def instruction_miss_rate_curve(
    trace: Trace, capacities: Sequence[int] = (128, 256, 512, 1024, 2048)
) -> Dict[int, float]:
    """Empirical fetch-block miss rate versus i-cache capacity (blocks)."""
    reuse = trace.instr_reuse[trace.instr_reuse != NO_FETCH]
    if reuse.size == 0:
        return {int(c): 0.0 for c in capacities}
    return {int(c): float((reuse >= c).mean()) for c in capacities}


def dataflow_ilp(trace: Trace, window: int = 0) -> float:
    """Dataflow-limit ILP under unit latencies.

    Computes each instruction's dataflow depth (1 + max producer depth)
    and returns ``n / max_depth`` — the IPC of an idealized machine with
    unbounded resources and single-cycle operations.  With ``window > 0``
    the trace is processed in windows of that many instructions (depths
    reset at window boundaries), modeling a finite instruction window.
    """
    src1 = trace.src1
    src2 = trace.src2
    n = len(trace)
    if window <= 0:
        window = n
    total_depth = 0
    position = 0
    while position < n:
        end = min(position + window, n)
        depths = [0] * (end - position)
        for i in range(position, end):
            depth = 1
            d1 = src1[i]
            if d1 and i - d1 >= position:
                depth = depths[i - d1 - position] + 1
            d2 = src2[i]
            if d2 and i - d2 >= position:
                candidate = depths[i - d2 - position] + 1
                if candidate > depth:
                    depth = candidate
            depths[i - position] = depth
        total_depth += max(depths)
        position = end
    return n / total_depth if total_depth else float(n)


def branch_predictability(trace: Trace) -> float:
    """Accuracy of an ideal per-site last-outcome predictor."""
    mask = trace.op == OP_BRANCH
    sites = trace.branch_site[mask].tolist()
    takens = trace.taken[mask].tolist()
    if not sites:
        return 1.0
    last: Dict[int, bool] = {}
    correct = total = 0
    for site, taken in zip(sites, takens):
        if site in last:
            total += 1
            correct += last[site] == taken
        last[site] = taken
    return correct / total if total else 1.0


def footprint_growth(trace: Trace, checkpoints: int = 10) -> List[tuple]:
    """(instructions, distinct data blocks) at evenly spaced checkpoints."""
    if checkpoints < 1:
        raise ValueError("need at least one checkpoint")
    mem_positions = np.flatnonzero(trace.mem_block >= 0)
    blocks = trace.mem_block[mem_positions]
    marks = np.linspace(len(trace) / checkpoints, len(trace), checkpoints)
    seen: set = set()
    growth = []
    cursor = 0
    for mark in marks:
        while cursor < mem_positions.size and mem_positions[cursor] < mark:
            seen.add(int(blocks[cursor]))
            cursor += 1
        growth.append((int(mark), len(seen)))
    return growth


@dataclass
class WorkloadCharacter:
    """Summary characterization of one trace."""

    benchmark: str
    instructions: int
    mix: Dict[str, float]
    ilp_infinite: float
    ilp_window_64: float
    branch_predictability: float
    data_miss_curve: Dict[int, float] = field(default_factory=dict)
    instr_miss_curve: Dict[int, float] = field(default_factory=dict)
    footprint_blocks: int = 0

    def memory_boundedness(self, l2_blocks: int = 16384) -> float:
        """Fraction of data accesses missing a 2MB-class L2."""
        curve = self.data_miss_curve
        if l2_blocks in curve:
            return curve[l2_blocks]
        keys = sorted(curve)
        below = [k for k in keys if k <= l2_blocks]
        return curve[below[-1]] if below else 1.0


def characterize(trace: Trace) -> WorkloadCharacter:
    """Full characterization of one trace."""
    return WorkloadCharacter(
        benchmark=trace.name,
        instructions=len(trace),
        mix=trace.mix(),
        ilp_infinite=dataflow_ilp(trace),
        ilp_window_64=dataflow_ilp(trace, window=64),
        branch_predictability=branch_predictability(trace),
        data_miss_curve=miss_rate_curve(trace),
        instr_miss_curve=instruction_miss_rate_curve(trace),
        footprint_blocks=trace.data_footprint(),
    )
