"""Set-associative cache models.

Functional cache simulation with true LRU replacement.  The timing model
only needs hit/miss outcomes per access (latencies come from the machine
config), so caches track block tags, not data.

Block ids are abstract 128-byte block numbers.  Instruction and data blocks
share the unified L2 but live in disjoint id ranges (see
``INSTRUCTION_SPACE_OFFSET``), mirroring distinct address-space regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Cache block size in bytes, matching the paper's 128B blocks (Table 3).
BLOCK_BYTES = 128

#: Offset added to instruction block ids before they reach the unified L2,
#: keeping code and data in disjoint regions of the block address space.
INSTRUCTION_SPACE_OFFSET = 1 << 40


class CacheConfigError(ValueError):
    """Raised for invalid cache geometries."""


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0


class Cache:
    """One level of set-associative cache with LRU replacement."""

    def __init__(self, name: str, size_kb: float, assoc: int,
                 block_bytes: int = BLOCK_BYTES):
        if size_kb <= 0:
            raise CacheConfigError(f"{name}: size must be positive, got {size_kb}")
        if assoc < 1:
            raise CacheConfigError(f"{name}: associativity must be >= 1")
        if block_bytes < 1:
            raise CacheConfigError(f"{name}: block size must be >= 1")
        total_blocks = int(size_kb * 1024) // block_bytes
        if total_blocks < assoc:
            raise CacheConfigError(
                f"{name}: {size_kb}KB holds {total_blocks} blocks, fewer than "
                f"associativity {assoc}"
            )
        self.name = name
        self.size_kb = size_kb
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.n_sets = max(1, total_blocks // assoc)
        self.stats = CacheStats()
        # Per-set LRU order: least recent first, most recent last.
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]

    def access(self, block: int) -> bool:
        """Access one block; returns True on hit.  Misses allocate."""
        self.stats.accesses += 1
        ways = self._sets[block % self.n_sets]
        if block in ways:
            self.stats.hits += 1
            # Refresh LRU position unless already most recent.
            if ways[-1] != block:
                ways.remove(block)
                ways.append(block)
            return True
        self.stats.misses += 1
        ways.append(block)
        if len(ways) > self.assoc:
            ways.pop(0)
            self.stats.evictions += 1
        return False

    def probe(self, block: int) -> bool:
        """Check presence without updating LRU state or counters."""
        return block in self._sets[block % self.n_sets]

    def contents(self) -> List[int]:
        """All resident blocks (for tests and invariant checks)."""
        return [block for ways in self._sets for block in ways]

    def reset(self) -> None:
        """Flush contents and counters."""
        self._sets = [[] for _ in range(self.n_sets)]
        self.stats.reset()


@dataclass
class HierarchyStats:
    """Combined statistics of a three-level hierarchy."""

    il1: CacheStats = field(default_factory=CacheStats)
    dl1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    memory_accesses: int = 0


class CacheHierarchy:
    """Split L1 (instruction + data) over a unified L2 over memory.

    ``data_access``/``instruction_access`` return the *level* that serviced
    the access: ``"l1"``, ``"l2"`` or ``"mem"``.  The timing model converts
    levels to latencies using the machine config.
    """

    def __init__(self, il1: Cache, dl1: Cache, l2: Cache):
        self.il1 = il1
        self.dl1 = dl1
        self.l2 = l2
        self.memory_accesses = 0

    def data_access(self, block: int) -> str:
        if self.dl1.access(block):
            return "l1"
        if self.l2.access(block):
            return "l2"
        self.memory_accesses += 1
        return "mem"

    def instruction_access(self, block: int) -> str:
        if self.il1.access(block):
            return "l1"
        if self.l2.access(block + INSTRUCTION_SPACE_OFFSET):
            return "l2"
        self.memory_accesses += 1
        return "mem"

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            il1=self.il1.stats,
            dl1=self.dl1.stats,
            l2=self.l2.stats,
            memory_accesses=self.memory_accesses,
        )

    def reset(self) -> None:
        self.il1.reset()
        self.dl1.reset()
        self.l2.reset()
        self.memory_accesses = 0


def build_hierarchy(
    il1_kb: float,
    dl1_kb: float,
    l2_mb: float,
    il1_assoc: int = 1,
    dl1_assoc: int = 2,
    l2_assoc: int = 4,
) -> CacheHierarchy:
    """Hierarchy with the paper's baseline associativities (Table 3)."""
    return CacheHierarchy(
        il1=Cache("il1", il1_kb, il1_assoc),
        dl1=Cache("dl1", dl1_kb, dl1_assoc),
        l2=Cache("l2", l2_mb * 1024.0, l2_assoc),
    )
