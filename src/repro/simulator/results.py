"""Simulation results.

:class:`ActivityCounts` aggregates the event counts the power model
consumes (PowerTimer derives power from resource utilization statistics);
:class:`SimulationResult` bundles them with timing, the configuration
summary and — once the power model has run — the watts breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ActivityCounts:
    """Event counts accumulated by one simulation."""

    instructions: int = 0
    cycles: int = 0
    # issue events by class
    int_ops: int = 0
    int_mul_ops: int = 0
    fp_ops: int = 0
    fp_div_ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    # register file traffic
    gpr_reads: int = 0
    gpr_writes: int = 0
    fpr_reads: int = 0
    fpr_writes: int = 0
    # prefetching
    prefetch_covered: int = 0   #: demand misses hidden by the prefetcher
    # memory hierarchy traffic
    il1_accesses: int = 0
    il1_misses: int = 0
    dl1_accesses: int = 0
    dl1_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    memory_accesses: int = 0

    def activity(self, events: int) -> float:
        """Events per cycle, the utilization measure for clock gating."""
        return events / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def dl1_miss_rate(self) -> float:
        return self.dl1_misses / self.dl1_accesses if self.dl1_accesses else 0.0

    @property
    def il1_miss_rate(self) -> float:
        return self.il1_misses / self.il1_accesses if self.il1_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass
class SimulationResult:
    """Outcome of simulating one trace on one machine configuration."""

    benchmark: str
    cycles: int
    instructions: int
    frequency_ghz: float
    counts: ActivityCounts
    config_summary: Dict[str, float] = field(default_factory=dict)
    ref_instructions: float = 1e9
    watts: Optional[float] = None
    power_breakdown: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError(f"cycles must be positive, got {self.cycles}")
        if self.instructions <= 0:
            raise ValueError(
                f"instructions must be positive, got {self.instructions}"
            )
        if self.frequency_ghz <= 0:
            raise ValueError(
                f"frequency must be positive, got {self.frequency_ghz}"
            )

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles

    @property
    def bips(self) -> float:
        """Billions of instructions per second — the paper's rate metric."""
        return self.ipc * self.frequency_ghz

    @property
    def delay_seconds(self) -> float:
        """End-to-end delay for the benchmark's notional full run."""
        return self.ref_instructions / (self.bips * 1e9)

    @property
    def bips3_per_watt(self) -> float:
        """The paper's voltage-invariant efficiency metric, bips^3/w."""
        if self.watts is None:
            raise ValueError(
                "power has not been evaluated for this result; "
                "run it through a PowerModel first"
            )
        return self.bips**3 / self.watts

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly flattening (artifact persistence)."""
        payload: Dict[str, object] = {
            "benchmark": self.benchmark,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "frequency_ghz": self.frequency_ghz,
            "ref_instructions": self.ref_instructions,
            "bips": self.bips,
            "watts": self.watts,
            "counts": self.counts.as_dict(),
            "config": dict(self.config_summary),
            "power_breakdown": dict(self.power_breakdown),
        }
        return payload
