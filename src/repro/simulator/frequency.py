"""Pipeline depth, clock frequency and stage counts.

The paper specifies pipeline depth as FO4 inverter delays per stage
(Section 5): *smaller* FO4 per stage means a *deeper* pipeline running at a
*higher* clock.  This module fixes the technology constants that map FO4
depth onto clock period and stage counts:

- one FO4 delay is ``FO4_PS`` picoseconds (90nm-class device);
- each stage loses ``LATCH_OVERHEAD_FO4`` to latch setup/skew, so the
  usable logic per stage is ``depth - LATCH_OVERHEAD_FO4``;
- the front end (fetch through dispatch) comprises
  ``FRONTEND_LOGIC_FO4`` of logic and the whole pipeline
  ``TOTAL_LOGIC_FO4``; stage counts follow by division.

A 19 FO4 design (the POWER4-like baseline of Table 3) lands at ~1.3 GHz
with an 8-stage front end, consistent with the machines of that era.
"""

from __future__ import annotations

import math

#: Picoseconds per FO4 delay (90nm-class technology).
FO4_PS = 40.0

#: FO4 delays per stage consumed by latch overhead and clock skew.
LATCH_OVERHEAD_FO4 = 3.0

#: Logic depth (FO4) of the front end: fetch, decode, rename, dispatch.
FRONTEND_LOGIC_FO4 = 120.0

#: Logic depth (FO4) of the full pipeline (front end + issue/execute/retire).
TOTAL_LOGIC_FO4 = 240.0


class FrequencyError(ValueError):
    """Raised for physically meaningless depths."""


def _check_depth(depth_fo4: float) -> None:
    if depth_fo4 <= LATCH_OVERHEAD_FO4:
        raise FrequencyError(
            f"depth {depth_fo4} FO4 leaves no logic per stage "
            f"(latch overhead is {LATCH_OVERHEAD_FO4} FO4)"
        )


def cycle_time_ps(depth_fo4: float) -> float:
    """Clock period in picoseconds for a given FO4 depth per stage."""
    _check_depth(depth_fo4)
    return depth_fo4 * FO4_PS


def frequency_ghz(depth_fo4: float) -> float:
    """Clock frequency in GHz."""
    return 1000.0 / cycle_time_ps(depth_fo4)


def stages_for_logic(logic_fo4: float, depth_fo4: float) -> int:
    """Pipeline stages needed to fit ``logic_fo4`` of logic."""
    _check_depth(depth_fo4)
    usable = depth_fo4 - LATCH_OVERHEAD_FO4
    return max(1, math.ceil(logic_fo4 / usable))


def frontend_stages(depth_fo4: float) -> int:
    """Stages from fetch to dispatch; the bulk of the mispredict penalty."""
    return stages_for_logic(FRONTEND_LOGIC_FO4, depth_fo4)


def total_stages(depth_fo4: float) -> int:
    """Total pipeline stages; drives latch count and hence clock power."""
    return stages_for_logic(TOTAL_LOGIC_FO4, depth_fo4)


def latency_cycles(logic_fo4: float, depth_fo4: float, minimum: int = 1) -> int:
    """Cycles to evaluate ``logic_fo4`` of logic on a ``depth_fo4`` machine.

    Used for functional-unit latencies: a fixed amount of logic takes more
    cycles on a deeper (higher-frequency) pipeline.
    """
    _check_depth(depth_fo4)
    return max(minimum, math.ceil(logic_fo4 / depth_fo4))


def ns_to_cycles(latency_ns: float, depth_fo4: float, minimum: int = 1) -> int:
    """Cycles to cover a fixed wall-clock latency (cache arrays, DRAM)."""
    period_ns = cycle_time_ps(depth_fo4) / 1000.0
    return max(minimum, math.ceil(latency_ns / period_ns))
