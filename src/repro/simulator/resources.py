"""Finite-resource occupancy tracking for the one-pass timing model.

The timing model schedules each instruction exactly once, in program
order.  A structure with ``N`` entries (reservation station, load/store
queue, rename register pool, reorder buffer, or an ``N``-unit functional
unit pool) constrains instruction ``k`` of its class: the new entry cannot
be acquired before the entry acquired ``N`` allocations earlier has been
released.  Because releases of *earlier* instructions are already known
when instruction ``k`` is scheduled, a ring buffer of the last ``N``
release times answers the constraint in O(1).
"""

from __future__ import annotations

from typing import List


class ResourceError(ValueError):
    """Raised for invalid resource capacities."""


class OccupancyWindow:
    """Ring buffer answering "when is the next slot of this pool free?".

    ``acquire(release_time)`` returns the earliest cycle the incoming
    occupant may take a slot — i.e. the release time recorded ``capacity``
    acquisitions ago — then records the occupant's own ``release_time``.
    """

    __slots__ = ("capacity", "_releases", "_head", "count")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._releases: List[int] = [0] * capacity
        self._head = 0
        self.count = 0

    def acquire(self, release_time: int) -> int:
        """Earliest acquisition cycle; records this occupant's release."""
        earliest = self._releases[self._head]
        self._releases[self._head] = release_time
        self._head += 1
        if self._head == self.capacity:
            self._head = 0
        self.count += 1
        return earliest

    def next_free(self) -> int:
        """Release time of the oldest slot without consuming it."""
        return self._releases[self._head]

    def reset(self) -> None:
        self._releases = [0] * self.capacity
        self._head = 0
        self.count = 0


class ThroughputLimiter:
    """Bandwidth limit: at most ``rate`` events per cycle.

    Equivalent to an :class:`OccupancyWindow` whose occupants hold a slot
    for exactly one cycle, but kept separate for clarity at call sites
    (fetch/decode/dispatch/retire bandwidth).
    """

    __slots__ = ("_window", "rate")

    def __init__(self, rate: int):
        if rate < 1:
            raise ResourceError(f"rate must be >= 1, got {rate}")
        self.rate = rate
        self._window = OccupancyWindow(rate)

    def next_slot(self, earliest: int) -> int:
        """Cycle at which the next event may proceed, at or after ``earliest``."""
        slot = self._window.next_free()
        time = earliest if earliest > slot else slot
        self._window.acquire(time + 1)
        return time

    def reset(self) -> None:
        self._window.reset()
