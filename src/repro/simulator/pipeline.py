"""Out-of-order pipeline timing model.

A single-pass, cycle-granular scheduling model of a parameterized
out-of-order superscalar — the role Turandot plays in the paper.  Each
dynamic instruction is visited once in program order; its fetch, dispatch,
issue, completion and retirement cycles are derived from:

- **fetch**: width-limited bandwidth, i-cache misses (through the unified
  L2 to memory) and branch-mispredict redirects (fetch resumes after the
  branch resolves, then refills the front end — the depth-scaled penalty);
- **dispatch**: in-order, ``2w+1`` per cycle, blocked while the reorder
  buffer, rename registers, reservation stations or load/store queues are
  exhausted — releases of *earlier* instructions are already scheduled, so
  O(1) ring buffers (:class:`OccupancyWindow`) answer every constraint;
- **issue**: data-ready (producer completion via dependence distances) and
  functional-unit constrained; divides occupy their unit unpipelined; an
  in-order machine additionally issues in program order;
- **completion**: class latency in cycles (fixed logic depth / FO4 stage),
  with loads paying the d-L1 / L2 / memory latency of whichever level hits
  and memory-level misses bounded by the MSHR pool (limited memory-level
  parallelism);
- **retire**: in order, width per cycle.

Simplifications relative to a full performance simulator, none of which
the paper's studies are sensitive to: no memory-level disambiguation or
store-to-load forwarding (dependences are explicit in the trace), and a
fetch queue deep enough that dispatch stalls do not back-pressure fetch
timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..workloads.trace import (
    OP_BRANCH,
    OP_FP,
    OP_FP_DIV,
    OP_INT,
    OP_INT_MUL,
    OP_LOAD,
    OP_STORE,
    Trace,
)
from .branch import BranchPredictor, build_predictor
from .config import MachineConfig
from .memory import StackDistanceMemory
from .resources import OccupancyWindow, ThroughputLimiter
from .results import ActivityCounts


@dataclass
class PipelineOutcome:
    """Raw timing outcome: total cycles plus activity counts."""

    cycles: int
    counts: ActivityCounts


def run_pipeline(
    trace: Trace,
    config: MachineConfig,
    memory=None,
    predictor: Optional[BranchPredictor] = None,
) -> PipelineOutcome:
    """Schedule ``trace`` on ``config``; returns cycles and activity counts.

    ``memory`` is any object with the
    :class:`~repro.simulator.memory.StackDistanceMemory` interface
    (defaults to a fresh stack-distance model for the config);
    ``predictor`` defaults to the config's branch predictor.
    """
    if memory is None:
        memory = StackDistanceMemory(config)
    if predictor is None:
        predictor = build_predictor(config.predictor, config.predictor_entries)

    # Next-line prefetcher: a memory access that continues a sequential
    # block run is covered by the prefetch issued on its predecessor, so a
    # would-be miss is serviced at L1 latency (the traffic still flows for
    # power accounting).  Flags are derived from the concrete block stream.
    prefetch = config.prefetch
    if prefetch:
        import numpy as np

        mem_mask = trace.mem_block >= 0
        blocks = trace.mem_block[mem_mask]
        flags = np.zeros(blocks.size, dtype=bool)
        if blocks.size > 1:
            flags[1:] = blocks[1:] == blocks[:-1] + 1
        sequential_full = np.zeros(len(trace), dtype=bool)
        sequential_full[np.flatnonzero(mem_mask)] = flags
        sequential = sequential_full.tolist()
    else:
        sequential = None

    # Localize trace columns and config scalars: the loop below is the hot
    # path of the whole library.
    ops = trace.op.tolist()
    src1 = trace.src1.tolist()
    src2 = trace.src2.tolist()
    mem_block = trace.mem_block.tolist()
    data_reuse = trace.data_reuse.tolist()
    iblocks = trace.iblock.tolist()
    instr_reuse = trace.instr_reuse.tolist()
    takens = trace.taken.tolist()
    sites = trace.branch_site.tolist()
    n = len(ops)

    frontend = config.frontend_stages
    in_order = config.in_order
    lat_int = config.op_latency(OP_INT)
    lat_mul = config.op_latency(OP_INT_MUL)
    lat_fp = config.op_latency(OP_FP)
    lat_div = config.op_latency(OP_FP_DIV)
    lat_store = config.op_latency(OP_STORE)
    lat_branch = config.op_latency(OP_BRANCH)
    lat_l1 = config.data_latency("l1")
    lat_l2 = config.data_latency("l2")
    lat_mem = config.data_latency("mem")
    pen_l2 = config.fetch_penalty("l2")
    pen_mem = config.fetch_penalty("mem")
    dl1_latency = config.dl1_latency

    fetch_limiter = ThroughputLimiter(config.width)
    dispatch_limiter = ThroughputLimiter(config.dispatch_rate)
    retire_limiter = ThroughputLimiter(config.width)

    rob = OccupancyWindow(config.rob_size)
    gpr = OccupancyWindow(config.gpr_rename)
    fpr = OccupancyWindow(config.fpr_rename)
    fx_rs = OccupancyWindow(config.fx_resv)
    fp_rs = OccupancyWindow(config.fp_resv)
    br_rs = OccupancyWindow(config.br_resv)
    load_queue = OccupancyWindow(config.ls_queue)
    store_q = OccupancyWindow(config.store_queue)
    fxu = OccupancyWindow(config.functional_units)
    fpu = OccupancyWindow(config.functional_units)
    lsu = OccupancyWindow(config.functional_units)
    bru = OccupancyWindow(config.functional_units)
    mshrs = OccupancyWindow(config.mshr_count)

    data_access = memory.data_access
    instr_access = memory.instr_access
    predict_and_update = predictor.predict_and_update

    completion = [0] * n
    counts = ActivityCounts()
    counts.instructions = n

    fetch_available = 0
    last_dispatch = 0
    last_issue = 0
    last_retire = 0

    for i in range(n):
        op = ops[i]

        # ---- fetch ------------------------------------------------------
        reuse = instr_reuse[i]
        if reuse >= 0:  # new fetch block
            level = instr_access(iblocks[i], reuse)
            if level != "l1":
                fetch_available += pen_l2 if level == "l2" else pen_mem
        fetch_time = fetch_limiter.next_slot(fetch_available)

        # ---- dispatch ----------------------------------------------------
        disp = fetch_time + frontend
        if disp < last_dispatch:
            disp = last_dispatch
        free = rob.next_free()
        if free > disp:
            disp = free
        if op == OP_INT or op == OP_INT_MUL:
            rs_window = fx_rs
            fu = fxu
            reg = gpr
            latency = lat_int if op == OP_INT else lat_mul
        elif op == OP_FP or op == OP_FP_DIV:
            rs_window = fp_rs
            fu = fpu
            reg = fpr
            latency = lat_fp if op == OP_FP else lat_div
        elif op == OP_LOAD:
            rs_window = load_queue
            fu = lsu
            reg = gpr
            latency = 0  # resolved after the cache access below
        elif op == OP_STORE:
            rs_window = load_queue
            fu = lsu
            reg = None
            latency = lat_store
            free = store_q.next_free()
            if free > disp:
                disp = free
        else:  # OP_BRANCH
            rs_window = br_rs
            fu = bru
            reg = None
            latency = lat_branch
        free = rs_window.next_free()
        if free > disp:
            disp = free
        if reg is not None:
            free = reg.next_free()
            if free > disp:
                disp = free
        disp = dispatch_limiter.next_slot(disp)
        last_dispatch = disp

        # ---- resolve load service level (timing-free cache state update) --
        memory_miss = False
        if op == OP_LOAD:
            level = data_access(mem_block[i], data_reuse[i])
            if level == "l1":
                latency = lat_l1
            elif level == "l2":
                latency = lat_l2
            else:
                latency = lat_mem
                memory_miss = True
            if prefetch and latency != lat_l1 and sequential[i]:
                # covered by the next-line prefetch of the previous access
                latency = lat_l1
                memory_miss = False
                counts.prefetch_covered += 1
            counts.loads += 1

        # ---- issue -------------------------------------------------------
        ready = disp + 1
        distance = src1[i]
        if distance:
            producer = completion[i - distance]
            if producer > ready:
                ready = producer
        distance = src2[i]
        if distance:
            producer = completion[i - distance]
            if producer > ready:
                ready = producer
        if in_order and ready < last_issue:
            ready = last_issue
        issue = fu.next_free()
        if issue < ready:
            issue = ready
        # A load missing all the way to memory needs a free MSHR: the pool
        # bounds memory-level parallelism.
        if memory_miss:
            free = mshrs.next_free()
            if free > issue:
                issue = free
        # Divides and multiplies occupy their unit unpipelined; everything
        # else is fully pipelined (one issue slot per cycle per unit).
        if op == OP_FP_DIV or op == OP_INT_MUL:
            fu.acquire(issue + latency)
        else:
            fu.acquire(issue + 1)
        if memory_miss:
            mshrs.acquire(issue + latency)
        last_issue = issue

        # ---- execute / complete ------------------------------------------
        if op == OP_LOAD:
            pass  # level, latency and counts handled above
        elif op == OP_STORE:
            # Stores update the hierarchy for state (write-allocate) but
            # commit asynchronously from the store queue.
            data_access(mem_block[i], data_reuse[i])
            counts.stores += 1
        elif op == OP_INT:
            counts.int_ops += 1
        elif op == OP_INT_MUL:
            counts.int_mul_ops += 1
        elif op == OP_FP:
            counts.fp_ops += 1
        elif op == OP_FP_DIV:
            counts.fp_div_ops += 1
        comp = issue + latency
        completion[i] = comp

        if op == OP_BRANCH:
            counts.branches += 1
            if not predict_and_update(sites[i], takens[i]):
                counts.mispredicts += 1
                if comp + 1 > fetch_available:
                    fetch_available = comp + 1

        # ---- retire -------------------------------------------------------
        rt = comp + 1
        if rt < last_retire:
            rt = last_retire
        rt = retire_limiter.next_slot(rt)
        last_retire = rt

        # ---- release resources -------------------------------------------
        rob.acquire(rt)
        if reg is not None:
            reg.acquire(rt)
        if op == OP_LOAD:
            rs_window.acquire(comp)
        elif op == OP_STORE:
            rs_window.acquire(comp)
            store_q.acquire(rt + dl1_latency)
        else:
            rs_window.acquire(issue + 1)

        # ---- register file traffic ----------------------------------------
        reads = (1 if src1[i] else 0) + (1 if src2[i] else 0)
        if op == OP_FP or op == OP_FP_DIV:
            counts.fpr_reads += reads
            counts.fpr_writes += 1
        else:
            counts.gpr_reads += reads
            if op == OP_INT or op == OP_INT_MUL or op == OP_LOAD:
                counts.gpr_writes += 1

    counts.cycles = last_retire
    memory_counts = memory.counts()
    counts.il1_accesses = memory_counts["il1_accesses"]
    counts.il1_misses = memory_counts["il1_misses"]
    counts.dl1_accesses = memory_counts["dl1_accesses"]
    counts.dl1_misses = memory_counts["dl1_misses"]
    counts.l2_accesses = memory_counts["l2_accesses"]
    counts.l2_misses = memory_counts["l2_misses"]
    counts.memory_accesses = memory_counts["memory_accesses"]

    return PipelineOutcome(cycles=last_retire, counts=counts)
