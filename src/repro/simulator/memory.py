"""Memory hierarchy models consumed by the timing pipeline.

Two interchangeable implementations of one interface:

- :class:`StackDistanceMemory` (default) — classifies each access by its
  LRU reuse distance against the effective capacity of each level, via the
  inclusion (stack) property of LRU: an access with distance ``d`` hits in
  any LRU cache holding more than ``d`` blocks.  Set-associativity costs a
  conflict factor (Smith's rule of thumb: a ways remove about
  ``2^-a`` of fully-associative hits).  This gives *steady-state* cache
  behaviour even for short traces — the role the paper's sampled,
  validated traces [11] play — and guarantees miss-rate monotonicity in
  capacity, which the design-space studies rely on.

- :class:`FunctionalMemory` — drives the real set-associative LRU
  :class:`~repro.simulator.caches.CacheHierarchy` with concrete block ids.
  Exact, stateful and subject to cold-start; used for validation,
  associativity experiments and tests.

Both return the level that services each access ("l1" / "l2" / "mem") and
keep identical counters.
"""

from __future__ import annotations

from typing import Dict

from .caches import CacheHierarchy
from .config import MachineConfig

#: Fraction of the unified L2 effectively available to the data stream.
L2_DATA_SHARE = 0.85

#: Fraction of the unified L2 effectively available to the code stream.
#: Shares may overlap: they approximate contention, not a partition.
L2_INSTR_SHARE = 0.30

#: Blocks per KB at the 128-byte block size.
BLOCKS_PER_KB = 8


def associativity_factor(assoc: int) -> float:
    """Effective-capacity multiplier of an ``assoc``-way LRU cache.

    Approximates conflict misses: a direct-mapped cache behaves like a
    fully-associative cache of roughly half its size, and the penalty
    halves with each doubling of associativity (1 - 2^-a).
    """
    if assoc < 1:
        raise ValueError(f"associativity must be >= 1, got {assoc}")
    return 1.0 - 2.0 ** (-assoc)


class StackDistanceMemory:
    """Reuse-distance memory model (steady-state behaviour)."""

    def __init__(self, config: MachineConfig):
        self.dl1_effective = (
            config.dl1_kb * BLOCKS_PER_KB * associativity_factor(config.dl1_assoc)
        )
        self.il1_effective = (
            config.il1_kb * BLOCKS_PER_KB * associativity_factor(config.il1_assoc)
        )
        l2_blocks = config.l2_mb * 1024.0 * BLOCKS_PER_KB
        l2_factor = associativity_factor(config.l2_assoc)
        self.l2_data_effective = l2_blocks * l2_factor * L2_DATA_SHARE
        self.l2_instr_effective = l2_blocks * l2_factor * L2_INSTR_SHARE
        self._counts = _new_counts()

    def data_access(self, block: int, reuse: int) -> str:
        counts = self._counts
        counts["dl1_accesses"] += 1
        if reuse < self.dl1_effective:
            return "l1"
        counts["dl1_misses"] += 1
        counts["l2_accesses"] += 1
        if reuse < self.l2_data_effective:
            return "l2"
        counts["l2_misses"] += 1
        counts["memory_accesses"] += 1
        return "mem"

    def instr_access(self, block: int, reuse: int) -> str:
        counts = self._counts
        counts["il1_accesses"] += 1
        if reuse < self.il1_effective:
            return "l1"
        counts["il1_misses"] += 1
        counts["l2_accesses"] += 1
        if reuse < self.l2_instr_effective:
            return "l2"
        counts["l2_misses"] += 1
        counts["memory_accesses"] += 1
        return "mem"

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)


class FunctionalMemory:
    """Concrete set-associative hierarchy driven by block ids."""

    def __init__(self, hierarchy: CacheHierarchy):
        self.hierarchy = hierarchy

    def data_access(self, block: int, reuse: int) -> str:
        return self.hierarchy.data_access(block)

    def instr_access(self, block: int, reuse: int) -> str:
        return self.hierarchy.instruction_access(block)

    def counts(self) -> Dict[str, int]:
        stats = self.hierarchy.stats()
        return {
            "il1_accesses": stats.il1.accesses,
            "il1_misses": stats.il1.misses,
            "dl1_accesses": stats.dl1.accesses,
            "dl1_misses": stats.dl1.misses,
            "l2_accesses": stats.l2.accesses,
            "l2_misses": stats.l2.misses,
            "memory_accesses": stats.memory_accesses,
        }


def _new_counts() -> Dict[str, int]:
    return {
        "il1_accesses": 0,
        "il1_misses": 0,
        "dl1_accesses": 0,
        "dl1_misses": 0,
        "l2_accesses": 0,
        "l2_misses": 0,
        "memory_accesses": 0,
    }
