"""Machine configuration.

A :class:`MachineConfig` resolves a design point (plus fixed baseline
choices such as associativities, predictor geometry and technology
constants) into everything the timing and power models need: stage counts,
clock frequency, per-op latencies in cycles, queue/register capacities and
cache geometry.

The Table 3 POWER4-like baseline is exposed both as a literal config
(:func:`baseline_config`) and as a design point snapped onto the Table 1
grid (:func:`baseline_point`) for the constrained pipeline-depth study.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..designspace import DesignPoint, DesignSpace
from ..power import cacti
from ..workloads.trace import (
    OP_BRANCH,
    OP_FP,
    OP_FP_DIV,
    OP_INT,
    OP_INT_MUL,
    OP_LOAD,
    OP_STORE,
)
from . import frequency


class ConfigError(ValueError):
    """Raised for inconsistent machine configurations."""


#: Logic depth (FO4) of each operation class; cycles follow from depth.
#: Values avoid coincident cycle-count steps across the explored depth
#: range (latency quantization artifacts in the depth study).
OP_LOGIC_FO4: Dict[int, float] = {
    OP_INT: 12.0,
    OP_INT_MUL: 105.0,
    OP_FP: 125.0,
    OP_FP_DIV: 460.0,
    OP_LOAD: 12.0,   # address generation; cache latency added separately
    OP_STORE: 12.0,
    OP_BRANCH: 12.0,
}

#: Architected register counts; rename registers beyond these are free.
ARCHITECTED_GPR = 36
ARCHITECTED_FPR = 32

#: Reorder-buffer (completion table) capacity.  The paper does not vary it;
#: it is sized so physical registers and queues are the binding window
#: limits, as in Turandot.
ROB_SIZE = 256


@dataclass(frozen=True)
class MachineConfig:
    """Fully resolved machine parameters for one design.

    Primary design parameters mirror Table 1; the remaining fields are the
    fixed baseline choices of Table 3 (associativities, predictor) and the
    technology-derived quantities (frequency, stage counts, latencies).
    """

    # -- Table 1 design parameters ----------------------------------------
    depth_fo4: float
    width: int
    ls_queue: int
    store_queue: int
    functional_units: int
    gpr_phys: int
    fpr_phys: int
    spr_phys: int
    br_resv: int
    fx_resv: int
    fp_resv: int
    il1_kb: float
    dl1_kb: float
    l2_mb: float

    # -- fixed baseline structure (Table 3) --------------------------------
    il1_assoc: int = 1
    dl1_assoc: int = 2
    l2_assoc: int = 4
    predictor: str = "bht-1bit"
    predictor_entries: int = 16 * 1024
    rob_size: int = ROB_SIZE
    mshr_count: int = 16
    in_order: bool = False
    prefetch: bool = False

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigError(f"width must be >= 1, got {self.width}")
        if self.functional_units < 1:
            raise ConfigError("functional unit count must be >= 1")
        if self.gpr_phys <= ARCHITECTED_GPR:
            raise ConfigError(
                f"gpr_phys={self.gpr_phys} leaves no rename registers "
                f"(architected {ARCHITECTED_GPR})"
            )
        if self.fpr_phys <= ARCHITECTED_FPR:
            raise ConfigError(
                f"fpr_phys={self.fpr_phys} leaves no rename registers "
                f"(architected {ARCHITECTED_FPR})"
            )
        for label, value in (
            ("ls_queue", self.ls_queue),
            ("store_queue", self.store_queue),
            ("br_resv", self.br_resv),
            ("fx_resv", self.fx_resv),
            ("fp_resv", self.fp_resv),
            ("rob_size", self.rob_size),
            ("mshr_count", self.mshr_count),
        ):
            if value < 1:
                raise ConfigError(f"{label} must be >= 1, got {value}")
        frequency.cycle_time_ps(self.depth_fo4)  # validates the depth

    # -- derived timing ----------------------------------------------------

    @property
    def frequency_ghz(self) -> float:
        return frequency.frequency_ghz(self.depth_fo4)

    @property
    def cycle_time_ns(self) -> float:
        return frequency.cycle_time_ps(self.depth_fo4) / 1000.0

    @property
    def frontend_stages(self) -> int:
        return frequency.frontend_stages(self.depth_fo4)

    @property
    def total_stages(self) -> int:
        return frequency.total_stages(self.depth_fo4)

    @property
    def dispatch_rate(self) -> int:
        """Dispatch bandwidth: 2w+1 (9/cycle at the 4-wide baseline)."""
        return 2 * self.width + 1

    @property
    def gpr_rename(self) -> int:
        """Free integer rename registers."""
        return self.gpr_phys - ARCHITECTED_GPR

    @property
    def fpr_rename(self) -> int:
        """Free floating-point rename registers."""
        return self.fpr_phys - ARCHITECTED_FPR

    def op_latency(self, op: int) -> int:
        """Execution latency in cycles for a non-memory op class."""
        return frequency.latency_cycles(OP_LOGIC_FO4[op], self.depth_fo4)

    @property
    def il1_latency(self) -> int:
        return frequency.ns_to_cycles(
            cacti.access_time_ns(self.il1_kb, self.il1_assoc), self.depth_fo4
        )

    @property
    def dl1_latency(self) -> int:
        return frequency.ns_to_cycles(
            cacti.access_time_ns(self.dl1_kb, self.dl1_assoc), self.depth_fo4
        )

    @property
    def l2_latency(self) -> int:
        return frequency.ns_to_cycles(
            cacti.access_time_ns(self.l2_mb * 1024.0, self.l2_assoc),
            self.depth_fo4,
        )

    @property
    def memory_latency(self) -> int:
        return frequency.ns_to_cycles(cacti.MEMORY_LATENCY_NS, self.depth_fo4)

    def data_latency(self, level: str) -> int:
        """Load-to-use latency in cycles for the level servicing a load."""
        if level == "l1":
            return self.dl1_latency
        if level == "l2":
            return self.dl1_latency + self.l2_latency
        if level == "mem":
            return self.dl1_latency + self.l2_latency + self.memory_latency
        raise ConfigError(f"unknown memory level {level!r}")

    def fetch_penalty(self, level: str) -> int:
        """Extra fetch cycles when the i-L1 misses to ``level``."""
        if level == "l1":
            return 0
        if level == "l2":
            return self.l2_latency
        if level == "mem":
            return self.l2_latency + self.memory_latency
        raise ConfigError(f"unknown memory level {level!r}")

    def with_overrides(self, **overrides) -> "MachineConfig":
        """Copy with some fields replaced (ablation hooks)."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, float]:
        """Flat summary used by tables and result metadata."""
        return {
            "depth_fo4": self.depth_fo4,
            "width": self.width,
            "frequency_ghz": round(self.frequency_ghz, 3),
            "frontend_stages": self.frontend_stages,
            "total_stages": self.total_stages,
            "gpr_phys": self.gpr_phys,
            "fpr_phys": self.fpr_phys,
            "br_resv": self.br_resv,
            "fx_resv": self.fx_resv,
            "fp_resv": self.fp_resv,
            "ls_queue": self.ls_queue,
            "store_queue": self.store_queue,
            "functional_units": self.functional_units,
            "il1_kb": self.il1_kb,
            "dl1_kb": self.dl1_kb,
            "l2_mb": self.l2_mb,
            "dl1_latency": self.dl1_latency,
            "l2_latency": self.l2_latency,
            "memory_latency": self.memory_latency,
        }


def config_from_point(
    space: DesignSpace, point: DesignPoint, **overrides
) -> MachineConfig:
    """Resolve a design point of ``space`` into a machine configuration.

    Extension parameters (``dl1_assoc``, ``in_order``) are honoured when the
    space defines them; additional keyword overrides win over both.
    """
    settings = space.machine_settings(point)
    kwargs = {
        "depth_fo4": float(settings["depth"]),
        "width": int(settings["width"]),
        "ls_queue": int(settings["ls_queue"]),
        "store_queue": int(settings["store_queue"]),
        "functional_units": int(settings["functional_units"]),
        "gpr_phys": int(settings["gpr_phys"]),
        "fpr_phys": int(settings["fpr_phys"]),
        "spr_phys": int(settings["spr_phys"]),
        "br_resv": int(settings["br_resv"]),
        "fx_resv": int(settings["fx_resv"]),
        "fp_resv": int(settings["fp_resv"]),
        "il1_kb": float(settings["il1_kb"]),
        "dl1_kb": float(settings["dl1_kb"]),
        "l2_mb": float(settings["l2_mb"]),
    }
    if "dl1_assoc" in settings:
        kwargs["dl1_assoc"] = int(settings["dl1_assoc"])
    if "in_order" in settings:
        kwargs["in_order"] = bool(settings["in_order"])
    if "prefetch" in settings:
        kwargs["prefetch"] = bool(settings["prefetch"])
    kwargs.update(overrides)
    return MachineConfig(**kwargs)


#: Table 3 baseline expressed as raw settings (19 FO4, 4-wide POWER4-like).
BASELINE_SETTINGS: Dict[str, float] = {
    "depth": 19.0,
    "width": 4,
    "gpr_phys": 80,
    "br_resv": 12,
    "il1_kb": 64.0,
    "dl1_kb": 32.0,
    "l2_mb": 2.0,
}


def baseline_config() -> MachineConfig:
    """The literal Table 3 machine (19 FO4; not on the Table 1 grid)."""
    return MachineConfig(
        depth_fo4=19.0,
        width=4,
        ls_queue=30,
        store_queue=28,
        functional_units=2,
        gpr_phys=80,
        fpr_phys=72,
        spr_phys=66,
        br_resv=12,
        fx_resv=22,
        fp_resv=11,
        il1_kb=64.0,
        dl1_kb=32.0,
        l2_mb=2.0,
    )


def baseline_point(space: DesignSpace) -> DesignPoint:
    """Table 3 baseline snapped onto ``space``'s grid (depth 19 -> 18 FO4)."""
    return space.snap(
        depth=BASELINE_SETTINGS["depth"],
        width=BASELINE_SETTINGS["width"],
        gpr_phys=BASELINE_SETTINGS["gpr_phys"],
        br_resv=BASELINE_SETTINGS["br_resv"],
        il1_kb=BASELINE_SETTINGS["il1_kb"],
        dl1_kb=BASELINE_SETTINGS["dl1_kb"],
        l2_mb=BASELINE_SETTINGS["l2_mb"],
    )
