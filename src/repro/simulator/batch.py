"""Batched multi-config timing kernel.

Replays one :class:`~repro.workloads.trace.Trace` against a whole block of
:class:`~repro.simulator.config.MachineConfig` designs in a single pass —
the access pattern of a campaign, where every chunk simulates many sampled
designs on the *same* benchmark trace.  The scalar
:func:`~repro.simulator.pipeline.run_pipeline` visits each instruction
once per design; this kernel visits each instruction once per *block*,
carrying the fetch/dispatch/issue/complete/retire state as int64 numpy
arrays over the config axis.  The per-instruction work is therefore a
fixed number of O(B) vector operations instead of B repetitions of the
scalar bookkeeping.

Two properties of the scalar model make the vectorization exact rather
than approximate:

- **Op classes are shared.**  The op class at instruction ``i`` comes from
  the trace, not the config, so every design takes the same code path per
  instruction; only the *values* (latencies, capacities, outcome streams)
  differ across the block.
- **The memory and branch streams are timing-independent.**  The scalar
  pipeline consults the cache model and the predictor in program order
  regardless of the cycles it assigns, so service levels, mispredict
  outcomes, fetch penalties and prefetch coverage can all be precomputed
  per block (and the trace-only parts once per trace, memoized via
  :meth:`~repro.workloads.trace.Trace.derived`) before the timing loop
  runs.

The equivalence contract is *hard*: for every config in the block,
:func:`run_pipeline_batch` returns bit-identical cycles and
:class:`~repro.simulator.results.ActivityCounts` to the scalar
``run_pipeline`` reference path (see ``tests/test_batch_sim.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workloads.trace import (
    OP_BRANCH,
    OP_FP,
    OP_FP_DIV,
    OP_INT,
    OP_INT_MUL,
    OP_LOAD,
    OP_STORE,
    Trace,
)
from .branch import build_predictor
from .caches import build_hierarchy
from .config import MachineConfig
from .memory import FunctionalMemory, StackDistanceMemory
from .pipeline import PipelineOutcome
from .results import ActivityCounts

_LEVEL_CODES = {"l1": 0, "l2": 1, "mem": 2}


class _TraceView:
    """Config-independent precomputation, built once per trace.

    Everything here depends only on the trace columns: python-scalar
    copies of the hot columns, the program-order access streams consumed
    by the memory models, per-load next-line-sequential flags, and the
    activity counts that are identical for every config.
    """

    __slots__ = (
        "n", "ops", "src1", "src2", "max_dep", "fetch_flags",
        "instr_reuse", "mem_reuse", "mem_is_load", "load_sequential",
        "branch_sites", "branch_takens",
        "access_is_data", "access_blocks",
        "warm_data_blocks", "warm_instr_blocks",
        "base_counts",
    )

    def __init__(self, trace: Trace):
        op = trace.op.astype(np.int64)
        n = len(trace)
        self.n = n
        self.ops = op.tolist()
        self.src1 = trace.src1.tolist()
        self.src2 = trace.src2.tolist()
        self.max_dep = int(max(trace.src1.max(), trace.src2.max()))

        # Fetch-event stream (new instruction blocks, in program order).
        fetch_mask = trace.instr_reuse >= 0
        self.fetch_flags = fetch_mask.tolist()
        self.instr_reuse = trace.instr_reuse[fetch_mask].astype(np.int64)

        # Data-access stream: the scalar pipeline calls ``data_access``
        # for every load (at resolve) and store (at execute), i.e. for
        # memory-class ops in program order.
        is_mem_op = np.isin(op, (OP_LOAD, OP_STORE))
        self.mem_reuse = trace.data_reuse[is_mem_op].astype(np.int64)
        is_load = op == OP_LOAD
        self.mem_is_load = op[is_mem_op] == OP_LOAD

        # Next-line prefetch flags, exactly as the scalar path derives
        # them: over the concrete block stream (``mem_block >= 0``), then
        # sliced down to loads (the only consumers).
        block_mask = trace.mem_block >= 0
        blocks = trace.mem_block[block_mask]
        flags = np.zeros(blocks.size, dtype=bool)
        if blocks.size > 1:
            flags[1:] = blocks[1:] == blocks[:-1] + 1
        sequential_full = np.zeros(n, dtype=bool)
        sequential_full[np.flatnonzero(block_mask)] = flags
        self.load_sequential = sequential_full[is_load]

        # Branch stream for predictor replay.
        branch_mask = op == OP_BRANCH
        self.branch_sites = trace.branch_site[branch_mask].tolist()
        self.branch_takens = trace.taken[branch_mask].tolist()

        # Interleaved program-order access sequence for the stateful
        # functional hierarchy: within one instruction, the fetch access
        # precedes the data access, matching the scalar loop's order.
        f_pos = np.flatnonzero(fetch_mask) * 2
        d_pos = np.flatnonzero(is_mem_op) * 2 + 1
        order = np.argsort(np.concatenate([f_pos, d_pos]), kind="stable")
        self.access_is_data = np.concatenate(
            [np.zeros(f_pos.size, dtype=bool), np.ones(d_pos.size, dtype=bool)]
        )[order].tolist()
        self.access_blocks = np.concatenate(
            [
                trace.iblock[fetch_mask].astype(np.int64),
                trace.mem_block[is_mem_op].astype(np.int64),
            ]
        )[order].tolist()

        # Warm-up replay streams (Simulator._warm_structures order: the
        # full data stream first, then the full instruction stream).
        self.warm_data_blocks = trace.mem_block[block_mask].tolist()
        self.warm_instr_blocks = trace.iblock[fetch_mask].tolist()

        # Activity counts that depend only on the trace.
        reads = (trace.src1 != 0).astype(np.int64) + (trace.src2 != 0)
        fp_mask = (op == OP_FP) | (op == OP_FP_DIV)
        self.base_counts = {
            "instructions": n,
            "int_ops": int((op == OP_INT).sum()),
            "int_mul_ops": int((op == OP_INT_MUL).sum()),
            "fp_ops": int((op == OP_FP).sum()),
            "fp_div_ops": int((op == OP_FP_DIV).sum()),
            "loads": int(is_load.sum()),
            "stores": int((op == OP_STORE).sum()),
            "branches": int(branch_mask.sum()),
            "fpr_reads": int(reads[fp_mask].sum()),
            "fpr_writes": int(fp_mask.sum()),
            "gpr_reads": int(reads[~fp_mask].sum()),
            "gpr_writes": int(
                np.isin(op, (OP_INT, OP_INT_MUL, OP_LOAD)).sum()
            ),
        }


def _trace_view(trace: Trace) -> _TraceView:
    return trace.derived(("batch", "view"), lambda: _TraceView(trace))


def _mispredict_stream(
    trace: Trace, view: _TraceView, name: str, entries: int, warm: bool
) -> np.ndarray:
    """Per-branch mispredict outcomes for one predictor geometry.

    The scalar pipeline updates the predictor for every branch in program
    order regardless of timing, so one replay of the branch stream fixes
    the outcome of every branch for every config sharing the predictor.
    ``warm`` replays the stream once beforehand (the warming pass resets
    only the stats, never the tables, so outcomes shift accordingly).
    """

    def build() -> np.ndarray:
        predictor = build_predictor(name, entries)
        predict_and_update = predictor.predict_and_update
        sites = view.branch_sites
        takens = view.branch_takens
        if warm:
            for site, taken in zip(sites, takens):
                predict_and_update(site, taken)
        return np.array(
            [not predict_and_update(s, t) for s, t in zip(sites, takens)],
            dtype=bool,
        )

    return trace.derived(("batch", "mispredict", name, entries, warm), build)


def _stack_levels(
    view: _TraceView, configs: Sequence[MachineConfig]
) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """Service levels + hierarchy counters under the stack-distance model.

    Broadcasting the shared reuse-distance streams against each config's
    effective capacities replicates the scalar threshold cascade exactly:
    level 0 below the L1 capacity, 1 below the L2 share, else 2.
    """
    models = [StackDistanceMemory(config) for config in configs]

    def column(attr: str) -> np.ndarray:
        return np.array(
            [getattr(m, attr) for m in models], dtype=np.float64
        )[:, None]
    data_reuse = view.mem_reuse[None, :]
    data_levels = np.where(
        data_reuse < column("dl1_effective"),
        np.int8(0),
        np.where(data_reuse < column("l2_data_effective"), np.int8(1), np.int8(2)),
    )
    instr_reuse = view.instr_reuse[None, :]
    instr_levels = np.where(
        instr_reuse < column("il1_effective"),
        np.int8(0),
        np.where(
            instr_reuse < column("l2_instr_effective"), np.int8(1), np.int8(2)
        ),
    )
    batch = len(configs)
    dl1_misses = (data_levels > 0).sum(axis=1)
    il1_misses = (instr_levels > 0).sum(axis=1)
    data_mem = (data_levels == 2).sum(axis=1)
    instr_mem = (instr_levels == 2).sum(axis=1)
    counters = {
        "dl1_accesses": np.full(batch, data_levels.shape[1], dtype=np.int64),
        "dl1_misses": dl1_misses,
        "il1_accesses": np.full(batch, instr_levels.shape[1], dtype=np.int64),
        "il1_misses": il1_misses,
        "l2_accesses": dl1_misses + il1_misses,
        "l2_misses": data_mem + instr_mem,
        "memory_accesses": data_mem + instr_mem,
    }
    return data_levels, instr_levels, counters


def _functional_replay(
    view: _TraceView,
    geometry: tuple,
    warm: bool,
    cache: Optional[Dict[tuple, tuple]],
) -> Tuple[np.ndarray, np.ndarray, Dict[str, int]]:
    """Replay the interleaved access stream through one concrete hierarchy.

    The unified L2 couples the instruction and data streams, so the
    stateful hierarchy is replayed once per distinct cache geometry in the
    block (``cache`` shares replays across sub-blocks of one call).
    """
    if cache is not None and geometry in cache:
        return cache[geometry]
    il1_kb, il1_assoc, dl1_kb, dl1_assoc, l2_mb, l2_assoc = geometry
    hierarchy = build_hierarchy(
        il1_kb,
        dl1_kb,
        l2_mb,
        il1_assoc=il1_assoc,
        dl1_assoc=dl1_assoc,
        l2_assoc=l2_assoc,
    )
    if warm:
        data_access = hierarchy.data_access
        for block in view.warm_data_blocks:
            data_access(block)
        instruction_access = hierarchy.instruction_access
        for block in view.warm_instr_blocks:
            instruction_access(block)
        hierarchy.il1.stats.reset()
        hierarchy.dl1.stats.reset()
        hierarchy.l2.stats.reset()
        hierarchy.memory_accesses = 0
    data_codes: List[int] = []
    instr_codes: List[int] = []
    data_access = hierarchy.data_access
    instruction_access = hierarchy.instruction_access
    for is_data, block in zip(view.access_is_data, view.access_blocks):
        if is_data:
            data_codes.append(_LEVEL_CODES[data_access(block)])
        else:
            instr_codes.append(_LEVEL_CODES[instruction_access(block)])
    counts = FunctionalMemory(hierarchy).counts()
    result = (
        np.array(data_codes, dtype=np.int8),
        np.array(instr_codes, dtype=np.int8),
        counts,
    )
    if cache is not None:
        cache[geometry] = result
    return result


def _functional_levels(
    view: _TraceView,
    configs: Sequence[MachineConfig],
    warm: bool,
    cache: Optional[Dict[tuple, tuple]],
) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """Per-config level streams + counters under the functional model."""
    geometries = [
        (
            config.il1_kb,
            config.il1_assoc,
            config.dl1_kb,
            config.dl1_assoc,
            config.l2_mb,
            config.l2_assoc,
        )
        for config in configs
    ]
    replays = {
        geometry: _functional_replay(view, geometry, warm, cache)
        for geometry in dict.fromkeys(geometries)
    }
    data_levels = np.stack([replays[g][0] for g in geometries])
    instr_levels = np.stack([replays[g][1] for g in geometries])
    counters = {
        key: np.array([replays[g][2][key] for g in geometries], dtype=np.int64)
        for key in replays[geometries[0]][2]
    }
    return data_levels, instr_levels, counters


class _BatchWindow:
    """:class:`~repro.simulator.resources.OccupancyWindow` over a block.

    One ring of release times per config, with per-config capacity: the
    next occupant of config ``b`` cannot acquire before the release
    recorded ``capacity[b]`` acquisitions earlier.  Acquisition events are
    shared across the block (the instruction stream is common), so one
    head-pointer array advances in lockstep — except for masked acquires
    (:meth:`acquire_where`), where only some configs consume a slot.
    """

    __slots__ = ("_capacity", "_releases", "_head", "_rows")

    def __init__(self, capacities: np.ndarray):
        self._capacity = capacities
        self._releases = np.zeros(
            (capacities.size, int(capacities.max())), dtype=np.int64
        )
        self._head = np.zeros(capacities.size, dtype=np.int64)
        self._rows = np.arange(capacities.size)

    def next_free(self) -> np.ndarray:
        return self._releases[self._rows, self._head]

    def acquire(self, release_time: np.ndarray) -> None:
        head = self._head
        self._releases[self._rows, head] = release_time
        np.add(head, 1, out=head)
        np.remainder(head, self._capacity, out=head)

    def acquire_where(self, mask: np.ndarray, release_time: np.ndarray) -> None:
        rows = self._rows[mask]
        head = self._head[rows]
        self._releases[rows, head] = release_time[mask]
        head += 1
        np.remainder(head, self._capacity[rows], out=head)
        self._head[rows] = head


class _BatchLimiter:
    """:class:`~repro.simulator.resources.ThroughputLimiter` over a block."""

    __slots__ = ("_window",)

    def __init__(self, rates: np.ndarray):
        self._window = _BatchWindow(rates)

    def next_slot(self, earliest: np.ndarray) -> np.ndarray:
        time = np.maximum(earliest, self._window.next_free())
        self._window.acquire(time + 1)
        return time


def run_pipeline_batch(
    trace: Trace,
    configs: Sequence[MachineConfig],
    memory_mode: str = "stack",
    warm: bool = True,
    _functional_cache: Optional[Dict[tuple, tuple]] = None,
) -> List[PipelineOutcome]:
    """Schedule ``trace`` on every config at once; one outcome per config.

    Bit-identical to calling the scalar
    :func:`~repro.simulator.pipeline.run_pipeline` per config with the
    matching memory model and a warmed/unwarmed predictor — the hard
    equivalence contract of the batch kernel.  ``memory_mode`` and
    ``warm`` mirror the :class:`~repro.simulator.simulator.Simulator`
    settings; ``_functional_cache`` optionally shares functional-hierarchy
    replays across consecutive blocks of one caller.
    """
    configs = list(configs)
    if not configs:
        return []
    if memory_mode not in ("stack", "functional"):
        raise ValueError(
            f"unknown memory mode {memory_mode!r}; choices are "
            "('stack', 'functional')"
        )
    view = _trace_view(trace)
    batch = len(configs)

    # ---- per-block precompute (timing-independent) -----------------------
    if memory_mode == "stack":
        data_levels, instr_levels, mem_counters = _stack_levels(view, configs)
    else:
        data_levels, instr_levels, mem_counters = _functional_levels(
            view, configs, warm, _functional_cache
        )

    def int_column(get) -> np.ndarray:
        return np.array([get(config) for config in configs], dtype=np.int64)
    lat_l1 = int_column(lambda c: c.data_latency("l1"))[:, None]
    lat_l2 = int_column(lambda c: c.data_latency("l2"))[:, None]
    lat_mem = int_column(lambda c: c.data_latency("mem"))[:, None]

    # Per-load latency / memory-miss columns, with next-line prefetch
    # coverage applied by *latency value* (not level), as the scalar does.
    load_levels = data_levels[:, view.mem_is_load]
    load_lat = np.where(
        load_levels == 0,
        lat_l1,
        np.where(load_levels == 1, lat_l2, lat_mem),
    )
    load_miss = load_levels == 2
    prefetch = np.array([c.prefetch for c in configs], dtype=bool)[:, None]
    covered = prefetch & (load_lat != lat_l1) & view.load_sequential[None, :]
    if covered.any():
        load_lat = np.where(covered, np.broadcast_to(lat_l1, load_lat.shape), load_lat)
        load_miss &= ~covered
    prefetch_covered = covered.sum(axis=1)

    pen_l2 = int_column(lambda c: c.fetch_penalty("l2"))[:, None]
    pen_mem = int_column(lambda c: c.fetch_penalty("mem"))[:, None]
    fetch_pen = np.ascontiguousarray(
        np.where(
            instr_levels == 0, 0, np.where(instr_levels == 1, pen_l2, pen_mem)
        ).T
    )
    load_lat = np.ascontiguousarray(load_lat.T)
    load_miss = np.ascontiguousarray(load_miss.T)

    predictor_keys = [(c.predictor, c.predictor_entries) for c in configs]
    uniform_predictor = len(set(predictor_keys)) == 1
    if uniform_predictor:
        stream = _mispredict_stream(trace, view, *predictor_keys[0], warm)
        mispredict_rows = stream.tolist()
        mispredict_totals = np.full(batch, int(stream.sum()), dtype=np.int64)
    else:
        matrix = np.stack(
            [
                _mispredict_stream(trace, view, name, entries, warm)
                for name, entries in predictor_keys
            ],
            axis=1,
        )
        mispredict_rows = matrix
        mispredict_totals = matrix.sum(axis=0).astype(np.int64)

    # ---- per-config scalars and resource state ---------------------------
    frontend = int_column(lambda c: c.frontend_stages)
    lat_int = int_column(lambda c: c.op_latency(OP_INT))
    lat_mul = int_column(lambda c: c.op_latency(OP_INT_MUL))
    lat_fp = int_column(lambda c: c.op_latency(OP_FP))
    lat_div = int_column(lambda c: c.op_latency(OP_FP_DIV))
    lat_store = int_column(lambda c: c.op_latency(OP_STORE))
    lat_branch = int_column(lambda c: c.op_latency(OP_BRANCH))
    dl1_latency = int_column(lambda c: c.dl1_latency)
    in_order = np.array([c.in_order for c in configs], dtype=bool)
    any_in_order = bool(in_order.any())

    fetch_limiter = _BatchLimiter(int_column(lambda c: c.width))
    dispatch_limiter = _BatchLimiter(int_column(lambda c: c.dispatch_rate))
    retire_limiter = _BatchLimiter(int_column(lambda c: c.width))
    rob = _BatchWindow(int_column(lambda c: c.rob_size))
    gpr = _BatchWindow(int_column(lambda c: c.gpr_rename))
    fpr = _BatchWindow(int_column(lambda c: c.fpr_rename))
    fx_rs = _BatchWindow(int_column(lambda c: c.fx_resv))
    fp_rs = _BatchWindow(int_column(lambda c: c.fp_resv))
    br_rs = _BatchWindow(int_column(lambda c: c.br_resv))
    load_queue = _BatchWindow(int_column(lambda c: c.ls_queue))
    store_q = _BatchWindow(int_column(lambda c: c.store_queue))
    units = int_column(lambda c: c.functional_units)
    fxu = _BatchWindow(units)
    fpu = _BatchWindow(units.copy())
    lsu = _BatchWindow(units.copy())
    bru = _BatchWindow(units.copy())
    mshrs = _BatchWindow(int_column(lambda c: c.mshr_count))

    ops = view.ops
    src1 = view.src1
    src2 = view.src2
    fetch_flags = view.fetch_flags
    n = view.n
    ring = view.max_dep + 1
    completion = np.zeros((ring, batch), dtype=np.int64)
    fetch_available = np.zeros(batch, dtype=np.int64)
    last_dispatch = np.zeros(batch, dtype=np.int64)
    last_issue = np.zeros(batch, dtype=np.int64)
    last_retire = np.zeros(batch, dtype=np.int64)
    maximum = np.maximum

    load_index = 0
    fetch_index = 0
    branch_index = 0

    # ---- the timing loop: one pass, O(B) vector work per instruction -----
    for i in range(n):
        op = ops[i]

        # fetch
        if fetch_flags[i]:
            fetch_available = fetch_available + fetch_pen[fetch_index]
            fetch_index += 1
        fetch_time = fetch_limiter.next_slot(fetch_available)

        # dispatch
        disp = fetch_time + frontend
        maximum(disp, last_dispatch, out=disp)
        maximum(disp, rob.next_free(), out=disp)
        miss = None
        if op == OP_INT:
            rs_window, fu, reg, latency = fx_rs, fxu, gpr, lat_int
        elif op == OP_LOAD:
            rs_window, fu, reg = load_queue, lsu, gpr
            latency = load_lat[load_index]
            miss = load_miss[load_index]
            load_index += 1
        elif op == OP_BRANCH:
            rs_window, fu, reg, latency = br_rs, bru, None, lat_branch
        elif op == OP_STORE:
            rs_window, fu, reg, latency = load_queue, lsu, None, lat_store
            maximum(disp, store_q.next_free(), out=disp)
        elif op == OP_FP:
            rs_window, fu, reg, latency = fp_rs, fpu, fpr, lat_fp
        elif op == OP_INT_MUL:
            rs_window, fu, reg, latency = fx_rs, fxu, gpr, lat_mul
        else:  # OP_FP_DIV
            rs_window, fu, reg, latency = fp_rs, fpu, fpr, lat_div
        maximum(disp, rs_window.next_free(), out=disp)
        if reg is not None:
            maximum(disp, reg.next_free(), out=disp)
        disp = dispatch_limiter.next_slot(disp)
        last_dispatch = disp

        # issue
        ready = disp + 1
        distance = src1[i]
        if distance:
            maximum(ready, completion[(i - distance) % ring], out=ready)
        distance = src2[i]
        if distance:
            maximum(ready, completion[(i - distance) % ring], out=ready)
        if any_in_order:
            ready = np.where(in_order, maximum(ready, last_issue), ready)
        issue = maximum(ready, fu.next_free())
        if miss is not None and miss.any():
            issue = np.where(miss, maximum(issue, mshrs.next_free()), issue)
            comp = issue + latency
            mshrs.acquire_where(miss, comp)
        else:
            comp = issue + latency
        if op == OP_FP_DIV or op == OP_INT_MUL:
            fu.acquire(comp)
        else:
            fu.acquire(issue + 1)
        last_issue = issue
        completion[i % ring] = comp

        if op == OP_BRANCH:
            if uniform_predictor:
                if mispredict_rows[branch_index]:
                    maximum(fetch_available, comp + 1, out=fetch_available)
            else:
                mispredicted = mispredict_rows[branch_index]
                if mispredicted.any():
                    fetch_available = np.where(
                        mispredicted,
                        maximum(fetch_available, comp + 1),
                        fetch_available,
                    )
            branch_index += 1

        # retire
        retire = comp + 1
        maximum(retire, last_retire, out=retire)
        retire = retire_limiter.next_slot(retire)
        last_retire = retire

        # release resources
        rob.acquire(retire)
        if reg is not None:
            reg.acquire(retire)
        if op == OP_LOAD:
            rs_window.acquire(comp)
        elif op == OP_STORE:
            rs_window.acquire(comp)
            store_q.acquire(retire + dl1_latency)
        else:
            rs_window.acquire(issue + 1)

    # ---- assemble per-config outcomes ------------------------------------
    base = view.base_counts
    outcomes: List[PipelineOutcome] = []
    for b in range(batch):
        cycles = int(last_retire[b])
        counts = ActivityCounts(
            instructions=base["instructions"],
            cycles=cycles,
            int_ops=base["int_ops"],
            int_mul_ops=base["int_mul_ops"],
            fp_ops=base["fp_ops"],
            fp_div_ops=base["fp_div_ops"],
            loads=base["loads"],
            stores=base["stores"],
            branches=base["branches"],
            mispredicts=int(mispredict_totals[b]),
            gpr_reads=base["gpr_reads"],
            gpr_writes=base["gpr_writes"],
            fpr_reads=base["fpr_reads"],
            fpr_writes=base["fpr_writes"],
            prefetch_covered=int(prefetch_covered[b]),
            il1_accesses=int(mem_counters["il1_accesses"][b]),
            il1_misses=int(mem_counters["il1_misses"][b]),
            dl1_accesses=int(mem_counters["dl1_accesses"][b]),
            dl1_misses=int(mem_counters["dl1_misses"][b]),
            l2_accesses=int(mem_counters["l2_accesses"][b]),
            l2_misses=int(mem_counters["l2_misses"][b]),
            memory_accesses=int(mem_counters["memory_accesses"][b]),
        )
        outcomes.append(PipelineOutcome(cycles=cycles, counts=counts))
    return outcomes
