"""Simulator facade.

Ties the pieces together the way the paper's toolchain does: a design
point resolves to a machine config, the benchmark trace is replayed
through the out-of-order timing model (Turandot's role), and the
PowerTimer-style model converts the activity counts into watts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from ..designspace import DesignPoint, DesignSpace
from ..obs.metrics import get_registry
from ..obs.tracing import Stopwatch, get_tracer
from ..power import PowerModel
from ..workloads import Trace, WorkloadProfile, generate_trace
from .batch import run_pipeline_batch
from .branch import build_predictor
from .caches import build_hierarchy
from .config import MachineConfig, config_from_point
from .memory import FunctionalMemory, StackDistanceMemory
from .pipeline import run_pipeline
from .results import SimulationResult

MEMORY_MODES = ("stack", "functional")

#: Default bound on the per-instance trace cache (LRU entries).  Sized to
#: hold every benchmark of the standard suite at one (length, seed) with
#: headroom; campaigns touch traces benchmark-by-benchmark, so even a
#: churning cache only ever regenerates on suite-sized working sets.
TRACE_CACHE_SIZE = 16


class Simulator:
    """Performance + power simulation of traces on configurable machines.

    One instance holds a power model and a bounded trace cache.  Each
    ``simulate`` call builds fresh cache and predictor state (as with the
    paper's per-run simulator invocations), so *simulation results* never
    depend on call order; the instance-level caches only memoize inputs:

    - ``_trace_cache`` — generated traces, keyed by
      ``(profile.name, length, seed)`` and bounded to the
      ``trace_cache_size`` most recently used entries (LRU; hits, misses
      and evictions are reported through the ``sim.trace_cache.*``
      metrics counters);
    - ``_branch_cache`` — per-trace branch streams used for predictor
      warming.

    ``memory_mode`` selects the cache model: ``"stack"`` (default) uses
    steady-state reuse-distance classification; ``"functional"`` drives the
    concrete set-associative hierarchy with block ids (cold-start,
    validation-oriented).

    ``warm=True`` (default) functionally warms stateful structures — the
    branch predictor, and in functional mode the caches — by replaying the
    trace's access streams once before the timed run, the same functional
    warming protocol sampled simulation uses (SMARTS [24]); short traces
    then measure steady-state behaviour instead of cold-start transients.
    """

    def __init__(
        self,
        power_model: Optional[PowerModel] = None,
        memory_mode: str = "stack",
        warm: bool = True,
        trace_cache_size: int = TRACE_CACHE_SIZE,
    ):
        if memory_mode not in MEMORY_MODES:
            raise ValueError(
                f"unknown memory mode {memory_mode!r}; choices are {MEMORY_MODES}"
            )
        if trace_cache_size < 1:
            raise ValueError(
                f"trace_cache_size must be >= 1, got {trace_cache_size}"
            )
        self.power_model = power_model or PowerModel()
        self.memory_mode = memory_mode
        self.warm = warm
        self.trace_cache_size = trace_cache_size
        self._trace_cache: "OrderedDict[tuple, Trace]" = OrderedDict()
        self._branch_cache: Dict[tuple, list] = {}

    # -- trace management ----------------------------------------------------

    def trace_for(
        self, profile: WorkloadProfile, length: int, seed: int = 0
    ) -> Trace:
        """Generate (and memoize) the synthetic trace for a profile.

        Traces are cached per ``(profile.name, length, seed)`` in a small
        LRU bounded by ``trace_cache_size``; cache traffic is visible as
        the ``sim.trace_cache.{hit,miss,evict}`` counters.
        """
        key = (profile.name, length, seed)
        cache = self._trace_cache
        registry = get_registry()
        if key in cache:
            cache.move_to_end(key)
            registry.increment("sim.trace_cache.hit")
            return cache[key]
        registry.increment("sim.trace_cache.miss")
        with get_tracer().span(
            "simulator.trace_for",
            benchmark=profile.name,
            length=length,
            seed=seed,
        ):
            trace = generate_trace(profile, length, seed)
        registry.increment("simulator.traces_generated")
        cache[key] = trace
        if len(cache) > self.trace_cache_size:
            cache.popitem(last=False)
            registry.increment("sim.trace_cache.evict")
        return trace

    # -- simulation ------------------------------------------------------------

    def simulate(
        self, trace: Trace, config: MachineConfig
    ) -> SimulationResult:
        """Run one trace on one machine; returns a result with power attached."""
        # Per-simulation cost lands in the metrics registry (histogram +
        # counters), not a span: campaigns run hundreds of simulations
        # per split and a span per cycle loop would swamp the trace.
        watch = Stopwatch().start()
        if self.memory_mode == "functional":
            memory = FunctionalMemory(
                build_hierarchy(
                    config.il1_kb,
                    config.dl1_kb,
                    config.l2_mb,
                    il1_assoc=config.il1_assoc,
                    dl1_assoc=config.dl1_assoc,
                    l2_assoc=config.l2_assoc,
                )
            )
        else:
            memory = StackDistanceMemory(config)
        predictor = build_predictor(config.predictor, config.predictor_entries)
        if self.warm:
            self._warm_structures(trace, memory, predictor)
        outcome = run_pipeline(trace, config, memory, predictor)
        result = SimulationResult(
            benchmark=trace.name,
            cycles=outcome.cycles,
            instructions=len(trace),
            frequency_ghz=config.frequency_ghz,
            counts=outcome.counts,
            config_summary=config.describe(),
            ref_instructions=trace.ref_instructions,
        )
        evaluated = self.power_model.evaluate(config, result)
        watch.stop()
        registry = get_registry()
        registry.increment("simulator.simulations")
        registry.increment("simulator.instructions", len(trace))
        registry.increment("simulator.cycles", float(outcome.cycles))
        registry.observe("simulator.simulate.seconds", watch.wall_s)
        return evaluated

    def _warm_structures(self, trace: Trace, memory, predictor) -> None:
        """Functional warming: replay access streams, then reset counters.

        The predictor is always warmed; caches only in functional mode
        (the stack-distance model is stateless and already steady-state).
        """
        for site, taken in self._branch_stream(trace):
            predictor.predict_and_update(site, taken)
        predictor.stats.predictions = 0
        predictor.stats.mispredictions = 0
        if isinstance(memory, FunctionalMemory):
            hierarchy = memory.hierarchy
            is_mem = trace.mem_block >= 0
            for block in trace.mem_block[is_mem].tolist():
                hierarchy.data_access(block)
            fetch_events = trace.instr_reuse >= 0
            for block in trace.iblock[fetch_events].tolist():
                hierarchy.instruction_access(block)
            hierarchy.il1.stats.reset()
            hierarchy.dl1.stats.reset()
            hierarchy.l2.stats.reset()
            hierarchy.memory_accesses = 0

    def _branch_stream(self, trace: Trace):
        """(site, taken) pairs of the trace's branches, memoized by identity.

        Keyed on the trace's defining tuple (name, length, seed) — object
        ids are unsafe keys because CPython reuses them after collection.
        """
        key = (trace.name, len(trace), trace.metadata.get("seed"))
        stream = self._branch_cache.get(key)
        if stream is None:
            mask = trace.branch_site >= 0
            stream = list(
                zip(trace.branch_site[mask].tolist(), trace.taken[mask].tolist())
            )
            self._branch_cache[key] = stream
        return stream

    def simulate_point(
        self,
        space: DesignSpace,
        point: DesignPoint,
        trace: Trace,
        **config_overrides,
    ) -> SimulationResult:
        """Resolve ``point`` against ``space`` and simulate ``trace`` on it."""
        config = config_from_point(space, point, **config_overrides)
        return self.simulate(trace, config)

    def simulate_batch(
        self,
        space: DesignSpace,
        points: Iterable[DesignPoint],
        trace: Trace,
        batch_size: Optional[int] = None,
        **config_overrides,
    ) -> List[SimulationResult]:
        """Simulate one trace across many design points in vectorized blocks.

        Replays ``trace`` once per block of up to ``batch_size`` configs
        (default: all points in one block) through the batched timing
        kernel (:func:`~repro.simulator.batch.run_pipeline_batch`),
        carrying pipeline state as arrays over the config axis.  Results
        are bit-identical to calling :meth:`simulate_point` per point —
        same cycles, same :class:`~repro.simulator.results.ActivityCounts`,
        same watts — just cheaper: the per-instruction python work is paid
        once per block instead of once per design.
        """
        points = list(points)
        if not points:
            return []
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        configs = [
            config_from_point(space, point, **config_overrides)
            for point in points
        ]
        size = batch_size or len(configs)
        watch = Stopwatch().start()
        results: List[SimulationResult] = []
        # Functional-hierarchy replays are shared across the blocks of
        # this call (same trace, recurring cache geometries).
        functional_cache: Dict[tuple, tuple] = {}
        with get_tracer().span(
            "simulator.simulate_batch",
            benchmark=trace.name,
            points=len(points),
            batch_size=size,
        ):
            for start in range(0, len(configs), size):
                block = configs[start : start + size]
                outcomes = run_pipeline_batch(
                    trace,
                    block,
                    memory_mode=self.memory_mode,
                    warm=self.warm,
                    _functional_cache=functional_cache,
                )
                for config, outcome in zip(block, outcomes):
                    result = SimulationResult(
                        benchmark=trace.name,
                        cycles=outcome.cycles,
                        instructions=len(trace),
                        frequency_ghz=config.frequency_ghz,
                        counts=outcome.counts,
                        config_summary=config.describe(),
                        ref_instructions=trace.ref_instructions,
                    )
                    results.append(self.power_model.evaluate(config, result))
        watch.stop()
        registry = get_registry()
        registry.increment("simulator.batch.points", len(points))
        registry.increment(
            "simulator.batch.blocks", -(-len(configs) // size)
        )
        registry.increment(
            "simulator.instructions", len(trace) * len(points)
        )
        registry.increment(
            "simulator.cycles", float(sum(r.cycles for r in results))
        )
        registry.observe("simulator.simulate_batch.seconds", watch.wall_s)
        return results

    def simulate_many(
        self,
        space: DesignSpace,
        points: Iterable[DesignPoint],
        trace: Trace,
        batch_size: Optional[int] = None,
        **config_overrides,
    ) -> list:
        """Simulate one trace across many design points.

        Delegates to :meth:`simulate_batch`; results are bit-identical to
        a per-point :meth:`simulate_point` loop.
        """
        return self.simulate_batch(
            space, points, trace, batch_size=batch_size, **config_overrides
        )
