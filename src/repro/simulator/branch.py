"""Branch predictors.

Table 3's baseline machine carries a 16k-entry 1-bit branch history table;
that predictor is the default.  A 2-bit bimodal table and a gshare
predictor are provided for ablation studies — branch behaviour interacts
with pipeline depth (the mispredict penalty scales with front-end stages),
so predictor quality shifts the depth optimum.
"""

from __future__ import annotations

from dataclasses import dataclass


class PredictorConfigError(ValueError):
    """Raised for invalid predictor geometries."""


@dataclass
class PredictorStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0


class BranchPredictor:
    """Interface: ``predict_and_update(site, taken) -> correct``."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = PredictorStats()

    def predict_and_update(self, site: int, taken: bool) -> bool:
        """Predict branch at ``site``, learn ``taken``, return correctness."""
        prediction = self._predict(site)
        self._update(site, taken)
        self.stats.predictions += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        return correct

    def _predict(self, site: int) -> bool:
        raise NotImplementedError

    def _update(self, site: int, taken: bool) -> None:
        raise NotImplementedError


class OneBitBHT(BranchPredictor):
    """1-bit branch history table — the Table 3 baseline (16k entries)."""

    name = "bht-1bit"

    def __init__(self, entries: int = 16 * 1024):
        super().__init__()
        if entries < 1:
            raise PredictorConfigError(f"entries must be >= 1, got {entries}")
        self.entries = entries
        self._table = [True] * entries  # initialized weakly taken

    def _index(self, site: int) -> int:
        return site % self.entries

    def _predict(self, site: int) -> bool:
        return self._table[self._index(site)]

    def _update(self, site: int, taken: bool) -> None:
        self._table[self._index(site)] = taken


class BimodalPredictor(BranchPredictor):
    """2-bit saturating-counter table."""

    name = "bimodal-2bit"

    def __init__(self, entries: int = 16 * 1024):
        super().__init__()
        if entries < 1:
            raise PredictorConfigError(f"entries must be >= 1, got {entries}")
        self.entries = entries
        self._table = [2] * entries  # weakly taken

    def _index(self, site: int) -> int:
        return site % self.entries

    def _predict(self, site: int) -> bool:
        return self._table[self._index(site)] >= 2

    def _update(self, site: int, taken: bool) -> None:
        index = self._index(site)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)


class GSharePredictor(BranchPredictor):
    """Global-history predictor: 2-bit counters indexed by PC xor history."""

    name = "gshare"

    def __init__(self, entries: int = 16 * 1024, history_bits: int = 10):
        super().__init__()
        if entries < 1:
            raise PredictorConfigError(f"entries must be >= 1, got {entries}")
        if not 0 <= history_bits <= 30:
            raise PredictorConfigError(f"history_bits out of range: {history_bits}")
        self.entries = entries
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table = [2] * entries

    def _index(self, site: int) -> int:
        return (site ^ self._history) % self.entries

    def _predict(self, site: int) -> bool:
        return self._table[self._index(site)] >= 2

    def _update(self, site: int, taken: bool) -> None:
        index = self._index(site)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


PREDICTORS = {
    OneBitBHT.name: OneBitBHT,
    BimodalPredictor.name: BimodalPredictor,
    GSharePredictor.name: GSharePredictor,
}


def build_predictor(name: str = OneBitBHT.name, entries: int = 16 * 1024):
    """Construct a predictor by name; defaults to the Table 3 baseline."""
    try:
        cls = PREDICTORS[name]
    except KeyError:
        raise PredictorConfigError(
            f"unknown predictor {name!r}; choices are {sorted(PREDICTORS)}"
        ) from None
    return cls(entries=entries)
