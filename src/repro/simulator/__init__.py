"""Cycle-approximate out-of-order superscalar simulator (Turandot's role).

Import order matters here: :mod:`repro.power` imports
``repro.simulator.frequency`` while :mod:`repro.simulator.config` imports
``repro.power.cacti``, so ``frequency`` must be bound on this package
before ``config`` is loaded.
"""

from . import frequency  # noqa: F401  (must precede config; see docstring)
from .branch import (
    BimodalPredictor,
    BranchPredictor,
    GSharePredictor,
    OneBitBHT,
    PredictorConfigError,
    build_predictor,
)
from .caches import (
    BLOCK_BYTES,
    Cache,
    CacheConfigError,
    CacheHierarchy,
    CacheStats,
    build_hierarchy,
)
from .config import (
    ARCHITECTED_FPR,
    ARCHITECTED_GPR,
    BASELINE_SETTINGS,
    ConfigError,
    MachineConfig,
    ROB_SIZE,
    baseline_config,
    baseline_point,
    config_from_point,
)
from .batch import run_pipeline_batch
from .memory import (
    FunctionalMemory,
    StackDistanceMemory,
    associativity_factor,
)
from .pipeline import PipelineOutcome, run_pipeline
from .resources import OccupancyWindow, ResourceError, ThroughputLimiter
from .results import ActivityCounts, SimulationResult
from .simulator import Simulator

__all__ = [
    "frequency",
    "Simulator",
    "MachineConfig",
    "ConfigError",
    "config_from_point",
    "baseline_config",
    "baseline_point",
    "BASELINE_SETTINGS",
    "ARCHITECTED_GPR",
    "ARCHITECTED_FPR",
    "ROB_SIZE",
    "run_pipeline",
    "run_pipeline_batch",
    "PipelineOutcome",
    "SimulationResult",
    "ActivityCounts",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "CacheConfigError",
    "build_hierarchy",
    "BLOCK_BYTES",
    "BranchPredictor",
    "OneBitBHT",
    "BimodalPredictor",
    "GSharePredictor",
    "build_predictor",
    "PredictorConfigError",
    "OccupancyWindow",
    "ThroughputLimiter",
    "ResourceError",
    "StackDistanceMemory",
    "FunctionalMemory",
    "associativity_factor",
]
