"""Study 3: Multiprocessor heterogeneity analysis (Section 6).

Per-benchmark bips^3/w-optimal architectures (Table 2) are clustered with
K-means in normalized parameter space; each cluster's centroid — snapped
to the design grid — is a *compromise architecture*.  Sweeping K from 0
(the POWER4-like baseline) through 9 (every benchmark on its own optimum)
quantifies the efficiency gains of increasing core heterogeneity
(Figure 9), with Table 4 the K=4 design listing and Figure 8 the
delay/power map of optima versus compromises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..cluster import kmeans
from ..designspace import DesignPoint, NormalizedEncoder
from ..metrics import bips3_per_watt
from .common import StudyContext
from .pareto import EfficiencyOptimum, table2


@dataclass
class CompromiseCluster:
    """One compromise architecture and the benchmarks it serves."""

    point: DesignPoint
    benchmarks: List[str]
    mean_delay: float = float("nan")
    mean_power: float = float("nan")


@dataclass
class Clustering:
    """K-means outcome over the benchmark architectures."""

    k: int
    clusters: List[CompromiseCluster]
    assignment: Dict[str, int]
    inertia: float


def benchmark_optima(
    ctx: StudyContext, validate: bool = False
) -> Dict[str, EfficiencyOptimum]:
    """Table 2's architectures keyed by benchmark (memoized on the ctx)."""
    cache_key = ("benchmark-optima", validate)
    store = getattr(ctx, "_heterogeneity_cache", None)
    if store is None:
        store = {}
        ctx._heterogeneity_cache = store
    if cache_key not in store:
        rows = table2(ctx, validate=validate)
        store[cache_key] = {row.benchmark: row for row in rows}
    return store[cache_key]


def cluster_architectures(
    ctx: StudyContext,
    k: int,
    optima: Optional[Mapping[str, EfficiencyOptimum]] = None,
    weights: Optional[Mapping[str, float]] = None,
    seed: int = 0,
) -> Clustering:
    """K-means over the benchmark architectures in normalized space.

    Centroids are snapped to the nearest valid design point (compromise
    architectures must be buildable); the paper's Euclidean similarity on
    normalized, weighted parameter vectors is implemented by
    :class:`~repro.designspace.NormalizedEncoder`.
    """
    optima = optima or benchmark_optima(ctx)
    names = list(optima)
    encoder = NormalizedEncoder(ctx.exploration_space, weights=weights)
    vectors = encoder.encode([optima[name].point for name in names])
    result = kmeans(vectors, k, seed=seed, restarts=20)

    clusters: List[CompromiseCluster] = []
    assignment: Dict[str, int] = {}
    for j in range(k):
        members = [names[i] for i in result.members(j)]
        if not members:
            continue
        index = len(clusters)
        point = encoder.decode_vector(result.centroids[j])
        clusters.append(CompromiseCluster(point=point, benchmarks=members))
        for name in members:
            assignment[name] = index
    return Clustering(
        k=len(clusters),
        clusters=clusters,
        assignment=assignment,
        inertia=result.inertia,
    )


def annotate_cluster_metrics(ctx: StudyContext, clustering: Clustering) -> None:
    """Fill each cluster's mean predicted delay/power over its benchmarks.

    One batched prediction per benchmark covers every cluster point, so
    the cost is |benchmarks| vectorized calls rather than one per
    (cluster, benchmark) pair.
    """
    clusters = clustering.clusters
    if not clusters:
        return
    points = [cluster.point for cluster in clusters]
    benchmarks = sorted({b for c in clusters for b in c.benchmarks})
    tables = {b: ctx.predict_points(b, points) for b in benchmarks}
    for i, cluster in enumerate(clusters):
        delays = [float(tables[b].delay[i]) for b in cluster.benchmarks]
        powers = [float(tables[b].watts[i]) for b in cluster.benchmarks]
        cluster.mean_delay = float(np.mean(delays))
        cluster.mean_power = float(np.mean(powers))


def table4(ctx: StudyContext, k: int = 4, seed: int = 0) -> Clustering:
    """Table 4: the K=4 compromise architectures with mean delay/power."""
    clustering = cluster_architectures(ctx, k, seed=seed)
    annotate_cluster_metrics(ctx, clustering)
    return clustering


@dataclass
class HeterogeneitySweep:
    """Figure 9 data: efficiency gains versus cluster count."""

    cluster_counts: List[int]
    per_benchmark: Dict[str, List[float]]   # gain per K, aligned to counts
    average: List[float]
    simulated: bool


def k_sweep(
    ctx: StudyContext,
    max_k: Optional[int] = None,
    simulate: bool = False,
    seed: int = 0,
) -> HeterogeneitySweep:
    """Efficiency gain per benchmark as heterogeneity (K) grows.

    ``K=0`` is the baseline core (gain 1.0 by construction); for ``K>=1``
    each benchmark runs on its cluster's compromise architecture.  Gains
    are bips^3/w relative to the baseline core, predicted by the models or
    — with ``simulate=True`` — measured by simulation (Figure 9b).
    """
    optima = benchmark_optima(ctx)
    names = list(optima)
    max_k = max_k or len(names)
    counts = list(range(0, max_k + 1))

    baseline = ctx.baseline
    clusterings = {
        k: cluster_architectures(ctx, k, optima=optima, seed=seed)
        for k in counts
        if k >= 1
    }

    def assigned_point(name: str, k: int) -> DesignPoint:
        clustering = clusterings[k]
        return clustering.clusters[clustering.assignment[name]].point

    # One batched evaluation per benchmark covers the baseline plus every
    # distinct compromise the benchmark is assigned across all K — with
    # ``simulate=True`` that is one trace replay per benchmark instead of
    # one simulation per (benchmark, K).
    def evaluate(name: str, points: List[DesignPoint]) -> Dict[tuple, float]:
        if simulate:
            results = ctx.simulate_many(name, points)
            values = [float(r.bips3_per_watt) for r in results]
        else:
            values = [float(v) for v in ctx.predict_points(name, points).efficiency]
        return {tuple(p.values): v for p, v in zip(points, values)}

    efficiency: Dict[str, Dict[tuple, float]] = {}
    for name in names:
        wanted = {tuple(baseline.values): baseline}
        for k in clusterings:
            point = assigned_point(name, k)
            wanted.setdefault(tuple(point.values), point)
        efficiency[name] = evaluate(name, list(wanted.values()))

    base_eff = {name: efficiency[name][tuple(baseline.values)] for name in names}
    per_benchmark: Dict[str, List[float]] = {name: [] for name in names}
    for k in counts:
        for name in names:
            if k == 0:
                per_benchmark[name].append(1.0)
                continue
            key = tuple(assigned_point(name, k).values)
            per_benchmark[name].append(
                efficiency[name][key] / base_eff[name]
            )

    average = [
        float(np.mean([per_benchmark[name][i] for name in names]))
        for i in range(len(counts))
    ]
    return HeterogeneitySweep(
        cluster_counts=counts,
        per_benchmark=per_benchmark,
        average=average,
        simulated=simulate,
    )


@dataclass
class DelayPowerMap:
    """Figure 8 data: optima (radial points) and compromises (circles)."""

    optima: Dict[str, tuple]        # benchmark -> (delay, power)
    compromises: List[tuple]        # (delay, power) of each K=4 cluster
    assignment: Dict[str, int]


def delay_power_map(ctx: StudyContext, k: int = 4, seed: int = 0) -> DelayPowerMap:
    """Delay/power of each benchmark on its optimum and on its compromise."""
    optima = benchmark_optima(ctx)
    clustering = table4(ctx, k=k, seed=seed)
    points = {
        name: (row.predicted_delay, row.predicted_watts)
        for name, row in optima.items()
    }
    compromises = [
        (cluster.mean_delay, cluster.mean_power) for cluster in clustering.clusters
    ]
    return DelayPowerMap(
        optima=points,
        compromises=compromises,
        assignment=clustering.assignment,
    )
