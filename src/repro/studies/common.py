"""Shared study infrastructure.

A :class:`StudyContext` owns everything the three design-space studies
need: the sampling and exploration spaces, the (cached) simulation
campaign, the fitted per-benchmark regression models, the exploration
point sets, and prediction/simulation helpers.  Every study function takes
a context, so one campaign and one model fit serve all figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..designspace import (
    DesignEncoder,
    DesignPoint,
    DesignSpace,
    exploration_space,
    sample_stratified,
    sample_uar,
    sampling_space,
)
from ..harness import Campaign, cached_campaign, fit_campaign_models, get_scale
from ..harness.scale import ScalePreset
from ..metrics import bips3_per_watt, delay_seconds
from ..regression import FittedModel
from ..simulator import Simulator, baseline_point
from ..simulator.results import SimulationResult
from ..workloads import BENCHMARK_NAMES, get_profile


@dataclass
class PredictionTable:
    """Regression predictions over a set of design points."""

    benchmark: str
    points: List[DesignPoint]
    bips: np.ndarray
    watts: np.ndarray
    ref_instructions: float

    def __post_init__(self) -> None:
        if not (len(self.points) == self.bips.size == self.watts.size):
            raise ValueError("prediction table columns disagree in length")

    @property
    def delay(self) -> np.ndarray:
        return delay_seconds(self.bips, self.ref_instructions)

    @property
    def efficiency(self) -> np.ndarray:
        return bips3_per_watt(self.bips, self.watts)

    def __len__(self) -> int:
        return len(self.points)

    def subset(self, indices: Sequence[int]) -> "PredictionTable":
        indices = list(indices)
        return PredictionTable(
            benchmark=self.benchmark,
            points=[self.points[i] for i in indices],
            bips=self.bips[indices],
            watts=self.watts[indices],
            ref_instructions=self.ref_instructions,
        )


class StudyContext:
    """One campaign + one model fit, shared by all studies."""

    def __init__(
        self,
        scale: Optional[ScalePreset] = None,
        simulator: Optional[Simulator] = None,
        benchmarks: Optional[Sequence[str]] = None,
        refresh: bool = False,
        workers: int = 1,
    ):
        self.scale = scale or get_scale()
        self.simulator = simulator or Simulator()
        self.benchmarks = tuple(benchmarks or BENCHMARK_NAMES)
        self.sampling_space: DesignSpace = sampling_space()
        self.exploration_space: DesignSpace = exploration_space()
        self.workers = workers
        self._refresh = refresh
        self._campaign: Optional[Campaign] = None
        self._models: Optional[Dict[str, Dict[str, FittedModel]]] = None
        self._encoder = DesignEncoder(self.exploration_space)
        self._exploration_points: Optional[List[DesignPoint]] = None
        self._stratified_points: Dict[str, List[DesignPoint]] = {}
        self._prediction_tables: Dict[tuple, PredictionTable] = {}

    # -- campaign & models -------------------------------------------------

    @property
    def campaign(self) -> Campaign:
        if self._campaign is None:
            self._campaign = cached_campaign(
                simulator=self.simulator,
                scale=self.scale,
                space=self.sampling_space,
                benchmarks=self.benchmarks,
                refresh=self._refresh,
                workers=self.workers,
            )
        return self._campaign

    @property
    def models(self) -> Dict[str, Dict[str, FittedModel]]:
        if self._models is None:
            self._models = fit_campaign_models(self.campaign)
        return self._models

    def model(self, benchmark: str, metric: str) -> FittedModel:
        """Fitted model for one benchmark and metric ("bips" or "watts")."""
        return self.models[benchmark][metric]

    # -- point sets ----------------------------------------------------------

    @property
    def baseline(self) -> DesignPoint:
        """Table 3 baseline snapped onto the exploration grid."""
        return baseline_point(self.exploration_space)

    def exploration_points(self) -> List[DesignPoint]:
        """The exploration set: all points, or a UAR subsample at scale."""
        if self._exploration_points is None:
            limit = self.scale.exploration_limit
            space = self.exploration_space
            if limit is None or limit >= len(space):
                self._exploration_points = list(space)
            else:
                self._exploration_points = sample_uar(
                    space, limit, seed=self.scale.seed + 1
                )
        return self._exploration_points

    def per_depth_points(self, parameter: str = "depth") -> List[DesignPoint]:
        """Stratified exploration set: equal designs at every depth level."""
        if parameter not in self._stratified_points:
            space = self.exploration_space
            levels = space.parameter(parameter).cardinality
            per_level = min(
                self.scale.per_depth_designs,
                len(space) // levels,
            )
            self._stratified_points[parameter] = sample_stratified(
                space, parameter, per_level, seed=self.scale.seed + 2
            )
        return self._stratified_points[parameter]

    # -- prediction ----------------------------------------------------------

    def predict_points(
        self, benchmark: str, points: Sequence[DesignPoint]
    ) -> PredictionTable:
        """Regression-predicted bips and watts for arbitrary points."""
        points = list(points)
        matrix = self._encoder.encode(points)
        data = {
            name: matrix[:, j]
            for j, name in enumerate(self._encoder.feature_names)
        }
        return PredictionTable(
            benchmark=benchmark,
            points=points,
            bips=self.model(benchmark, "bips").predict(data),
            watts=self.model(benchmark, "watts").predict(data),
            ref_instructions=get_profile(benchmark).ref_instructions,
        )

    def predict_exploration(self, benchmark: str) -> PredictionTable:
        """Predictions over the exploration set (memoized per benchmark)."""
        key = (benchmark, "exploration")
        if key not in self._prediction_tables:
            self._prediction_tables[key] = self.predict_points(
                benchmark, self.exploration_points()
            )
        return self._prediction_tables[key]

    def predict_per_depth(self, benchmark: str) -> PredictionTable:
        """Predictions over the depth-stratified set (memoized)."""
        key = (benchmark, "per-depth")
        if key not in self._prediction_tables:
            self._prediction_tables[key] = self.predict_points(
                benchmark, self.per_depth_points()
            )
        return self._prediction_tables[key]

    # -- simulation -----------------------------------------------------------

    def simulate(self, benchmark: str, point: DesignPoint) -> SimulationResult:
        """Ground-truth simulation of one design on one benchmark."""
        trace = self.simulator.trace_for(
            get_profile(benchmark), self.scale.trace_length, seed=self.scale.seed
        )
        return self.simulator.simulate_point(self.exploration_space, point, trace)
