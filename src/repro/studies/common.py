"""Shared study infrastructure.

A :class:`StudyContext` owns everything the three design-space studies
need: the sampling and exploration spaces, the (cached) simulation
campaign, the fitted per-benchmark regression models, the exploration
point sets, and prediction/simulation helpers.  Every study function takes
a context, so one campaign and one model fit serve all figures.

Prediction runs on the blockwise sweep engine
(:mod:`repro.harness.sweep`): arbitrary point lists are encoded and
evaluated in vectorized batches (:meth:`StudyContext.predict_points`),
while the exploration and per-depth sets can additionally be *swept* —
folded into streaming reducers block by block
(:meth:`StudyContext.sweep_exploration`,
:meth:`StudyContext.sweep_per_depth`) — so full-space studies never hold
all predictions, points, or design matrices at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..designspace import (
    DesignPoint,
    DesignSpace,
    exploration_space,
    sample_stratified,
    sample_uar,
    sampling_space,
)
from ..harness import Campaign, cached_campaign, fit_campaign_models, get_scale
from ..harness.scale import ScalePreset
from ..harness.sweep import (
    BlockPredictor,
    PointSweepSource,
    SpaceSweepSource,
    SweepReducer,
    SweepSource,
    predict_source,
    run_sweep,
)
from ..metrics import bips3_per_watt, delay_seconds
from ..regression import FittedModel
from ..simulator import Simulator, baseline_point
from ..simulator.results import SimulationResult
from ..workloads import BENCHMARK_NAMES, Trace, get_profile


@dataclass
class PredictionTable:
    """Regression predictions over a set of design points."""

    benchmark: str
    points: List[DesignPoint]
    bips: np.ndarray
    watts: np.ndarray
    ref_instructions: float

    def __post_init__(self) -> None:
        if not (len(self.points) == self.bips.size == self.watts.size):
            raise ValueError("prediction table columns disagree in length")

    @property
    def delay(self) -> np.ndarray:
        return delay_seconds(self.bips, self.ref_instructions)

    @property
    def efficiency(self) -> np.ndarray:
        return bips3_per_watt(self.bips, self.watts)

    def __len__(self) -> int:
        return len(self.points)

    def subset(self, indices: Sequence[int]) -> "PredictionTable":
        indices = list(indices)
        return PredictionTable(
            benchmark=self.benchmark,
            points=[self.points[i] for i in indices],
            bips=self.bips[indices],
            watts=self.watts[indices],
            ref_instructions=self.ref_instructions,
        )


class StudyContext:
    """One campaign + one model fit, shared by all studies."""

    def __init__(
        self,
        scale: Optional[ScalePreset] = None,
        simulator: Optional[Simulator] = None,
        benchmarks: Optional[Sequence[str]] = None,
        refresh: bool = False,
        workers: int = 1,
        resilience=None,
        batch_size: Optional[int] = None,
    ):
        self.scale = scale or get_scale()
        self.simulator = simulator or Simulator()
        self.benchmarks = tuple(benchmarks or BENCHMARK_NAMES)
        self.sampling_space: DesignSpace = sampling_space()
        self.exploration_space: DesignSpace = exploration_space()
        self.workers = workers
        #: Optional :class:`repro.harness.ResilienceConfig` applied to the
        #: campaign phase (retries, journaled checkpoint/resume).
        self.resilience = resilience
        #: Block size for the batched timing kernel (campaign chunks and
        #: :meth:`simulate_many`); ``None`` batches each call whole.
        #: Tunes speed/memory only — results are bit-identical throughout.
        self.batch_size = batch_size
        self._refresh = refresh
        self._campaign: Optional[Campaign] = None
        self._models: Optional[Dict[str, Dict[str, FittedModel]]] = None
        self._exploration_points: Optional[List[DesignPoint]] = None
        self._stratified_points: Dict[str, List[DesignPoint]] = {}
        self._prediction_tables: Dict[tuple, PredictionTable] = {}
        self._traces: Dict[str, Trace] = {}
        self._sources: Dict[tuple, SweepSource] = {}
        self._sweep_results: Dict[tuple, object] = {}

    # -- campaign & models -------------------------------------------------

    @property
    def campaign(self) -> Campaign:
        if self._campaign is None:
            self._campaign = cached_campaign(
                simulator=self.simulator,
                scale=self.scale,
                space=self.sampling_space,
                benchmarks=self.benchmarks,
                refresh=self._refresh,
                workers=self.workers,
                resilience=self.resilience,
                batch_size=self.batch_size,
            )
        return self._campaign

    @property
    def models(self) -> Dict[str, Dict[str, FittedModel]]:
        if self._models is None:
            self._models = fit_campaign_models(self.campaign)
        return self._models

    def model(self, benchmark: str, metric: str) -> FittedModel:
        """Fitted model for one benchmark and metric ("bips" or "watts")."""
        return self.models[benchmark][metric]

    def predictor(self, benchmark: str) -> BlockPredictor:
        """The benchmark's fitted models bundled for the sweep engine."""
        return BlockPredictor(
            benchmark=benchmark,
            bips_model=self.model(benchmark, "bips"),
            watts_model=self.model(benchmark, "watts"),
            ref_instructions=get_profile(benchmark).ref_instructions,
        )

    # -- point sets ----------------------------------------------------------

    @property
    def baseline(self) -> DesignPoint:
        """Table 3 baseline snapped onto the exploration grid."""
        return baseline_point(self.exploration_space)

    def exploration_points(self) -> List[DesignPoint]:
        """The exploration set: all points, or a UAR subsample at scale."""
        if self._exploration_points is None:
            limit = self.scale.exploration_limit
            space = self.exploration_space
            if limit is None or limit >= len(space):
                self._exploration_points = list(space)
            else:
                self._exploration_points = sample_uar(
                    space, limit, seed=self.scale.seed + 1
                )
        return self._exploration_points

    def per_depth_points(self, parameter: str = "depth") -> List[DesignPoint]:
        """Stratified exploration set: equal designs at every depth level."""
        if parameter not in self._stratified_points:
            space = self.exploration_space
            levels = space.parameter(parameter).cardinality
            per_level = min(
                self.scale.per_depth_designs,
                len(space) // levels,
            )
            self._stratified_points[parameter] = sample_stratified(
                space, parameter, per_level, seed=self.scale.seed + 2
            )
        return self._stratified_points[parameter]

    # -- sweep sources -------------------------------------------------------

    def exploration_source(self) -> SweepSource:
        """Block-addressable exploration set for the sweep engine.

        A full (unsubsampled) exploration sweep enumerates the space by
        mixed-radix index — no point list is ever materialized — while a
        scale-limited sweep wraps the memoized UAR subsample so positions
        match :meth:`exploration_points` (and thus
        :meth:`predict_exploration` row indices) exactly.
        """
        key = ("exploration",)
        if key not in self._sources:
            limit = self.scale.exploration_limit
            space = self.exploration_space
            if limit is None or limit >= len(space):
                self._sources[key] = SpaceSweepSource(space)
            else:
                self._sources[key] = PointSweepSource(
                    space, self.exploration_points()
                )
        return self._sources[key]

    def per_depth_source(self, parameter: str = "depth") -> SweepSource:
        """Block-addressable depth-stratified set for the sweep engine."""
        key = ("per-depth", parameter)
        if key not in self._sources:
            self._sources[key] = PointSweepSource(
                self.exploration_space, self.per_depth_points(parameter)
            )
        return self._sources[key]

    # -- prediction ----------------------------------------------------------

    def predict_points(
        self, benchmark: str, points: Sequence[DesignPoint]
    ) -> PredictionTable:
        """Regression-predicted bips and watts for arbitrary points."""
        points = list(points)
        source = PointSweepSource(self.exploration_space, points)
        bips, watts = predict_source(self.predictor(benchmark), source)
        return PredictionTable(
            benchmark=benchmark,
            points=points,
            bips=bips,
            watts=watts,
            ref_instructions=get_profile(benchmark).ref_instructions,
        )

    def _predict_source_table(
        self, benchmark: str, source: SweepSource, points: List[DesignPoint]
    ) -> PredictionTable:
        bips, watts = predict_source(self.predictor(benchmark), source)
        return PredictionTable(
            benchmark=benchmark,
            points=points,
            bips=bips,
            watts=watts,
            ref_instructions=get_profile(benchmark).ref_instructions,
        )

    def predict_exploration(self, benchmark: str) -> PredictionTable:
        """Predictions over the exploration set (memoized per benchmark).

        Materializes a whole-set table — Figure 2's characterization
        needs one.  Studies that only need reductions (frontier, optima,
        per-depth histograms) should prefer :meth:`sweep_exploration`,
        which streams and never builds the table.
        """
        key = (benchmark, "exploration")
        if key not in self._prediction_tables:
            self._prediction_tables[key] = self._predict_source_table(
                benchmark, self.exploration_source(), self.exploration_points()
            )
        return self._prediction_tables[key]

    def predict_per_depth(self, benchmark: str) -> PredictionTable:
        """Predictions over the depth-stratified set (memoized)."""
        key = (benchmark, "per-depth")
        if key not in self._prediction_tables:
            self._prediction_tables[key] = self._predict_source_table(
                benchmark, self.per_depth_source(), self.per_depth_points()
            )
        return self._prediction_tables[key]

    # -- streaming sweeps ------------------------------------------------------

    def _sweep(
        self,
        benchmark: str,
        set_name: str,
        source: SweepSource,
        reducers: Sequence[SweepReducer],
        workers: Optional[int],
        block_size: Optional[int],
    ) -> List[object]:
        """Run reducers over a source, memoizing cacheable results.

        Reducers exposing a ``cache_key`` are computed at most once per
        (benchmark, point set); a single engine pass serves all uncached
        reducers of the call.
        """
        def key_of(reducer: SweepReducer) -> Optional[tuple]:
            if reducer.cache_key is None:
                return None
            return (benchmark, set_name, reducer.cache_key)

        pending = [
            reducer
            for reducer in reducers
            if key_of(reducer) is None
            or key_of(reducer) not in self._sweep_results
        ]
        if pending:
            kwargs = {}
            if block_size is not None:
                kwargs["block_size"] = block_size
            report = run_sweep(
                self.predictor(benchmark),
                source,
                pending,
                workers=workers or 1,
                **kwargs,
            )
            for reducer, result in zip(pending, report.results):
                cache_key = key_of(reducer)
                if cache_key is not None:
                    self._sweep_results[cache_key] = result
                else:
                    self._sweep_results[id(reducer)] = result
        return [
            self._sweep_results.pop(id(reducer))
            if key_of(reducer) is None
            else self._sweep_results[key_of(reducer)]
            for reducer in reducers
        ]

    def sweep_exploration(
        self,
        benchmark: str,
        reducers: Sequence[SweepReducer],
        workers: Optional[int] = None,
        block_size: Optional[int] = None,
    ) -> List[object]:
        """Fold streaming reducers over the exploration set.

        Returns one finalized result per reducer, identical (by reducer
        partition independence) to reducing the monolithic
        :meth:`predict_exploration` table — without building it.
        """
        return self._sweep(
            benchmark,
            "exploration",
            self.exploration_source(),
            reducers,
            workers,
            block_size,
        )

    def sweep_per_depth(
        self,
        benchmark: str,
        reducers: Sequence[SweepReducer],
        parameter: str = "depth",
        workers: Optional[int] = None,
        block_size: Optional[int] = None,
    ) -> List[object]:
        """Fold streaming reducers over the depth-stratified set."""
        return self._sweep(
            benchmark,
            f"per-depth:{parameter}",
            self.per_depth_source(parameter),
            reducers,
            workers,
            block_size,
        )

    # -- simulation -----------------------------------------------------------

    def trace(self, benchmark: str) -> Trace:
        """The benchmark's synthetic trace at this scale (built once).

        Cached per benchmark on the context, so validating N frontier or
        depth designs costs one trace build, not N.
        """
        if benchmark not in self._traces:
            self._traces[benchmark] = self.simulator.trace_for(
                get_profile(benchmark),
                self.scale.trace_length,
                seed=self.scale.seed,
            )
        return self._traces[benchmark]

    def simulate(self, benchmark: str, point: DesignPoint) -> SimulationResult:
        """Ground-truth simulation of one design on one benchmark."""
        return self.simulator.simulate_point(
            self.exploration_space, point, self.trace(benchmark)
        )

    def simulate_many(
        self, benchmark: str, points: Sequence[DesignPoint]
    ) -> List[SimulationResult]:
        """Ground-truth simulation of many designs on one benchmark.

        Goes through the batched timing kernel — one trace replay per
        block of configs instead of one per design — and returns results
        bit-identical to calling :meth:`simulate` per point.  Validation
        phases (frontier, per-depth, cluster heterogeneity) use this.
        """
        return self.simulator.simulate_batch(
            self.exploration_space,
            list(points),
            self.trace(benchmark),
            batch_size=self.batch_size,
        )
