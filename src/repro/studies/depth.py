"""Study 2: Pipeline depth analysis (Section 5).

Two analyses over depths 12..30 FO4:

- **original** — the constrained prior-work protocol: every non-depth
  parameter pinned at the Table 3 baseline, efficiency predicted per depth
  (the line plot of Figure 5a);
- **enhanced** — all parameters vary simultaneously: the per-depth
  efficiency *distributions* (boxplots of Figure 5a), their maxima (the
  bound architectures), the cache-size composition of the top designs
  (Figure 5b), and simulation validation (Figures 6 and 7).

Efficiency is always reported relative to the original analysis's
bips^3/w optimum, per benchmark, then averaged over the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..designspace import DesignPoint
from ..harness.sweep import CollectReducer, GroupedMetricReducer
from ..regression.validation import BoxplotStats, boxplot_stats
from .common import StudyContext

#: The exploration depths (12..30 FO4).
def depth_levels(ctx: StudyContext) -> Sequence[float]:
    return ctx.exploration_space.parameter("depth").values


@dataclass
class OriginalAnalysis:
    """The constrained sweep for one benchmark."""

    benchmark: str
    depths: List[float]
    points: List[DesignPoint]
    efficiency: np.ndarray           # absolute bips^3/w per depth
    bips: np.ndarray
    watts: np.ndarray

    @property
    def optimal_depth(self) -> float:
        return self.depths[int(self.efficiency.argmax())]

    @property
    def optimal_efficiency(self) -> float:
        return float(self.efficiency.max())

    def relative(self) -> np.ndarray:
        """Efficiency relative to this sweep's own optimum."""
        return self.efficiency / self.optimal_efficiency


def original_analysis(ctx: StudyContext, benchmark: str) -> OriginalAnalysis:
    """Predict the baseline-constrained depth sweep for one benchmark."""
    baseline = ctx.baseline
    depths = list(depth_levels(ctx))
    points = [baseline.replace(depth=d) for d in depths]
    table = ctx.predict_points(benchmark, points)
    return OriginalAnalysis(
        benchmark=benchmark,
        depths=depths,
        points=points,
        efficiency=table.efficiency,
        bips=table.bips,
        watts=table.watts,
    )


@dataclass
class EnhancedAnalysis:
    """Per-depth efficiency distributions for one benchmark.

    All efficiencies are normalized to the *original* analysis's optimum,
    matching Figure 5a's axis.
    """

    benchmark: str
    depths: List[float]
    distributions: Dict[float, BoxplotStats]
    bound_points: Dict[float, DesignPoint]    # per-depth efficiency argmax
    bound_efficiency: Dict[float, float]      # relative to original optimum
    exceed_baseline_fraction: Dict[float, float]
    original: OriginalAnalysis

    @property
    def bound_optimal_depth(self) -> float:
        return max(self.bound_efficiency, key=self.bound_efficiency.get)

    def bound_relative_to_best_bound(self) -> Dict[float, float]:
        """The numbers above Figure 5a's boxplots."""
        best = max(self.bound_efficiency.values())
        return {d: e / best for d, e in self.bound_efficiency.items()}


def _per_depth_efficiency(ctx: StudyContext, benchmark: str):
    """The streaming per-depth efficiency reduction (memoized on the ctx)."""
    return ctx.sweep_per_depth(
        benchmark, [GroupedMetricReducer(parameter="depth", metric="efficiency")]
    )[0]


def enhanced_analysis(ctx: StudyContext, benchmark: str) -> EnhancedAnalysis:
    """Per-depth distributions over the full design space for one benchmark.

    Runs on the sweep engine's grouped reducer: the stratified set is
    predicted blockwise and only per-depth efficiency vectors (floats)
    plus each depth's running argmax are retained — no whole-set
    prediction table is materialized.
    """
    original = original_analysis(ctx, benchmark)
    reference = original.optimal_efficiency
    grouped = _per_depth_efficiency(ctx, benchmark)

    distributions: Dict[float, BoxplotStats] = {}
    bound_points: Dict[float, DesignPoint] = {}
    bound_efficiency: Dict[float, float] = {}
    exceed: Dict[float, float] = {}
    original_relative = dict(zip(original.depths, original.relative()))
    for depth in depth_levels(ctx):
        if float(depth) not in grouped.values:
            continue
        values = grouped.values[float(depth)] / reference
        distributions[depth] = boxplot_stats(values)
        bound_points[depth] = grouped.argmax_points[float(depth)]
        bound_efficiency[depth] = float(
            grouped.argmax_values[float(depth)] / reference
        )
        # The paper's "more efficient than baseline" compares against the
        # original (constrained) analysis at the *same* depth — where the
        # line plot intersects the boxplot.
        exceed[depth] = float((values > original_relative[depth]).mean())
    return EnhancedAnalysis(
        benchmark=benchmark,
        depths=list(distributions),
        distributions=distributions,
        bound_points=bound_points,
        bound_efficiency=bound_efficiency,
        exceed_baseline_fraction=exceed,
        original=original,
    )


@dataclass
class SuiteDepthSummary:
    """Suite-average Figure 5a data."""

    depths: List[float]
    original_relative: np.ndarray             # line plot (mean across suite)
    distributions: Dict[float, BoxplotStats]  # pooled enhanced distributions
    bound_relative: Dict[float, float]        # mean bound efficiency per depth
    exceed_baseline_fraction: Dict[float, float]
    per_benchmark: Dict[str, EnhancedAnalysis] = field(default_factory=dict)


def suite_depth_summary(ctx: StudyContext) -> SuiteDepthSummary:
    """Average the original and enhanced analyses over the suite."""
    analyses = {b: enhanced_analysis(ctx, b) for b in ctx.benchmarks}
    depths = list(depth_levels(ctx))

    original_matrix = np.vstack(
        [analyses[b].original.relative() for b in ctx.benchmarks]
    )
    original_relative = original_matrix.mean(axis=0)

    pooled: Dict[float, BoxplotStats] = {}
    bound_relative: Dict[float, float] = {}
    exceed: Dict[float, float] = {}
    original_by_depth = dict(zip(depths, original_relative))
    for depth in depths:
        per_bench_values = []
        for b in ctx.benchmarks:
            analysis = analyses[b]
            reference = analysis.original.optimal_efficiency
            grouped = _per_depth_efficiency(ctx, b)
            # Per-level chunks arrive in sweep order, so the stratified
            # designs align element-wise across benchmarks.
            per_bench_values.append(grouped.values[float(depth)] / reference)
        stacked = np.mean(np.vstack(per_bench_values), axis=0)
        pooled[depth] = boxplot_stats(stacked)
        bound_relative[depth] = float(stacked.max())
        exceed[depth] = float((stacked > original_by_depth[depth]).mean())
    return SuiteDepthSummary(
        depths=depths,
        original_relative=original_relative,
        distributions=pooled,
        bound_relative=bound_relative,
        exceed_baseline_fraction=exceed,
        per_benchmark=analyses,
    )


def top_percentile_cache_distribution(
    ctx: StudyContext, percentile: float = 95.0
) -> Dict[float, Dict[float, float]]:
    """Figure 5b: d-L1 size shares among each depth's top designs.

    For every depth, designs above the ``percentile`` of the suite-average
    efficiency distribution are selected and the d-L1 size histogram
    (fractions) reported.
    """
    if not 0 < percentile < 100:
        raise ValueError(f"percentile must be in (0, 100), got {percentile}")
    # Suite-average efficiency per stratified design, normalized per
    # benchmark by the original optimum (axis does not matter for ranks).
    # The sweep engine collects only the efficiency vector and the two
    # raw parameter columns the histogram needs.
    collected = {
        b: ctx.sweep_per_depth(
            b,
            [CollectReducer(metrics=("efficiency",), columns=("depth", "dl1_kb"))],
        )[0]
        for b in ctx.benchmarks
    }
    first = collected[ctx.benchmarks[0]]
    depths = first.column("depth")
    dl1 = first.column("dl1_kb")
    normalized = []
    for b in ctx.benchmarks:
        efficiency = collected[b].metric("efficiency")
        reference = original_analysis(ctx, b).optimal_efficiency
        normalized.append(efficiency / reference)
    average = np.mean(np.vstack(normalized), axis=0)

    sizes = ctx.exploration_space.parameter("dl1_kb").values
    result: Dict[float, Dict[float, float]] = {}
    for depth in depth_levels(ctx):
        mask = depths == depth
        values = average[mask]
        if values.size == 0:
            continue
        cut = np.percentile(values, percentile)
        top = mask & (average >= cut)
        total = int(top.sum())
        result[depth] = {
            float(size): float((dl1[top] == size).sum()) / total if total else 0.0
            for size in sizes
        }
    return result


@dataclass
class DepthValidation:
    """Figures 6 and 7: predicted vs simulated, both analyses."""

    depths: List[float]
    predicted_original: np.ndarray   # suite-mean relative efficiency
    simulated_original: np.ndarray
    predicted_enhanced: np.ndarray   # bound architectures per depth
    simulated_enhanced: np.ndarray
    predicted_bips: Dict[str, np.ndarray]   # analysis -> per-depth suite mean
    simulated_bips: Dict[str, np.ndarray]
    predicted_watts: Dict[str, np.ndarray]
    simulated_watts: Dict[str, np.ndarray]


def validate_depth_study(
    ctx: StudyContext, benchmarks: Optional[Sequence[str]] = None
) -> DepthValidation:
    """Simulate the original sweep and each depth's bound architecture.

    Per benchmark and depth we simulate (a) the baseline-constrained
    design and (b) the enhanced analysis's bound architecture, producing
    Figure 6 (efficiency) and Figure 7 (bips and watts, decomposed).
    """
    benchmarks = tuple(benchmarks or ctx.benchmarks)
    depths = list(depth_levels(ctx))

    pred_orig, sim_orig = [], []
    pred_enh, sim_enh = [], []
    pred_bips = {"original": [], "enhanced": []}
    sim_bips = {"original": [], "enhanced": []}
    pred_watts = {"original": [], "enhanced": []}
    sim_watts = {"original": [], "enhanced": []}

    per_bench = {}
    for benchmark in benchmarks:
        analysis = enhanced_analysis(ctx, benchmark)
        original = analysis.original
        reference_pred = original.optimal_efficiency

        original_results = ctx.simulate_many(benchmark, original.points)
        sim_eff_orig = np.array(
            [r.bips3_per_watt for r in original_results]
        )
        reference_sim = float(sim_eff_orig.max())

        bound_points = [analysis.bound_points[d] for d in depths]
        bound_results = ctx.simulate_many(benchmark, bound_points)
        bound_pred = ctx.predict_points(benchmark, bound_points)

        per_bench[benchmark] = {
            "pred_orig": original.efficiency / reference_pred,
            "sim_orig": sim_eff_orig / reference_sim,
            "pred_enh": bound_pred.efficiency / reference_pred,
            "sim_enh": np.array([r.bips3_per_watt for r in bound_results])
            / reference_sim,
            "pred_bips_orig": original.bips,
            "sim_bips_orig": np.array([r.bips for r in original_results]),
            "pred_watts_orig": original.watts,
            "sim_watts_orig": np.array([r.watts for r in original_results]),
            "pred_bips_enh": bound_pred.bips,
            "sim_bips_enh": np.array([r.bips for r in bound_results]),
            "pred_watts_enh": bound_pred.watts,
            "sim_watts_enh": np.array([r.watts for r in bound_results]),
        }

    def suite_mean(key: str) -> np.ndarray:
        return np.mean(
            np.vstack([per_bench[b][key] for b in benchmarks]), axis=0
        )

    return DepthValidation(
        depths=depths,
        predicted_original=suite_mean("pred_orig"),
        simulated_original=suite_mean("sim_orig"),
        predicted_enhanced=suite_mean("pred_enh"),
        simulated_enhanced=suite_mean("sim_enh"),
        predicted_bips={
            "original": suite_mean("pred_bips_orig"),
            "enhanced": suite_mean("pred_bips_enh"),
        },
        simulated_bips={
            "original": suite_mean("sim_bips_orig"),
            "enhanced": suite_mean("sim_bips_enh"),
        },
        predicted_watts={
            "original": suite_mean("pred_watts_orig"),
            "enhanced": suite_mean("pred_watts_enh"),
        },
        simulated_watts={
            "original": suite_mean("sim_watts_orig"),
            "enhanced": suite_mean("sim_watts_enh"),
        },
    )
