"""The paper's three design-space studies plus the search extension."""

from . import depth, heterogeneity, pareto, robustness, scheduling, search
from .common import PredictionTable, StudyContext

__all__ = [
    "StudyContext",
    "PredictionTable",
    "pareto",
    "depth",
    "heterogeneity",
    "search",
    "robustness",
    "scheduling",
]
