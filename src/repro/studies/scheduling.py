"""Workload-to-core assignment on heterogeneous multiprocessors.

Section 6 scores heterogeneity by letting *every benchmark run on its own
cluster's compromise core*.  A real heterogeneous CMP must schedule a mix
of co-resident workloads onto a fixed set of cores, one workload per core.
This module treats that as an assignment problem: given per-(workload,
core) efficiency predictions from the regression models, find the
one-to-one assignment maximizing total (log-)efficiency — solved exactly
with the Hungarian algorithm, implemented from scratch — and compare it
against naive scheduling and against a homogeneous CMP of the same core
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..designspace import DesignPoint
from .common import StudyContext
from .heterogeneity import cluster_architectures


class SchedulingError(ValueError):
    """Raised for infeasible assignment problems."""


def hungarian(cost: np.ndarray) -> List[Tuple[int, int]]:
    """Minimum-cost perfect assignment on a square cost matrix.

    A from-scratch O(n^3) implementation of the Hungarian (Kuhn-Munkres)
    algorithm in its potentials/augmenting-path form.  Returns a list of
    (row, column) pairs covering every row exactly once.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2 or cost.shape[0] != cost.shape[1]:
        raise SchedulingError(f"cost matrix must be square, got {cost.shape}")
    if not np.isfinite(cost).all():
        raise SchedulingError("cost matrix must be finite")
    n = cost.shape[0]
    # potentials for rows (u) and columns (v); way[j] = previous column on
    # the augmenting path; match[j] = row matched to column j
    INF = float("inf")
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    match = np.full(n + 1, -1, dtype=int)

    for i in range(n):
        # find an augmenting path for row i (1-indexed virtual column 0)
        match[n] = i
        j0 = n
        minv = np.full(n + 1, INF)
        used = np.zeros(n + 1, dtype=bool)
        way = np.full(n + 1, n, dtype=int)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = INF
            j1 = -1
            for j in range(n):
                if used[j]:
                    continue
                current = cost[i0, j] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == -1:
                break
        # unwind the augmenting path
        while j0 != n:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1
    return [(int(match[j]), j) for j in range(n) if match[j] != -1]


@dataclass
class ScheduleResult:
    """One CMP schedule and its predicted quality."""

    assignment: Dict[str, int]           #: benchmark -> core index
    cores: List[DesignPoint]
    per_benchmark_efficiency: Dict[str, float]
    total_log_efficiency: float
    total_power: float

    @property
    def geomean_efficiency(self) -> float:
        """Geometric-mean bips^3/w across the scheduled workloads."""
        values = np.array(list(self.per_benchmark_efficiency.values()))
        if values.size == 0 or (values <= 0).any():
            raise SchedulingError(
                "geomean requires a non-empty set of positive efficiencies"
            )
        return float(np.exp(np.log(values).mean()))


def _efficiency_matrix(
    ctx: StudyContext, benchmarks: Sequence[str], cores: Sequence[DesignPoint]
) -> np.ndarray:
    """(benchmark, core) predicted bips^3/w matrix."""
    matrix = np.empty((len(benchmarks), len(cores)))
    for b, benchmark in enumerate(benchmarks):
        table = ctx.predict_points(benchmark, list(cores))
        matrix[b] = table.efficiency
    return matrix


def _power_of(ctx: StudyContext, benchmark: str, core: DesignPoint) -> float:
    return float(ctx.predict_points(benchmark, [core]).watts[0])


def schedule(
    ctx: StudyContext,
    cores: Sequence[DesignPoint],
    benchmarks: Optional[Sequence[str]] = None,
    policy: str = "optimal",
) -> ScheduleResult:
    """Assign one benchmark per core under a scheduling policy.

    Policies: ``"optimal"`` (Hungarian on -log efficiency — maximizes
    geometric-mean bips^3/w), ``"greedy"`` (benchmarks claim their best
    remaining core in order), ``"naive"`` (benchmark i on core i).
    Requires exactly as many benchmarks as cores.
    """
    benchmarks = list(benchmarks or ctx.benchmarks)
    cores = list(cores)
    if len(benchmarks) != len(cores):
        raise SchedulingError(
            f"need one benchmark per core: {len(benchmarks)} benchmarks, "
            f"{len(cores)} cores"
        )
    efficiency = _efficiency_matrix(ctx, benchmarks, cores)
    if (efficiency <= 0).any():
        raise SchedulingError("predicted efficiencies must be positive")
    log_efficiency = np.log(efficiency)

    if policy == "optimal":
        pairs = hungarian(-log_efficiency)
    elif policy == "greedy":
        taken: set = set()
        pairs = []
        for b in range(len(benchmarks)):
            order = np.argsort(-efficiency[b])
            core = next(int(c) for c in order if int(c) not in taken)
            taken.add(core)
            pairs.append((b, core))
    elif policy == "naive":
        pairs = [(i, i) for i in range(len(benchmarks))]
    else:
        raise SchedulingError(f"unknown policy {policy!r}")

    assignment = {benchmarks[b]: c for b, c in pairs}
    per_benchmark = {
        benchmarks[b]: float(efficiency[b, c]) for b, c in pairs
    }
    total_log = float(sum(log_efficiency[b, c] for b, c in pairs))
    total_power = sum(
        _power_of(ctx, benchmark, cores[core])
        for benchmark, core in assignment.items()
    )
    return ScheduleResult(
        assignment=assignment,
        cores=cores,
        per_benchmark_efficiency=per_benchmark,
        total_log_efficiency=total_log,
        total_power=total_power,
    )


@dataclass
class CMPComparison:
    """Heterogeneous vs homogeneous CMP under scheduling."""

    heterogeneous: ScheduleResult
    homogeneous: ScheduleResult
    naive: ScheduleResult

    @property
    def heterogeneity_gain(self) -> float:
        """Geomean-efficiency gain of the scheduled heterogeneous CMP."""
        return (
            self.heterogeneous.geomean_efficiency
            / self.homogeneous.geomean_efficiency
        )

    @property
    def scheduling_gain(self) -> float:
        """Optimal over naive scheduling on the same heterogeneous CMP."""
        return (
            self.heterogeneous.geomean_efficiency / self.naive.geomean_efficiency
        )


def compare_cmp_designs(
    ctx: StudyContext,
    core_types: int = 4,
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> CMPComparison:
    """Schedule the suite on a K-type heterogeneous CMP vs a homogeneous one.

    The heterogeneous machine instantiates each of the K compromise cores
    enough times to host every benchmark (replicated round-robin); the
    homogeneous machine replicates the K=1 compromise core.
    """
    benchmarks = list(benchmarks or ctx.benchmarks)
    n = len(benchmarks)
    hetero_clusters = cluster_architectures(ctx, core_types, seed=seed)
    hetero_cores: List[DesignPoint] = []
    # replicate each compromise proportionally to its cluster population
    for cluster in hetero_clusters.clusters:
        hetero_cores.extend([cluster.point] * len(cluster.benchmarks))
    hetero_cores = hetero_cores[:n]
    while len(hetero_cores) < n:
        hetero_cores.append(hetero_clusters.clusters[0].point)

    homo_core = cluster_architectures(ctx, 1, seed=seed).clusters[0].point
    homo_cores = [homo_core] * n

    return CMPComparison(
        heterogeneous=schedule(ctx, hetero_cores, benchmarks, policy="optimal"),
        homogeneous=schedule(ctx, homo_cores, benchmarks, policy="optimal"),
        naive=schedule(ctx, hetero_cores, benchmarks, policy="naive"),
    )
