"""Extension: regression-guided heuristic search.

Section 7 contrasts the paper's approach with Eyerman et al.'s heuristic
search (steepest descent / genetic search, ~1000 simulations *per
optimization problem*) and Section 8 suggests applying the regression
models *within* heuristics.  This module implements both heuristics over
the regression-predicted objective, so a search costs model evaluations
instead of simulations, and compares them against exhaustive prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..designspace import DesignPoint, DesignSpace
from .common import StudyContext


@dataclass
class SearchResult:
    """Outcome of one heuristic search."""

    best_point: DesignPoint
    best_value: float
    evaluations: int
    trajectory: List[float]   # best-so-far after each evaluation batch


def _neighbors(space: DesignSpace, point: DesignPoint) -> List[DesignPoint]:
    """All designs one level away in exactly one parameter."""
    neighbors = []
    for parameter in space.parameters:
        values = parameter.values
        index = parameter.index_of(point[parameter.name])
        for delta in (-1, 1):
            j = index + delta
            if 0 <= j < len(values):
                neighbors.append(point.replace(**{parameter.name: values[j]}))
    return neighbors


def steepest_descent(
    space: DesignSpace,
    objective: Callable[[Sequence[DesignPoint]], np.ndarray],
    start: DesignPoint,
    max_steps: int = 100,
) -> SearchResult:
    """Greedy hill climbing on the (maximized) objective.

    ``objective`` maps a batch of points to values; higher is better.
    Stops at a local optimum or after ``max_steps``.
    """
    current = start
    current_value = float(objective([start])[0])
    evaluations = 1
    trajectory = [current_value]
    for _ in range(max_steps):
        candidates = _neighbors(space, current)
        values = objective(candidates)
        evaluations += len(candidates)
        best = int(np.argmax(values))
        if values[best] <= current_value:
            break
        current = candidates[best]
        current_value = float(values[best])
        trajectory.append(current_value)
    return SearchResult(
        best_point=current,
        best_value=current_value,
        evaluations=evaluations,
        trajectory=trajectory,
    )


def genetic_search(
    space: DesignSpace,
    objective: Callable[[Sequence[DesignPoint]], np.ndarray],
    population: int = 24,
    generations: int = 12,
    mutation_rate: float = 0.15,
    seed: Optional[int] = None,
) -> SearchResult:
    """A compact genetic algorithm over the discrete design grid.

    Individuals are level-index vectors; uniform crossover and per-gene
    mutation to an adjacent level; truncation selection of the top half.
    """
    if population < 4 or population % 2:
        raise ValueError("population must be an even number >= 4")
    rng = np.random.default_rng(seed)
    parameters = space.parameters
    cardinalities = [p.cardinality for p in parameters]

    def decode(genome: np.ndarray) -> DesignPoint:
        return space.point(
            **{
                p.name: p.values[int(g)]
                for p, g in zip(parameters, genome)
            }
        )

    genomes = np.array(
        [[rng.integers(0, c) for c in cardinalities] for _ in range(population)]
    )
    evaluations = 0
    best_point = None
    best_value = -np.inf
    trajectory: List[float] = []
    for _ in range(generations):
        points = [decode(g) for g in genomes]
        values = np.asarray(objective(points), dtype=float)
        evaluations += len(points)
        top = int(values.argmax())
        if values[top] > best_value:
            best_value = float(values[top])
            best_point = points[top]
        trajectory.append(best_value)

        order = np.argsort(values)[::-1]
        parents = genomes[order[: population // 2]]
        children = []
        while len(children) < population // 2:
            i, j = rng.integers(0, parents.shape[0], size=2)
            mask = rng.random(len(cardinalities)) < 0.5
            child = np.where(mask, parents[i], parents[j])
            for gene, cardinality in enumerate(cardinalities):
                if rng.random() < mutation_rate:
                    step = rng.choice((-1, 1))
                    child[gene] = int(np.clip(child[gene] + step, 0, cardinality - 1))
            children.append(child)
        genomes = np.vstack([parents, np.array(children)])

    assert best_point is not None
    return SearchResult(
        best_point=best_point,
        best_value=best_value,
        evaluations=evaluations,
        trajectory=trajectory,
    )


def efficiency_objective(
    ctx: StudyContext, benchmark: str
) -> Callable[[Sequence[DesignPoint]], np.ndarray]:
    """bips^3/w predicted by the regression models, as a batch objective."""

    def objective(points: Sequence[DesignPoint]) -> np.ndarray:
        table = ctx.predict_points(benchmark, list(points))
        return np.asarray(table.efficiency)

    return objective


@dataclass
class SearchComparison:
    """Heuristic-vs-exhaustive comparison for one benchmark."""

    benchmark: str
    exhaustive_value: float
    exhaustive_evaluations: int
    descent: SearchResult
    genetic: SearchResult

    @property
    def descent_quality(self) -> float:
        """Fraction of the exhaustive optimum the descent search found."""
        return self.descent.best_value / self.exhaustive_value

    @property
    def genetic_quality(self) -> float:
        return self.genetic.best_value / self.exhaustive_value


def compare_search_strategies(
    ctx: StudyContext, benchmark: str, seed: int = 0
) -> SearchComparison:
    """Run both heuristics against exhaustive prediction (X3 experiment)."""
    objective = efficiency_objective(ctx, benchmark)
    table = ctx.predict_exploration(benchmark)
    exhaustive_value = float(table.efficiency.max())
    descent = steepest_descent(
        ctx.exploration_space, objective, start=ctx.baseline
    )
    genetic = genetic_search(
        ctx.exploration_space, objective, seed=seed
    )
    return SearchComparison(
        benchmark=benchmark,
        exhaustive_value=exhaustive_value,
        exhaustive_evaluations=len(table),
        descent=descent,
        genetic=genetic,
    )
