"""Study 1: Pareto frontier analysis (Section 4).

Characterize the design space exhaustively with the regression models,
extract the pareto frontier in the power-delay plane (delay-minimizing
designs per power level, built by delay discretization as in Section 4.2),
identify bips^3/w optima (Table 2), and validate frontier predictions
against simulation (Figures 3 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..designspace import DesignPoint
from ..harness.sweep import (
    ParetoFrontierReducer,
    TopKReducer,
    discretized_frontier,
    pareto_indices,
)
from ..metrics import bips3_per_watt
from ..regression.validation import ErrorSummary, boxplot_stats, prediction_errors
from .common import PredictionTable, StudyContext

__all__ = [
    "ParetoFrontier",
    "pareto_indices",
    "discretized_frontier",
    "hypervolume_2d",
    "characterize",
    "frontier",
    "EfficiencyOptimum",
    "efficiency_optimum",
    "table2",
    "FrontierValidation",
    "validate_frontier",
    "resource_trend",
]


@dataclass
class ParetoFrontier:
    """Frontier designs with their predicted delay and power."""

    benchmark: str
    indices: np.ndarray      # into the characterization table
    points: List[DesignPoint]
    delay: np.ndarray
    power: np.ndarray

    def __len__(self) -> int:
        return len(self.points)


def hypervolume_2d(
    delay: np.ndarray,
    power: np.ndarray,
    reference: Tuple[float, float],
) -> float:
    """Dominated hypervolume of a 2-D (minimize, minimize) point set.

    The area between the pareto front of the points and the ``reference``
    point (which must be dominated by every point).  A standard scalar
    quality measure for frontiers: larger = better frontier.  Used to
    compare the regression-predicted frontier against the simulated one
    with one number.
    """
    delay = np.asarray(delay, dtype=float)
    power = np.asarray(power, dtype=float)
    ref_delay, ref_power = reference
    if (delay >= ref_delay).any() or (power >= ref_power).any():
        raise ValueError(
            "reference point must be strictly dominated by every point"
        )
    frontier_idx = pareto_indices(delay, power)
    d = delay[frontier_idx]
    p = power[frontier_idx]
    order = np.argsort(d)
    d, p = d[order], p[order]
    volume = 0.0
    previous_power = ref_power
    for i in range(len(d)):
        width = ref_delay - d[i]
        height = previous_power - p[i]
        volume += width * height
        previous_power = p[i]
    return float(volume)


def characterize(ctx: StudyContext, benchmark: str) -> PredictionTable:
    """Figure 2's data: predicted delay/power of the exploration set."""
    return ctx.predict_exploration(benchmark)


def frontier(
    ctx: StudyContext, benchmark: str, bins: int = 50
) -> ParetoFrontier:
    """The regression-predicted pareto frontier for one benchmark.

    Runs on the streaming sweep engine: the exploration set is predicted
    blockwise and only frontier candidates are retained, so the full
    262,500-point sweep never materializes a prediction table.  Indices
    are sweep positions — identical to row indices of
    :meth:`~repro.studies.common.StudyContext.predict_exploration`.
    """
    result = ctx.sweep_exploration(
        benchmark, [ParetoFrontierReducer(bins=bins)]
    )[0]
    return ParetoFrontier(
        benchmark=benchmark,
        indices=result.indices,
        points=result.points,
        delay=result.delay,
        power=result.power,
    )


@dataclass
class EfficiencyOptimum:
    """One row of Table 2: a benchmark's bips^3/w-maximizing design."""

    benchmark: str
    point: DesignPoint
    predicted_bips: float
    predicted_watts: float
    predicted_delay: float
    predicted_efficiency: float
    simulated_bips: float = float("nan")
    simulated_watts: float = float("nan")
    simulated_delay: float = float("nan")

    @property
    def delay_error(self) -> float:
        """Signed relative delay error, (sim - model) / model."""
        return (self.simulated_delay - self.predicted_delay) / self.predicted_delay

    @property
    def power_error(self) -> float:
        return (self.simulated_watts - self.predicted_watts) / self.predicted_watts


def efficiency_optimum(
    ctx: StudyContext, benchmark: str, validate: bool = True
) -> EfficiencyOptimum:
    """The benchmark's predicted bips^3/w-maximizing design (+ sim check).

    The argmax streams through the sweep engine (first occurrence wins on
    ties, as with ``argmax`` over a whole-space table).
    """
    best = ctx.sweep_exploration(
        benchmark, [TopKReducer(metric="efficiency", k=1)]
    )[0]
    point = best.points[0]
    row = EfficiencyOptimum(
        benchmark=benchmark,
        point=point,
        predicted_bips=float(best.bips[0]),
        predicted_watts=float(best.watts[0]),
        predicted_delay=float(best.delay[0]),
        predicted_efficiency=float(best.efficiency[0]),
    )
    if validate:
        result = ctx.simulate(benchmark, point)
        row.simulated_bips = result.bips
        row.simulated_watts = float(result.watts)
        row.simulated_delay = result.delay_seconds
    return row


def table2(ctx: StudyContext, validate: bool = True) -> List[EfficiencyOptimum]:
    """Table 2: per-benchmark bips^3/w optima with validation errors."""
    return [
        efficiency_optimum(ctx, benchmark, validate=validate)
        for benchmark in ctx.benchmarks
    ]


@dataclass
class FrontierValidation:
    """Figure 3/4 data for one benchmark: model vs simulation on the frontier."""

    benchmark: str
    points: List[DesignPoint]
    model_delay: np.ndarray
    model_power: np.ndarray
    simulated_delay: np.ndarray
    simulated_power: np.ndarray
    delay_errors: ErrorSummary
    power_errors: ErrorSummary

    def hypervolume_ratio(self) -> float:
        """Simulated-over-modeled frontier hypervolume (1.0 = same quality).

        Both frontiers are scored against a shared reference point just
        beyond the worst observed delay/power, so the ratio compares the
        frontier *shapes* independent of the per-point error signs.
        """
        reference = (
            1.1 * float(max(self.model_delay.max(), self.simulated_delay.max())),
            1.1 * float(max(self.model_power.max(), self.simulated_power.max())),
        )
        modeled = hypervolume_2d(self.model_delay, self.model_power, reference)
        simulated = hypervolume_2d(
            self.simulated_delay, self.simulated_power, reference
        )
        return simulated / modeled


def validate_frontier(
    ctx: StudyContext, benchmark: str, count: int = None, bins: int = 50
) -> FrontierValidation:
    """Simulate designs along the predicted frontier and summarize errors.

    ``count`` frontier designs are simulated, spread evenly along the
    frontier (defaults to the scale preset's ``frontier_validations``).
    """
    front = frontier(ctx, benchmark, bins=bins)
    count = count or ctx.scale.frontier_validations
    count = min(count, len(front))
    picks = np.unique(
        np.linspace(0, len(front) - 1, count).round().astype(int)
    )
    points = [front.points[i] for i in picks]
    model_delay = front.delay[picks]
    model_power = front.power[picks]
    results = ctx.simulate_many(benchmark, points)
    simulated_delay = np.array([r.delay_seconds for r in results])
    simulated_power = np.array([r.watts for r in results])

    delay_errors = prediction_errors(simulated_delay, model_delay)
    power_errors = prediction_errors(simulated_power, model_power)
    return FrontierValidation(
        benchmark=benchmark,
        points=points,
        model_delay=model_delay,
        model_power=model_power,
        simulated_delay=simulated_delay,
        simulated_power=simulated_power,
        delay_errors=ErrorSummary(
            benchmark=benchmark,
            metric="delay",
            errors=delay_errors,
            stats=boxplot_stats(delay_errors),
        ),
        power_errors=ErrorSummary(
            benchmark=benchmark,
            metric="watts",
            errors=power_errors,
            stats=boxplot_stats(power_errors),
        ),
    )


def resource_trend(
    ctx: StudyContext, benchmark: str, parameter: str
) -> Dict[float, Dict[str, float]]:
    """Figure 2's arrows: mean delay/power at each level of one parameter."""
    table = ctx.predict_exploration(benchmark)
    levels: Dict[float, Dict[str, float]] = {}
    values = np.array([point[parameter] for point in table.points], dtype=float)
    delay = table.delay
    for level in sorted(set(values.tolist())):
        mask = values == level
        levels[level] = {
            "mean_delay": float(delay[mask].mean()),
            "mean_power": float(table.watts[mask].mean()),
            "count": int(mask.sum()),
        }
    return levels
