"""Conclusion robustness under model uncertainty.

The paper promises, for each study, "an assessment of predictive error and
sensitivity of observed trends to such error."  This module quantifies
that sensitivity directly: the training sample is bootstrap-resampled, the
performance and power models refit, and each study's headline conclusion
recomputed per replicate.  Stable conclusions (the same optimal depth, the
same Table 2 optima region) survive resampling; fragile ones scatter.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..designspace import DesignPoint
from ..regression import FittedModel, fit_ols, performance_spec, power_spec
from .common import StudyContext


@dataclass
class BootstrapModels:
    """One replicate's refit model pair."""

    bips: FittedModel
    watts: FittedModel


def bootstrap_models(
    ctx: StudyContext,
    benchmark: str,
    replicates: int = 20,
    seed: int = 0,
) -> List[BootstrapModels]:
    """Refit the paper's models on bootstrap resamples of the training set."""
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1, got {replicates}")
    dataset = ctx.campaign.dataset(benchmark, "train")
    n = len(dataset)
    rng = np.random.default_rng(seed)
    models = []
    for _ in range(replicates):
        rows = rng.integers(0, n, size=n)
        columns = dataset.subset(rows.tolist()).columns()
        models.append(
            BootstrapModels(
                bips=fit_ols(performance_spec(), columns),
                watts=fit_ols(power_spec(), columns),
            )
        )
    return models


@dataclass
class OptimumStability:
    """Bootstrap distribution of one benchmark's bips^3/w optimum."""

    benchmark: str
    replicates: int
    nominal_point: DesignPoint
    modal_point: DesignPoint
    modal_fraction: float                  #: replicates agreeing on the mode
    parameter_agreement: Dict[str, float]  #: per-parameter match vs nominal
    efficiency_cv: float                   #: coefficient of variation of max eff.


def optimum_stability(
    ctx: StudyContext,
    benchmark: str,
    replicates: int = 20,
    seed: int = 0,
) -> OptimumStability:
    """How stable is the predicted bips^3/w-optimal design under resampling?"""
    points = ctx.exploration_points()
    table = ctx.predict_exploration(benchmark)
    nominal_index = int(table.efficiency.argmax())
    nominal = points[nominal_index]

    # encode once; every replicate predicts over the same matrix
    from ..designspace import DesignEncoder

    encoder = DesignEncoder(ctx.exploration_space)
    matrix = encoder.encode(points)
    columns = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}

    winners: List[DesignPoint] = []
    efficiencies: List[float] = []
    for models in bootstrap_models(ctx, benchmark, replicates, seed):
        bips = models.bips.predict(columns)
        watts = models.watts.predict(columns)
        efficiency = bips**3 / watts
        index = int(efficiency.argmax())
        winners.append(points[index])
        efficiencies.append(float(efficiency[index]))

    counts = Counter(winners)
    modal_point, modal_count = counts.most_common(1)[0]
    agreement = {
        name: float(
            np.mean([winner[name] == nominal[name] for winner in winners])
        )
        for name in nominal.names
    }
    efficiencies_array = np.array(efficiencies)
    cv = float(efficiencies_array.std() / efficiencies_array.mean())
    return OptimumStability(
        benchmark=benchmark,
        replicates=replicates,
        nominal_point=nominal,
        modal_point=modal_point,
        modal_fraction=modal_count / replicates,
        parameter_agreement=agreement,
        efficiency_cv=cv,
    )


@dataclass
class DepthStability:
    """Bootstrap distribution of the constrained analysis's optimal depth."""

    replicates: int
    nominal_depth: float
    depth_histogram: Dict[float, float]     #: depth -> fraction of replicates
    within_one_level: float                 #: fraction within ±1 grid level


def depth_optimum_stability(
    ctx: StudyContext,
    replicates: int = 20,
    seed: int = 0,
    benchmarks: Optional[List[str]] = None,
) -> DepthStability:
    """Stability of the suite-average original-analysis depth optimum."""
    from .depth import depth_levels

    benchmarks = list(benchmarks or ctx.benchmarks)
    depths = list(depth_levels(ctx))
    baseline = ctx.baseline
    sweep_points = [baseline.replace(depth=d) for d in depths]

    from ..designspace import DesignEncoder

    encoder = DesignEncoder(ctx.exploration_space)
    matrix = encoder.encode(sweep_points)
    columns = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}

    # nominal optimum from the primary models
    def suite_relative(model_table: Dict[str, Dict[str, np.ndarray]]) -> np.ndarray:
        stack = []
        for benchmark in benchmarks:
            bips = model_table[benchmark]["bips"]
            watts = model_table[benchmark]["watts"]
            efficiency = bips**3 / watts
            stack.append(efficiency / efficiency.max())
        return np.mean(np.vstack(stack), axis=0)

    nominal_models = {
        b: {
            "bips": ctx.model(b, "bips").predict(columns),
            "watts": ctx.model(b, "watts").predict(columns),
        }
        for b in benchmarks
    }
    nominal_depth = depths[int(suite_relative(nominal_models).argmax())]

    rng = np.random.default_rng(seed)
    histogram: Counter = Counter()
    for r in range(replicates):
        replicate_table = {}
        for benchmark in benchmarks:
            models = bootstrap_models(
                ctx, benchmark, replicates=1, seed=int(rng.integers(0, 2**31 - 1))
            )[0]
            replicate_table[benchmark] = {
                "bips": models.bips.predict(columns),
                "watts": models.watts.predict(columns),
            }
        winner = depths[int(suite_relative(replicate_table).argmax())]
        histogram[winner] += 1

    index = depths.index(nominal_depth)
    neighbours = {
        depths[j] for j in (index - 1, index, index + 1) if 0 <= j < len(depths)
    }
    within = sum(histogram[d] for d in neighbours) / replicates
    return DepthStability(
        replicates=replicates,
        nominal_depth=nominal_depth,
        depth_histogram={d: histogram[d] / replicates for d in depths},
        within_one_level=within,
    )
