"""Clustering analyses for the heterogeneity study (Section 6)."""

from .kmeans import (
    KMeansError,
    KMeansResult,
    elbow_inertias,
    kmeans,
    lloyd_iteration,
)

__all__ = [
    "kmeans",
    "lloyd_iteration",
    "elbow_inertias",
    "KMeansResult",
    "KMeansError",
]
