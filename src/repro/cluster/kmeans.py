"""K-means clustering (Section 6).

The paper clusters per-benchmark optimal architectures in normalized,
weighted parameter space with the classic K-means heuristic (random
centroid placement, assign/recompute until stable).  This implementation
adds k-means++ seeding and multi-restart with an inertia criterion, both
standard hardening of the same heuristic; plain random seeding (the
paper's step 1) remains available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


class KMeansError(ValueError):
    """Raised for infeasible clustering requests."""


@dataclass
class KMeansResult:
    """Outcome of one clustering: centroids, assignments, inertia."""

    centroids: np.ndarray          # (k, d)
    assignments: np.ndarray        # (n,) cluster index per point
    inertia: float                 # sum of squared distances to centroids
    iterations: int
    converged: bool

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points assigned to ``cluster``."""
        return np.flatnonzero(self.assignments == cluster)


def _distances_sq(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """(n, k) squared Euclidean distances."""
    diff = points[:, None, :] - centroids[None, :, :]
    return np.einsum("nkd,nkd->nk", diff, diff)


def _init_random(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """The paper's step 1: centroids at random distinct data points."""
    indices = rng.choice(points.shape[0], size=k, replace=False)
    return points[indices].copy()


def _init_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[rng.integers(0, n)]
    closest = ((points - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest.sum()
        if total <= 0:
            centroids[j] = points[rng.integers(0, n)]
        else:
            probabilities = closest / total
            centroids[j] = points[rng.choice(n, p=probabilities)]
        distances = ((points - centroids[j]) ** 2).sum(axis=1)
        np.minimum(closest, distances, out=closest)
    return centroids


def lloyd_iteration(
    points: np.ndarray,
    centroids: np.ndarray,
    max_iterations: int = 100,
) -> KMeansResult:
    """Steps 2-4 of the paper's heuristic from given initial centroids."""
    k = centroids.shape[0]
    assignments = np.full(points.shape[0], -1)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = _distances_sq(points, centroids)
        new_assignments = distances.argmin(axis=1)
        if (new_assignments == assignments).all():
            converged = True
            break
        assignments = new_assignments
        for j in range(k):
            members = points[assignments == j]
            if members.size:
                centroids[j] = members.mean(axis=0)
            # Empty clusters keep their previous centroid (they may
            # re-acquire members on a later iteration).
    inertia = float(_distances_sq(points, centroids).min(axis=1).sum())
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        iterations=iteration,
        converged=converged,
    )


def kmeans(
    points: np.ndarray,
    k: int,
    seed: Optional[int] = None,
    restarts: int = 10,
    init: str = "k-means++",
    max_iterations: int = 100,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups; best of ``restarts`` runs.

    ``init`` is ``"k-means++"`` or ``"random"`` (the paper's plain random
    placement).  Requires ``k <= n``; with ``k == n`` every point is its
    own cluster (the paper's "nine benchmark architectures" upper bound).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise KMeansError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise KMeansError(f"k must be in [1, {n}], got {k}")
    if restarts < 1:
        raise KMeansError(f"restarts must be >= 1, got {restarts}")
    if init not in ("k-means++", "random"):
        raise KMeansError(f"unknown init {init!r}")

    rng = np.random.default_rng(seed)
    initialize = _init_plus_plus if init == "k-means++" else _init_random
    best: Optional[KMeansResult] = None
    for _ in range(restarts):
        centroids = initialize(points, k, rng)
        result = lloyd_iteration(points, centroids, max_iterations)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def elbow_inertias(
    points: np.ndarray,
    k_values: Tuple[int, ...],
    seed: Optional[int] = None,
    restarts: int = 10,
) -> dict:
    """Inertia per k — the diminishing-returns curve behind Figure 9."""
    return {
        k: kmeans(points, k, seed=seed, restarts=restarts).inertia
        for k in k_values
    }
