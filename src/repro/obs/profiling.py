"""Opt-in profiling hooks: cProfile wrapped around a traced region.

Profiling is the expensive pillar — a deterministic ``cProfile`` run
slows python code substantially — so it never runs implicitly.  Wrap
the region of interest explicitly:

    from repro.obs import profile

    with profile("sweep-hotpath", top=15) as prof:
        run_sweep(predictor, source, reducers)
    print(prof.report)

The formatted ``pstats`` output (top functions by cumulative time) is
captured on the handle, attached to the enclosing trace span as a
``profile`` attribute when tracing is active, and optionally written to
``path`` for offline ``pstats`` analysis.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator, Optional

from .tracing import get_tracer

__all__ = ["ProfileHandle", "profile"]


class ProfileHandle:
    """Result of one :func:`profile` block."""

    __slots__ = ("name", "report", "stats")

    def __init__(self, name: str) -> None:
        self.name = name
        self.report: str = ""
        self.stats: Optional[pstats.Stats] = None

    def top_functions(self, n: int = 10) -> str:
        """Formatted top-``n`` functions by cumulative time."""
        if self.stats is None:
            return ""
        buffer = io.StringIO()
        stats = self.stats
        stats.stream = buffer
        stats.sort_stats("cumulative").print_stats(n)
        return buffer.getvalue()


@contextmanager
def profile(
    name: str, top: int = 20, path: Optional[str] = None
) -> Iterator[ProfileHandle]:
    """Profile the ``with`` block under a span named ``profile.<name>``.

    ``top`` bounds the formatted report attached to the span (full
    stats remain on the handle); ``path``, if given, receives the raw
    ``cProfile`` dump for ``pstats``/``snakeviz``-style tooling.
    """
    handle = ProfileHandle(name)
    profiler = cProfile.Profile()
    tracer = get_tracer()
    with tracer.span(f"profile.{name}") as span:
        profiler.enable()
        try:
            yield handle
        finally:
            profiler.disable()
            buffer = io.StringIO()
            stats = pstats.Stats(profiler, stream=buffer)
            stats.sort_stats("cumulative").print_stats(top)
            handle.stats = stats
            handle.report = buffer.getvalue()
            if path is not None:
                profiler.dump_stats(path)
                span.set_attr("dump", str(path))
            span.set_attr("profile", handle.report)
