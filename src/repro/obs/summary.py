"""Aggregation and rendering for recorded traces.

Backs ``repro trace summary`` (per-span-name aggregate table) and
``repro trace tree`` (slowest-path tree view).  Deliberately standalone:
:mod:`repro.obs` sits below every other repro package, so the small
table formatter here does not reach for ``repro.harness.tables`` and
the p95 is a nearest-rank percentile over a sorted list rather than a
numpy call — the whole package stays dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .tracing import SpanNode, build_span_tree

__all__ = [
    "SpanStats",
    "render_metrics",
    "render_summary",
    "render_tree",
    "summarize_spans",
]


class SpanStats:
    """Aggregate over every span sharing one name."""

    __slots__ = ("name", "count", "total_wall_s", "total_cpu_s", "_walls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_wall_s = 0.0
        self.total_cpu_s = 0.0
        self._walls: List[float] = []

    def add(self, wall_s: float, cpu_s: float) -> None:
        """Fold one span's timings into the aggregate."""
        self.count += 1
        self.total_wall_s += wall_s
        self.total_cpu_s += cpu_s
        self._walls.append(wall_s)

    @property
    def mean_wall_s(self) -> float:
        """Mean wall time per span (0.0 when empty)."""
        return self.total_wall_s / self.count if self.count else 0.0

    @property
    def p95_wall_s(self) -> float:
        """Nearest-rank 95th-percentile wall time."""
        if not self._walls:
            return 0.0
        ordered = sorted(self._walls)
        rank = max(0, -(-95 * len(ordered) // 100) - 1)  # ceil, 0-based
        return ordered[rank]


def summarize_spans(records: List[dict]) -> List[SpanStats]:
    """Per-name aggregates over span records, sorted by total wall desc."""
    stats: Dict[str, SpanStats] = {}
    for body in records:
        if body.get("kind") != "span":
            continue
        entry = stats.get(body["name"])
        if entry is None:
            entry = stats[body["name"]] = SpanStats(body["name"])
        entry.add(body["wall_s"], body["cpu_s"])
    return sorted(stats.values(), key=lambda s: -s.total_wall_s)


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.1f}"
    if value >= 1:
        return f"{value:.3f}"
    return f"{value * 1000:.3f}ms" if value < 0.0995 else f"{value:.4f}"


def _render_rows(header: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]

    def line(cells: List[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def render_summary(records: List[dict]) -> str:
    """The ``repro trace summary`` table: one row per span name."""
    stats = summarize_spans(records)
    if not stats:
        return "(no spans recorded)"
    events = sum(1 for b in records if b.get("kind") == "event")
    rows = [
        [
            s.name,
            str(s.count),
            _fmt_seconds(s.total_wall_s),
            _fmt_seconds(s.mean_wall_s),
            _fmt_seconds(s.p95_wall_s),
            _fmt_seconds(s.total_cpu_s),
        ]
        for s in stats
    ]
    table = _render_rows(
        ["span", "count", "total", "mean", "p95", "cpu"], rows
    )
    total = sum(s.count for s in stats)
    return f"{table}\n\n{total} spans, {events} events"


def render_tree(
    records: List[dict],
    max_depth: int = 8,
    max_children: int = 6,
) -> str:
    """The ``repro trace tree`` view: slowest paths, children by wall.

    Each node shows its wall time, self time (wall minus child spans),
    and name; children are sorted slowest-first and pruned to
    ``max_children`` per node with an elision marker.
    """
    roots = build_span_tree(records)
    span_roots = [r for r in roots if r.body["kind"] == "span"]
    if not span_roots:
        return "(no spans recorded)"
    lines: List[str] = []

    def visit(node: SpanNode, prefix: str, last: bool, depth: int) -> None:
        if node.body["kind"] == "event":
            return
        if depth == 0:
            connector = ""
            child_prefix = "  "
        else:
            connector = "└─ " if last else "├─ "
            child_prefix = prefix + ("   " if last else "│  ")
        label = (
            f"{_fmt_seconds(node.wall_s)} "
            f"(self {_fmt_seconds(node.self_wall_s())}) {node.name}"
        )
        if node.body.get("status") == "error":
            label += " [error]"
        lines.append(prefix + connector + label)
        if depth >= max_depth:
            return
        children = sorted(
            (c for c in node.children if c.body["kind"] == "span"),
            key=lambda c: -c.wall_s,
        )
        shown = children[:max_children]
        for index, child in enumerate(shown):
            is_last = index == len(shown) - 1 and len(children) <= max_children
            visit(child, child_prefix, is_last, depth + 1)
        if len(children) > max_children:
            hidden = len(children) - max_children
            hidden_wall = sum(c.wall_s for c in children[max_children:])
            lines.append(
                child_prefix
                + f"└─ … {hidden} more ({_fmt_seconds(hidden_wall)})"
            )

    for index, root in enumerate(span_roots):
        visit(root, "", index == len(span_roots) - 1, 0)
    return "\n".join(lines)


def render_metrics(snapshot: Optional[dict]) -> str:
    """Human-readable rendering of a metrics snapshot."""
    if not snapshot:
        return "(no metrics recorded)"
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [
            [key, f"{value:g}"] for key, value in sorted(counters.items())
        ]
        lines.append(_render_rows(["counter", "value"], rows))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [[key, f"{value:g}"] for key, value in sorted(gauges.items())]
        lines.append(_render_rows(["gauge", "value"], rows))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for key, hist in sorted(histograms.items()):
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            rows.append([key, str(count), _fmt_seconds(hist["sum"]),
                         _fmt_seconds(mean)])
        lines.append(
            _render_rows(["histogram", "count", "sum", "mean"], rows)
        )
    return "\n\n".join(lines) if lines else "(no metrics recorded)"
