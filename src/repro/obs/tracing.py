"""Nested spans, structured events, and the checksummed JSONL trace sink.

A :class:`Tracer` measures *always* and emits *only when configured*: a
``with tracer.span("sweep.predict_block")`` block costs two clock reads
when no sink is attached, so instrumentation stays in place permanently
and tracing is a runtime switch (``--trace PATH`` on the CLI, or
:func:`configure_tracing` from code).

The on-disk format reuses the discipline of ``resilience.Journal``: one
JSON object per line, ``{"sha": sha256(canonical-body)[:16], "body":
{...}}``, written with a single ``O_APPEND`` write per record so
concurrent appenders cannot interleave partial lines.  A crash leaves at
most one truncated tail line, which :func:`read_trace` tolerates; a
corrupted checksum is skipped with a warning rather than failing the
load.  Unlike the journal, fsync is opt-in (``TraceSink(path,
fsync=True)``): traces are diagnostics, not recovery state, and
fsync-per-span would dominate the hot paths the trace is measuring.

Record bodies come in three kinds (see ``docs/OBSERVABILITY.md``):

- ``header`` — first line; format version, pid, clock epoch;
- ``span`` — a completed timed region: name, id, parent id, start
  offset ``t0`` (seconds since the tracer's epoch), ``wall_s``,
  ``cpu_s``, ``status`` (``ok``/``error``), free-form ``attrs``;
- ``event`` — a point-in-time occurrence (a retry, a degradation)
  with the enclosing span as parent.

Span ids are ``s1``, ``s2``, ... per process; parentage comes from a
stack, so spans nest lexically with the ``with`` blocks that create
them.  Worker processes do not trace directly — they time their work
with :class:`Stopwatch` and the driver replays it via
:meth:`Tracer.record_span`, keeping every trace file single-writer.
"""

from __future__ import annotations

import functools
import hashlib
import io
import json
import logging
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanNode",
    "Stopwatch",
    "TraceError",
    "TraceSink",
    "Tracer",
    "build_span_tree",
    "configure_tracing",
    "disable_tracing",
    "event",
    "get_tracer",
    "read_trace",
    "span",
    "traced",
    "validate_record",
]

logger = logging.getLogger(__name__)

#: Current trace file format version (bumped on incompatible changes).
TRACE_VERSION = 1

_SHA_LEN = 16


class TraceError(ValueError):
    """Raised for malformed trace files or invalid trace records."""


def _checksum(body: dict) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_SHA_LEN]


class Stopwatch:
    """Paired wall/CPU timer for code that cannot hold a span open.

    Wall time uses ``time.perf_counter`` (monotonic, high resolution);
    CPU time uses ``time.process_time``.  Usable as a context manager or
    via explicit :meth:`start`/:meth:`stop`; after stopping, ``wall_s``
    and ``cpu_s`` hold the elapsed values.  This is the sanctioned way
    to time harness code outside a span — analysis rule OBS001 flags
    bare ``time.perf_counter`` timing in ``repro.harness``.
    """

    __slots__ = ("wall_s", "cpu_s", "_wall0", "_cpu0")

    def __init__(self) -> None:
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def start(self) -> "Stopwatch":
        """Begin (or restart) timing."""
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def stop(self) -> "Stopwatch":
        """Capture elapsed wall/CPU since :meth:`start`."""
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        return self

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class Span:
    """One open timed region; finalized into a ``span`` record.

    Created by :meth:`Tracer.span`; user code only touches
    :meth:`set_attr` to enrich the record while the span is open.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "attrs", "t0",
        "wall_s", "cpu_s", "status", "_wall0", "_cpu0",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
        t0: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.t0 = t0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.status = "ok"
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def set_attr(self, key: str, value: Any) -> None:
        """Attach an attribute to the span while it is open."""
        self.attrs[key] = value

    def _finish(self, status: str) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        self.status = status

    def _body(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t0": self.t0,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
            "attrs": self.attrs,
        }


class TraceSink:
    """Append-only checksummed JSONL writer for trace records.

    Each record is one line, ``{"sha": ..., "body": ...}``, written with
    a single ``os.write`` on an ``O_APPEND`` descriptor.  The first line
    is a ``header`` record binding the format version and pid.  Closing
    the sink is idempotent; writes after close are an error.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = str(path)
        self.fsync = fsync
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if os.fstat(self._fd).st_size == 0:
            self.write({
                "kind": "header",
                "version": TRACE_VERSION,
                "pid": os.getpid(),
            })

    def write(self, body: dict) -> None:
        """Append one record (checksum added here)."""
        if self._fd is None:
            raise TraceError(f"trace sink {self.path} is closed")
        line = json.dumps(
            {"sha": _checksum(body), "body": body}, sort_keys=True
        )
        os.write(self._fd, (line + "\n").encode("utf-8"))
        if self.fsync:
            os.fsync(self._fd)

    def close(self) -> None:
        """Flush and release the descriptor (safe to call twice)."""
        if self._fd is not None:
            os.fsync(self._fd)
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Tracer:
    """Produces nested spans and events, emitting them to a sink.

    One tracer per process; get it with :func:`get_tracer`.  With no
    sink attached every operation still *measures* (so callers can read
    ``span.wall_s`` after the block) but nothing is written.
    """

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self._sink = sink
        self._stack: List[Span] = []
        self._next_id = 0
        self._epoch = time.perf_counter()

    @property
    def active(self) -> bool:
        """True when a sink is attached (records are being written)."""
        return self._sink is not None

    @property
    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span, or None at top level."""
        return self._stack[-1].span_id if self._stack else None

    def set_sink(self, sink: Optional[TraceSink]) -> None:
        """Attach (or detach, with None) the output sink."""
        if self._sink is not None and sink is not self._sink:
            self._sink.close()
        self._sink = sink

    def _new_id(self) -> str:
        self._next_id += 1
        return f"s{self._next_id}"

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span around the ``with`` block.

        The span's status becomes ``error`` if the block raises; the
        exception propagates after the record is emitted.
        """
        record = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=self.current_span_id,
            attrs=dict(attrs),
            t0=time.perf_counter() - self._epoch,
        )
        self._stack.append(record)
        try:
            yield record
        except BaseException:
            record._finish("error")
            raise
        finally:
            if record.status == "ok":
                record._finish("ok")
            self._stack.pop()
            if self._sink is not None:
                self._sink.write(record._body())

    def record_span(
        self,
        name: str,
        wall_s: float,
        cpu_s: float = 0.0,
        **attrs,
    ) -> None:
        """Emit a span measured elsewhere (e.g. inside a pool worker).

        The record is parented to the currently open span and stamped
        ``t0`` as if it just ended, so worker-side durations appear in
        the driver's trace without a second writer on the file.
        """
        if self._sink is None:
            return
        now = time.perf_counter() - self._epoch
        self._sink.write({
            "kind": "span",
            "name": name,
            "id": self._new_id(),
            "parent": self.current_span_id,
            "t0": max(0.0, now - wall_s),
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "status": "ok",
            "attrs": dict(attrs),
        })

    def event(self, name: str, **attrs) -> None:
        """Emit a point-in-time event under the current span."""
        if self._sink is None:
            return
        self._sink.write({
            "kind": "event",
            "name": name,
            "id": self._new_id(),
            "parent": self.current_span_id,
            "t": time.perf_counter() - self._epoch,
            "attrs": dict(attrs),
        })


#: The process-wide tracer instrumented code goes through.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (inactive until configured)."""
    return _TRACER


def configure_tracing(path: str, fsync: bool = False) -> Tracer:
    """Attach a JSONL sink at ``path`` to the process-wide tracer."""
    _TRACER.set_sink(TraceSink(path, fsync=fsync))
    return _TRACER


def disable_tracing() -> None:
    """Detach and close the process-wide tracer's sink, if any."""
    _TRACER.set_sink(None)


@contextmanager
def span(name: str, **attrs) -> Iterator[Span]:
    """Module-level shorthand for ``get_tracer().span(...)``."""
    with _TRACER.span(name, **attrs) as record:
        yield record


def event(name: str, **attrs) -> None:
    """Module-level shorthand for ``get_tracer().event(...)``."""
    _TRACER.event(name, **attrs)


def traced(
    name: Optional[str] = None, **attrs
) -> Callable[[Callable], Callable]:
    """Decorator wrapping every call of a function in a span.

    ``@traced()`` uses the function's qualified name; ``@traced("x")``
    overrides it.  Extra keyword arguments become span attributes.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _TRACER.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- reading ---------------------------------------------------------------

_SPAN_FIELDS = {
    "kind": str, "name": str, "id": str, "t0": (int, float),
    "wall_s": (int, float), "cpu_s": (int, float), "status": str,
    "attrs": dict,
}
_EVENT_FIELDS = {
    "kind": str, "name": str, "id": str, "t": (int, float), "attrs": dict,
}
_HEADER_FIELDS = {"kind": str, "version": int, "pid": int}


def validate_record(body: dict) -> None:
    """Raise :class:`TraceError` unless ``body`` matches the schema."""
    if not isinstance(body, dict):
        raise TraceError(f"record body must be an object, got {type(body)}")
    kind = body.get("kind")
    if kind == "span":
        required: Dict[str, Any] = _SPAN_FIELDS
    elif kind == "event":
        required = _EVENT_FIELDS
    elif kind == "header":
        required = _HEADER_FIELDS
    else:
        raise TraceError(f"unknown record kind {kind!r}")
    for field, types in required.items():
        if field not in body:
            raise TraceError(f"{kind} record missing field {field!r}")
        if not isinstance(body[field], types):
            raise TraceError(
                f"{kind} field {field!r} has type "
                f"{type(body[field]).__name__}"
            )
    if kind in ("span", "event") and not (
        body.get("parent") is None or isinstance(body["parent"], str)
    ):
        raise TraceError(f"{kind} field 'parent' must be a string or null")
    if kind == "span" and body["status"] not in ("ok", "error"):
        raise TraceError(f"span status must be ok/error, got {body['status']!r}")
    if kind == "header" and body["version"] != TRACE_VERSION:
        raise TraceError(
            f"unsupported trace version {body['version']} "
            f"(expected {TRACE_VERSION})"
        )


def read_trace(path: str, strict: bool = False) -> List[dict]:
    """Load a trace file, returning validated record bodies.

    A truncated final line (crash mid-write) is tolerated silently; a
    line with a bad checksum or schema is skipped with a warning, or
    raises :class:`TraceError` when ``strict`` is set.  The header
    record is validated but not returned.
    """
    records: List[dict] = []
    with io.open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
        trailing_newline = True
    else:
        trailing_newline = False
    for index, line in enumerate(lines):
        last = index == len(lines) - 1
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError:
            if last and not trailing_newline:
                break  # torn tail write; everything before it is intact
            if strict:
                raise TraceError(f"{path}:{index + 1}: unparseable line")
            logger.warning("%s:%d: skipping unparseable line", path, index + 1)
            continue
        try:
            if not isinstance(envelope, dict) or "body" not in envelope:
                raise TraceError("missing body")
            body = envelope["body"]
            if envelope.get("sha") != _checksum(body):
                raise TraceError("checksum mismatch")
            validate_record(body)
        except TraceError as exc:
            if strict:
                raise TraceError(f"{path}:{index + 1}: {exc}") from exc
            logger.warning("%s:%d: skipping record: %s", path, index + 1, exc)
            continue
        if body["kind"] == "header":
            if index != 0:
                message = f"{path}:{index + 1}: header not on first line"
                if strict:
                    raise TraceError(message)
                logger.warning("%s", message)
            continue
        records.append(body)
    return records


class SpanNode:
    """One span in a rebuilt trace tree, with its children attached."""

    __slots__ = ("body", "children")

    def __init__(self, body: dict) -> None:
        self.body = body
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        """Span name."""
        return self.body["name"]

    @property
    def wall_s(self) -> float:
        """Span wall-clock duration in seconds."""
        return self.body["wall_s"]

    def self_wall_s(self) -> float:
        """Wall time not accounted for by child spans (floored at 0)."""
        return max(
            0.0,
            self.wall_s
            - sum(c.wall_s for c in self.children if c.body["kind"] == "span"),
        )


def build_span_tree(records: List[dict]) -> List[SpanNode]:
    """Rebuild the span/event forest from flat records.

    Returns the root nodes (spans and events with no parent, or whose
    parent never produced a record — e.g. a still-open root span when
    the process died).  Children are ordered by start time.
    """
    nodes = {body["id"]: SpanNode(body) for body in records}
    roots: List[SpanNode] = []
    for body in records:
        node = nodes[body["id"]]
        parent = body.get("parent")
        if parent is not None and parent in nodes:
            nodes[parent].children.append(node)
        else:
            roots.append(node)

    def start(node: SpanNode) -> float:
        return node.body.get("t0", node.body.get("t", 0.0))

    for node in nodes.values():
        node.children.sort(key=start)
    roots.sort(key=start)
    return roots
