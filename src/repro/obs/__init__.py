"""Observability layer: tracing, metrics, and profiling hooks.

``repro.obs`` is the telemetry substrate under every other repro
package — it imports nothing from the rest of the codebase and needs
no third-party dependencies, so any layer (simulator hot loops,
sweep block folds, the resilience chunk executor) can instrument
itself unconditionally.  Three pillars:

- **tracing** (:mod:`repro.obs.tracing`) — nested spans with wall/CPU
  timings written as checksummed JSONL; always measures, emits only
  when a sink is configured (``--trace PATH`` / ``configure_tracing``);
- **metrics** (:mod:`repro.obs.metrics`) — a process-wide registry of
  counters, gauges, and fixed-bucket histograms whose snapshots merge
  across the resilience process pool;
- **profiling** (:mod:`repro.obs.profiling`) — opt-in cProfile capture
  attached to a trace span.

``repro trace summary|tree|validate`` reads the recorded traces; see
``docs/OBSERVABILITY.md`` for the file format and naming conventions.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    get_registry,
    isolated_registry,
    merge_snapshots,
    reset_registry,
)
from .profiling import ProfileHandle, profile
from .summary import (
    SpanStats,
    render_metrics,
    render_summary,
    render_tree,
    summarize_spans,
)
from .tracing import (
    Span,
    SpanNode,
    Stopwatch,
    TraceError,
    TraceSink,
    Tracer,
    build_span_tree,
    configure_tracing,
    disable_tracing,
    event,
    get_tracer,
    read_trace,
    span,
    traced,
    validate_record,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "ProfileHandle",
    "Span",
    "SpanNode",
    "SpanStats",
    "Stopwatch",
    "TraceError",
    "TraceSink",
    "Tracer",
    "build_span_tree",
    "configure_tracing",
    "disable_tracing",
    "event",
    "get_registry",
    "get_tracer",
    "isolated_registry",
    "merge_snapshots",
    "profile",
    "read_trace",
    "render_metrics",
    "render_summary",
    "render_tree",
    "reset_registry",
    "span",
    "summarize_spans",
    "traced",
    "validate_record",
]
