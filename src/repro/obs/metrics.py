"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry is the *cheap* pillar of :mod:`repro.obs`: instruments are
plain python objects behind one dict lookup, so per-block and even
per-simulation hot paths can count work units and observe durations
without measurable overhead.  Everything snapshots to a JSON-safe dict,
and snapshots compose:

- :meth:`MetricsRegistry.snapshot` captures the current state;
- :meth:`MetricsRegistry.delta` subtracts an earlier snapshot, giving
  the metrics attributable to one chunk of work — this is how worker
  processes ship per-chunk metrics back through
  :mod:`repro.harness.resilience` without global coordination;
- :func:`merge_snapshots` folds any number of snapshots (driver plus
  workers, fresh plus journal-resumed) into one, with well-defined
  semantics: counters and histogram buckets add, gauges take the
  maximum (merge order must not matter).

Naming convention: ``layer.noun[.unit]`` with dots between components —
``sweep.points``, ``simulator.simulate.seconds`` — and optional labels
for low-cardinality dimensions (``benchmark=gzip``).  Durations are
always seconds.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "get_registry",
    "isolated_registry",
    "merge_snapshots",
    "reset_registry",
]

#: Default histogram bucket upper bounds (seconds): spans microbenchmark
#: blocks (~ms) through full campaigns (~minutes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Current snapshot schema version.
SNAPSHOT_VERSION = 1


class MetricsError(ValueError):
    """Raised for malformed metric names, buckets, or snapshots."""


def _key(name: str, labels: Dict[str, object]) -> str:
    """Serialized instrument key: ``name`` or ``name{k=v,k2=v2}``.

    Labels are sorted so the key is independent of call-site order; the
    serialized form doubles as the snapshot key, which keeps snapshots
    JSON-safe and mergeable by plain string equality.
    """
    if not name:
        raise MetricsError("metric name must be non-empty")
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count of events or work units."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; negative amounts are rejected."""
        if amount < 0:
            raise MetricsError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, worker count, block size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with sum and count.

    ``buckets`` are the inclusive upper bounds of each bucket; one
    overflow bucket catches everything larger.  Bucket counts are stored
    per bucket (not cumulative), so merging two histograms is elementwise
    addition.  A value equal to a bound lands in that bound's bucket
    (``le`` semantics, as in OpenMetrics).
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"bucket bounds must strictly increase, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Add one observation (binary search over the bucket bounds)."""
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """One process's instruments, keyed by name (plus optional labels).

    Accessors are get-or-create; re-requesting a name with a different
    instrument kind (or different histogram buckets) is an error, which
    keeps the namespace coherent across independently instrumented
    layers.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter."""
        key = _key(name, labels)
        self._check_kind(key, self._counters, "counter")
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge."""
        key = _key(name, labels)
        self._check_kind(key, self._gauges, "gauge")
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        key = _key(name, labels)
        self._check_kind(key, self._histograms, "histogram")
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        elif buckets is not None and tuple(
            float(b) for b in buckets
        ) != histogram.buckets:
            raise MetricsError(
                f"histogram {key!r} already registered with buckets "
                f"{histogram.buckets}"
            )
        return histogram

    def _check_kind(self, key: str, own: Dict, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and key in table:
                raise MetricsError(
                    f"metric {key!r} is already a {other_kind}, not a {kind}"
                )

    # -- convenience -------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0, **labels) -> None:
        """``counter(name).add(amount)`` in one call."""
        self.counter(name, **labels).add(amount)

    def observe(self, name: str, value: float, **labels) -> None:
        """``histogram(name).observe(value)`` in one call."""
        self.histogram(name, **labels).observe(value)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """``gauge(name).set(value)`` in one call."""
        self.gauge(name, **labels).set(value)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe copy of every instrument's current state."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {
                key: counter.value for key, counter in self._counters.items()
            },
            "gauges": {
                key: gauge.value for key, gauge in self._gauges.items()
            },
            "histograms": {
                key: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "sum": histogram.sum,
                    "count": histogram.count,
                }
                for key, histogram in self._histograms.items()
            },
        }

    def delta(self, since: dict) -> dict:
        """The metrics accrued after ``since`` (an earlier snapshot).

        Counters and histogram bucket counts subtract; gauges report
        their current value (a level has no meaningful difference).
        This is what one chunk of work contributed, regardless of what
        ran before it in the same process.
        """
        now = self.snapshot()
        counters = {}
        for key, value in now["counters"].items():
            grown = value - since.get("counters", {}).get(key, 0.0)
            if grown:
                counters[key] = grown
        histograms = {}
        for key, hist in now["histograms"].items():
            base = since.get("histograms", {}).get(key)
            if base is None:
                if hist["count"]:
                    histograms[key] = hist
                continue
            if list(base["buckets"]) != hist["buckets"]:
                raise MetricsError(
                    f"histogram {key!r} changed buckets between snapshots"
                )
            counts = [
                c - b for c, b in zip(hist["counts"], base["counts"])
            ]
            count = hist["count"] - base["count"]
            if count:
                histograms[key] = {
                    "buckets": hist["buckets"],
                    "counts": counts,
                    "sum": hist["sum"] - base["sum"],
                    "count": count,
                }
        return {
            "version": SNAPSHOT_VERSION,
            "counters": counters,
            "gauges": dict(now["gauges"]),
            "histograms": histograms,
        }


def merge_snapshots(*snapshots: Optional[dict]) -> dict:
    """Fold snapshots into one; None entries are skipped.

    Counters and histogram bucket counts/sums add; gauges take the
    maximum so the merge is independent of worker completion order.
    Histograms with mismatched buckets raise :class:`MetricsError`.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0.0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = max(gauges.get(key, float("-inf")), value)
        for key, hist in snapshot.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if merged["buckets"] != list(hist["buckets"]):
                raise MetricsError(
                    f"cannot merge histogram {key!r}: bucket bounds differ"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], hist["counts"])
            ]
            merged["sum"] += hist["sum"]
            merged["count"] += hist["count"]
    return {
        "version": SNAPSHOT_VERSION,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


#: The process-wide registry instrumented code records into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (one per process, including workers)."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Replace the process-wide registry with a fresh one (tests, CLI)."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry()
    return _REGISTRY


@contextmanager
def isolated_registry() -> Iterator[MetricsRegistry]:
    """Swap in a fresh process-wide registry for the ``with`` block.

    Everything recorded inside the block lands in the yielded registry
    and nowhere else; the previous registry is restored afterwards even
    on error.  The resilience chunk executor wraps each chunk in this so
    a chunk's metrics exist in exactly one place — its result envelope —
    whether it ran in a pool worker or in-process, and a failed attempt's
    metrics are simply dropped with the discarded registry.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = MetricsRegistry()
    try:
        yield _REGISTRY
    finally:
        _REGISTRY = previous
