"""repro — Microarchitectural design space studies with regression models.

A from-scratch reproduction of Lee & Brooks, "Illustrative Design Space
Studies with Microarchitectural Regression Models" (HPCA 2007):

- :mod:`repro.designspace` — the Table 1 design space, UAR sampling, codecs
- :mod:`repro.workloads` — the nine-benchmark suite as synthetic traces
- :mod:`repro.simulator` — out-of-order superscalar timing model (Turandot's role)
- :mod:`repro.power` — CACTI/PowerTimer-style power models
- :mod:`repro.regression` — splines, interactions, transforms, OLS, diagnostics
- :mod:`repro.cluster` — K-means for the heterogeneity study
- :mod:`repro.metrics` — delay, watts, bips^3/w
- :mod:`repro.studies` — the pareto, pipeline-depth and heterogeneity studies
- :mod:`repro.harness` — campaigns, caching, scale presets, rendering
- :mod:`repro.analysis` — repo-specific static analysis (``repro analyze``)

Quick start::

    from repro.harness import get_scale
    from repro.studies import StudyContext, pareto

    ctx = StudyContext(scale=get_scale("ci"))
    for row in pareto.table2(ctx):
        print(row.benchmark, row.point, row.predicted_delay, row.predicted_watts)
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    analysis,
    cluster,
    designspace,
    harness,
    metrics,
    power,
    regression,
    simulator,
    studies,
    workloads,
)

__all__ = [
    "designspace",
    "workloads",
    "simulator",
    "power",
    "regression",
    "cluster",
    "metrics",
    "studies",
    "harness",
    "analysis",
    "__version__",
]
