"""First-order mechanistic (interval-style) performance model.

The opposite pole from the paper's statistical approach: instead of
*learning* the design space from sampled simulations, compute performance
from first principles in the spirit of interval analysis (Karkhanis &
Smith) — a balanced-machine base CPI plus independent stall contributions
from branch mispredicts and cache misses, with a memory-level-parallelism
correction.

The model consumes only *trace statistics* (from
:mod:`repro.workloads.characterize`) and the machine config — zero
training simulations — which makes it the natural "how far does pure
mechanism get you?" comparator for the regression models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..simulator.config import MachineConfig
from ..simulator.memory import BLOCKS_PER_KB, L2_DATA_SHARE, associativity_factor
from ..workloads.characterize import (
    branch_predictability,
    dataflow_ilp,
    miss_rate_curve,
)
from ..workloads.trace import NO_FETCH, OP_BRANCH, OP_LOAD, OP_STORE, Trace


@dataclass(frozen=True)
class TraceStatistics:
    """The sufficient statistics the interval model needs from a trace."""

    instructions: int
    load_fraction: float
    store_fraction: float
    branch_fraction: float
    gpr_writer_fraction: float        #: instructions allocating a GPR
    fetch_event_fraction: float
    mispredict_rate: float            #: per branch, last-outcome predictor
    ilp_curve: Dict[int, float]       #: window size -> dataflow ILP
    data_miss_curve: Dict[int, float]
    instr_miss_curve: Dict[int, float]

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceStatistics":
        """Measure the statistics once per trace."""
        from ..workloads.trace import GPR_WRITERS

        n = len(trace)
        ops = trace.op
        reuse = trace.instr_reuse[trace.instr_reuse != NO_FETCH]
        instr_curve = {
            int(c): float((reuse >= c).mean()) if reuse.size else 0.0
            for c in (64, 128, 256, 512, 1024, 2048)
        }
        return cls(
            instructions=n,
            load_fraction=float((ops == OP_LOAD).mean()),
            store_fraction=float((ops == OP_STORE).mean()),
            branch_fraction=float((ops == OP_BRANCH).mean()),
            gpr_writer_fraction=float(np.isin(ops, GPR_WRITERS).mean()),
            fetch_event_fraction=trace.fetch_events() / n,
            mispredict_rate=1.0 - branch_predictability(trace),
            ilp_curve={
                w: dataflow_ilp(trace, window=w)
                for w in (8, 16, 32, 64, 128, 256)
            },
            data_miss_curve=miss_rate_curve(
                trace, capacities=(48, 64, 96, 128, 192, 256, 384, 512, 768,
                                   1024, 1536, 2048, 4096, 8192, 16384, 32768)
            ),
            instr_miss_curve=instr_curve,
        )


def _interpolate_curve(curve: Dict[int, float], capacity: float) -> float:
    """Log-linear interpolation of a miss-rate curve at ``capacity``."""
    keys = sorted(curve)
    if capacity <= keys[0]:
        return curve[keys[0]]
    if capacity >= keys[-1]:
        return curve[keys[-1]]
    for low, high in zip(keys, keys[1:]):
        if low <= capacity <= high:
            span = np.log(high) - np.log(low)
            weight = (np.log(capacity) - np.log(low)) / span if span else 0.0
            return float(curve[low] * (1 - weight) + curve[high] * weight)
    return curve[keys[-1]]  # unreachable


class IntervalModel:
    """Predict bips for (statistics, config) pairs without simulation."""

    #: Effective memory-level parallelism overlapping memory misses.
    memory_level_parallelism = 3.0

    def __init__(self, statistics: TraceStatistics):
        self.statistics = statistics

    def cycles_per_instruction(self, config: MachineConfig) -> float:
        """First-order CPI decomposition."""
        stats = self.statistics

        # base: the machine sustains min(width, ILP within the effective
        # instruction window) per cycle; the window is bounded by the ROB
        # and by rename registers divided among the instructions that
        # allocate them
        window = min(
            config.rob_size,
            config.gpr_rename / max(stats.gpr_writer_fraction, 1e-6),
        )
        ilp = _interpolate_curve(stats.ilp_curve, window)
        base_rate = min(config.width, ilp)
        cpi = 1.0 / base_rate

        # branch mispredicts: front-end refill plus resolution latency
        penalty = config.frontend_stages + config.op_latency(OP_BRANCH) + 1
        cpi += stats.branch_fraction * stats.mispredict_rate * penalty

        # data cache misses (stack-distance effective capacities mirror the
        # simulator's memory model)
        dl1_eff = config.dl1_kb * BLOCKS_PER_KB * associativity_factor(config.dl1_assoc)
        l2_eff = (
            config.l2_mb * 1024 * BLOCKS_PER_KB
            * associativity_factor(config.l2_assoc) * L2_DATA_SHARE
        )
        miss_dl1 = _interpolate_curve(stats.data_miss_curve, dl1_eff)
        miss_l2 = _interpolate_curve(stats.data_miss_curve, l2_eff)
        mem_fraction = stats.load_fraction  # stores retire asynchronously
        l2_latency = config.l2_latency
        memory_latency = config.memory_latency / self.memory_level_parallelism
        cpi += mem_fraction * (miss_dl1 - miss_l2) * l2_latency
        cpi += mem_fraction * miss_l2 * (l2_latency + memory_latency)
        # L1 load-to-use latency partially exposed on dependent loads
        cpi += mem_fraction * 0.3 * (config.dl1_latency - 1)

        # instruction cache misses, charged per fetch event
        il1_eff = config.il1_kb * BLOCKS_PER_KB * associativity_factor(config.il1_assoc)
        instr_miss = _interpolate_curve(stats.instr_miss_curve, il1_eff)
        cpi += stats.fetch_event_fraction * instr_miss * config.l2_latency
        return cpi

    def predict_bips(self, config: MachineConfig) -> float:
        """Billions of instructions per second for one configuration."""
        return config.frequency_ghz / self.cycles_per_instruction(config)


def interval_model_for(trace: Trace) -> IntervalModel:
    """Convenience constructor from a trace."""
    return IntervalModel(TraceStatistics.from_trace(trace))
