"""Artificial neural network baseline (Ipek et al. [5]).

The paper's related work contrasts its regression models with ANNs
"trained by gradient descent and predicted by nested weighted sums",
arguing regression needs more statistical analysis but is computationally
cheaper.  To reproduce that comparison we implement the comparator from
scratch: a single-hidden-layer perceptron on normalized inputs, trained by
full-batch gradient descent with momentum and early stopping on a held-out
fraction — the configuration of the original study.

API mirrors the regression side: :func:`fit_ann` consumes the same column
mapping ``fit_ols`` does (including the response transform) and returns a
:class:`FittedANN` with ``predict``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..regression.transforms import IdentityTransform, ResponseTransform


class ANNError(ValueError):
    """Raised for malformed network configuration or data."""


@dataclass(frozen=True)
class ANNConfig:
    """Training hyperparameters."""

    hidden_units: int = 16
    learning_rate: float = 0.1
    momentum: float = 0.6
    epochs: int = 3000
    validation_fraction: float = 0.2
    patience: int = 200          #: early-stopping patience in epochs
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_units < 1:
            raise ANNError("hidden_units must be >= 1")
        if not 0 < self.learning_rate:
            raise ANNError("learning_rate must be positive")
        if not 0 <= self.momentum < 1:
            raise ANNError("momentum must be in [0, 1)")
        if self.epochs < 1:
            raise ANNError("epochs must be >= 1")
        if not 0 <= self.validation_fraction < 0.9:
            raise ANNError("validation_fraction must be in [0, 0.9)")


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


@dataclass
class FittedANN:
    """A trained network plus the input/output scalings it expects."""

    feature_names: Tuple[str, ...]
    transform: ResponseTransform
    response: str
    w_hidden: np.ndarray    # (d, h)
    b_hidden: np.ndarray    # (h,)
    w_out: np.ndarray       # (h,)
    b_out: float
    x_low: np.ndarray
    x_span: np.ndarray
    z_mean: float
    z_scale: float
    train_epochs: int = 0
    train_loss: float = float("nan")
    loss_history: List[float] = field(default_factory=list)

    def _design(self, data: Mapping[str, np.ndarray]) -> np.ndarray:
        try:
            columns = [
                np.asarray(data[name], dtype=float) for name in self.feature_names
            ]
        except KeyError as error:
            raise ANNError(f"missing predictor {error}") from None
        X = np.column_stack(columns)
        return (X - self.x_low) / self.x_span

    def predict_transformed(self, data: Mapping[str, np.ndarray]) -> np.ndarray:
        X = self._design(data)
        hidden = _sigmoid(X @ self.w_hidden + self.b_hidden)
        return (hidden @ self.w_out + self.b_out) * self.z_scale + self.z_mean

    def predict(self, data: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.transform.inverse(self.predict_transformed(data))


def fit_ann(
    data: Mapping[str, np.ndarray],
    response: str,
    feature_names: Sequence[str],
    transform: Optional[ResponseTransform] = None,
    config: Optional[ANNConfig] = None,
) -> FittedANN:
    """Train the MLP on ``data``; interface parallel to ``fit_ols``."""
    config = config or ANNConfig()
    transform = transform or IdentityTransform()
    feature_names = tuple(feature_names)
    if not feature_names:
        raise ANNError("need at least one predictor")
    if response not in data:
        raise ANNError(f"response {response!r} missing from data")

    X_raw = np.column_stack(
        [np.asarray(data[name], dtype=float) for name in feature_names]
    )
    z = transform.forward(np.asarray(data[response], dtype=float))
    n, d = X_raw.shape
    if n < 10:
        raise ANNError(f"need at least 10 observations, got {n}")

    # input normalization to [0, 1]; output standardization
    x_low = X_raw.min(axis=0)
    spans = np.ptp(X_raw, axis=0)
    x_span = np.where(spans > 0, spans, 1.0)
    X = (X_raw - x_low) / x_span
    z_mean = float(z.mean())
    z_scale = float(z.std()) or 1.0
    target = (z - z_mean) / z_scale

    rng = np.random.default_rng(config.seed)
    order = rng.permutation(n)
    n_val = int(n * config.validation_fraction)
    val_idx, train_idx = order[:n_val], order[n_val:]
    X_train, t_train = X[train_idx], target[train_idx]
    X_val, t_val = X[val_idx], target[val_idx]

    h = config.hidden_units
    if d < 1 or h < 1:
        raise ANNError(f"need >= 1 input and hidden unit, got d={d}, h={h}")
    w_hidden = rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, h))
    b_hidden = np.zeros(h)
    w_out = rng.normal(0.0, 1.0 / np.sqrt(h), size=h)
    b_out = 0.0
    velocity = [np.zeros_like(w_hidden), np.zeros_like(b_hidden),
                np.zeros_like(w_out), 0.0]

    best = None
    best_val = np.inf
    stale = 0
    loss_history: List[float] = []
    m = len(train_idx)
    if m == 0:
        raise ANNError("validation split left no training rows")
    lr = config.learning_rate
    mu = config.momentum

    for epoch in range(1, config.epochs + 1):
        hidden = _sigmoid(X_train @ w_hidden + b_hidden)
        output = hidden @ w_out + b_out
        error = output - t_train
        loss = float((error @ error) / m)
        loss_history.append(loss)

        # backprop (mean squared error)
        grad_out = 2.0 * error / m                    # (m,)
        g_w_out = hidden.T @ grad_out                 # (h,)
        g_b_out = float(grad_out.sum())
        delta_hidden = np.outer(grad_out, w_out) * hidden * (1 - hidden)
        g_w_hidden = X_train.T @ delta_hidden         # (d, h)
        g_b_hidden = delta_hidden.sum(axis=0)

        velocity[0] = mu * velocity[0] - lr * g_w_hidden
        velocity[1] = mu * velocity[1] - lr * g_b_hidden
        velocity[2] = mu * velocity[2] - lr * g_w_out
        velocity[3] = mu * velocity[3] - lr * g_b_out
        w_hidden = w_hidden + velocity[0]
        b_hidden = b_hidden + velocity[1]
        w_out = w_out + velocity[2]
        b_out = b_out + velocity[3]

        # early stopping on the held-out fraction
        if n_val:
            val_hidden = _sigmoid(X_val @ w_hidden + b_hidden)
            val_error = val_hidden @ w_out + b_out - t_val
            val_loss = float((val_error @ val_error) / max(n_val, 1))
            if val_loss < best_val - 1e-9:
                best_val = val_loss
                best = (w_hidden.copy(), b_hidden.copy(), w_out.copy(), b_out, epoch)
                stale = 0
            else:
                stale += 1
                if stale >= config.patience:
                    break

    if best is not None:
        w_hidden, b_hidden, w_out, b_out, epoch = best

    return FittedANN(
        feature_names=feature_names,
        transform=transform,
        response=response,
        w_hidden=w_hidden,
        b_hidden=b_hidden,
        w_out=w_out,
        b_out=float(b_out),
        x_low=x_low,
        x_span=x_span,
        z_mean=z_mean,
        z_scale=z_scale,
        train_epochs=epoch,
        train_loss=loss_history[-1] if loss_history else float("nan"),
        loss_history=loss_history,
    )
