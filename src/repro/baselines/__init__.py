"""Comparator methods from the paper's related work."""

from .ann import ANNConfig, ANNError, FittedANN, fit_ann
from .interval import IntervalModel, TraceStatistics, interval_model_for

__all__ = [
    "fit_ann",
    "FittedANN",
    "ANNConfig",
    "ANNError",
    "IntervalModel",
    "TraceStatistics",
    "interval_model_for",
]
