"""The paper's model specifications (Sections 3.2-3.3).

Two specs — performance (bips, sqrt response) and power (watts, log
response) — over the seven Table 1 predictors.  Knot counts follow the
paper's rule: predictors with stronger response relationships (pipeline
depth, register file size) get 4 knots, weaker ones (cache sizes,
reservation stations) get 3.  Interactions come from the domain analysis
of Section 3.2:

- depth x cache sizes (memory stalls constrain pipelining gains),
- width x register file and width x queue sizes,
- adjacent cache levels (L1 x L2).

Predictor columns are the design-space encodings: geometric parameters
(width, cache sizes) arrive log2-scaled from
:class:`~repro.designspace.DesignEncoder`.
"""

from __future__ import annotations

from typing import Tuple

from .formula import ModelSpec
from .terms import InteractionTerm, SplineTerm, Term
from .transforms import LogTransform, SqrtTransform

#: Predictor names in design-space order (matching Table 1 groups).
PREDICTORS: Tuple[str, ...] = (
    "depth",
    "width",
    "gpr_phys",
    "br_resv",
    "il1_kb",
    "dl1_kb",
    "l2_mb",
)


def paper_terms() -> Tuple[Term, ...]:
    """Main effects + the paper's domain-specified interactions."""
    return (
        # main effects — 4 knots for the strong predictors, 3 for the rest
        SplineTerm("depth", knots=4),
        SplineTerm("width", knots=3),
        SplineTerm("gpr_phys", knots=4),
        SplineTerm("br_resv", knots=3),
        SplineTerm("il1_kb", knots=3),
        SplineTerm("dl1_kb", knots=3),
        SplineTerm("l2_mb", knots=3),
        # depth interacts with the memory hierarchy (Section 3.2)
        InteractionTerm("depth", "dl1_kb"),
        InteractionTerm("depth", "l2_mb"),
        # width interacts with window resources
        InteractionTerm("width", "gpr_phys"),
        InteractionTerm("width", "br_resv"),
        # adjacent cache levels interact
        InteractionTerm("il1_kb", "l2_mb"),
        InteractionTerm("dl1_kb", "l2_mb"),
    )


def performance_spec() -> ModelSpec:
    """The paper's performance model: sqrt(bips) on splines+interactions."""
    return ModelSpec(
        response="bips",
        terms=paper_terms(),
        transform=SqrtTransform(),
        name="performance",
    )


def power_spec() -> ModelSpec:
    """The paper's power model: log(watts) on splines+interactions."""
    return ModelSpec(
        response="watts",
        terms=paper_terms(),
        transform=LogTransform(),
        name="power",
    )


#: Extra predictors of the extended (future-work) space, Section 8.
EXTENDED_PREDICTORS: Tuple[str, ...] = PREDICTORS + ("dl1_assoc", "in_order")


def extended_terms() -> Tuple[Term, ...]:
    """Paper terms + cache associativity and issue-discipline effects.

    Associativity enters log2-encoded with 3 knots (it modulates effective
    cache capacity, a weak-predictor per the Section 3.3 rule) and
    interacts with d-L1 size; the in-order flag is binary, entering
    linearly and interacting with width (in-order machines cannot convert
    width into ILP as effectively).
    """
    from .terms import LinearTerm

    return paper_terms() + (
        SplineTerm("dl1_assoc", knots=3),
        LinearTerm("in_order"),
        InteractionTerm("dl1_assoc", "dl1_kb"),
        InteractionTerm("in_order", "width"),
        InteractionTerm("in_order", "gpr_phys"),
    )


def extended_performance_spec() -> ModelSpec:
    """Performance model over the extended design space."""
    return ModelSpec(
        response="bips",
        terms=extended_terms(),
        transform=SqrtTransform(),
        name="performance-extended",
    )


def extended_power_spec() -> ModelSpec:
    """Power model over the extended design space."""
    return ModelSpec(
        response="watts",
        terms=extended_terms(),
        transform=LogTransform(),
        name="power-extended",
    )


def main_effects_only_terms() -> Tuple[Term, ...]:
    """Ablation: the paper's splines without any interactions."""
    return tuple(term for term in paper_terms() if isinstance(term, SplineTerm))


def linear_terms() -> Tuple[Term, ...]:
    """Ablation: plain linear main effects (no splines, no interactions)."""
    from .terms import LinearTerm

    return tuple(LinearTerm(name) for name in PREDICTORS)
