"""Prediction-error assessment.

Figure 1 (and Figure 4 for pareto points) reports boxplots of
``|obs - pred| / pred`` over validation designs.  This module computes
those error distributions and the boxplot statistics the paper describes
in Section 3.4 (median/quartile lines, 1.5-IQR whiskers, outlier points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from .fit import FittedModel


class ValidationError(ValueError):
    """Raised for empty or mismatched validation inputs."""


def prediction_errors(observed: np.ndarray, predicted: np.ndarray) -> np.ndarray:
    """The paper's error measure: ``|obs - pred| / pred``."""
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if observed.shape != predicted.shape:
        raise ValidationError(
            f"shape mismatch: observed {observed.shape} vs predicted {predicted.shape}"
        )
    if observed.size == 0:
        raise ValidationError("no validation points")
    if (predicted == 0).any():
        raise ValidationError("zero predictions make relative error undefined")
    return np.abs(observed - predicted) / np.abs(predicted)


@dataclass(frozen=True)
class BoxplotStats:
    """The five-number boxplot summary of Section 3.4."""

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    """Boxplot statistics per the paper's construction.

    Whiskers extend to the most extreme data point within 1.5 IQR of the
    nearer quartile; points beyond are outliers.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValidationError("cannot summarize an empty sample")
    q1, median, q3 = np.percentile(array, (25, 50, 75))
    iqr = q3 - q1
    low_bound = q1 - 1.5 * iqr
    high_bound = q3 + 1.5 * iqr
    inside = array[(array >= low_bound) & (array <= high_bound)]
    whisker_low = float(inside.min()) if inside.size else float(median)
    whisker_high = float(inside.max()) if inside.size else float(median)
    outliers = tuple(
        float(v) for v in np.sort(array[(array < low_bound) | (array > high_bound)])
    )
    return BoxplotStats(
        median=float(median),
        q1=float(q1),
        q3=float(q3),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        n=int(array.size),
    )


@dataclass(frozen=True)
class ErrorSummary:
    """Error distribution of one model on one validation set."""

    benchmark: str
    metric: str
    errors: np.ndarray
    stats: BoxplotStats

    @property
    def median_percent(self) -> float:
        return 100.0 * self.stats.median


def validate_model(
    model: FittedModel,
    data: Mapping[str, np.ndarray],
    benchmark: str = "",
) -> ErrorSummary:
    """Error summary of ``model`` against observed responses in ``data``."""
    observed = np.asarray(data[model.spec.response], dtype=float)
    predicted = model.predict(data)
    errors = prediction_errors(observed, predicted)
    return ErrorSummary(
        benchmark=benchmark,
        metric=model.spec.response,
        errors=errors,
        stats=boxplot_stats(errors),
    )


def overall_median(summaries: Sequence[ErrorSummary]) -> float:
    """Median error pooled across benchmarks (the paper's 'overall median')."""
    if not summaries:
        raise ValidationError("no summaries to pool")
    pooled = np.concatenate([s.errors for s in summaries])
    return float(np.median(pooled))


def error_table(summaries: Sequence[ErrorSummary]) -> Dict[str, float]:
    """Per-benchmark median error (percent), plus the pooled median."""
    table = {s.benchmark: s.median_percent for s in summaries}
    table["overall"] = 100.0 * overall_median(summaries)
    return table
