"""Statistical inference on fitted models.

The paper's model derivation used significance testing (Section 3); this
module provides the standard OLS machinery: per-coefficient t-tests, the
overall F-test, and nested-model F-tests (used to check whether e.g. an
interaction block earns its keep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
from scipy import stats as scipy_stats

from .fit import FitError, FittedModel


@dataclass(frozen=True)
class CoefficientTest:
    """One row of the coefficient significance table."""

    name: str
    estimate: float
    std_error: float
    t_statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def coefficient_tests(model: FittedModel) -> List[CoefficientTest]:
    """t-test of each coefficient against zero."""
    dof = model.degrees_of_freedom
    if dof <= 0:
        raise FitError("no residual degrees of freedom for inference")
    errors = model.standard_errors()
    names = ("(intercept)",) + model.column_names
    rows = []
    for name, estimate, se in zip(names, model.coefficients, errors):
        if se > 0:
            t = float(estimate / se)
            p = 2.0 * float(scipy_stats.t.sf(abs(t), dof))
        else:
            t, p = float("nan"), float("nan")
        rows.append(
            CoefficientTest(
                name=name,
                estimate=float(estimate),
                std_error=float(se),
                t_statistic=t,
                p_value=p,
            )
        )
    return rows


@dataclass(frozen=True)
class FTest:
    statistic: float
    df_numerator: int
    df_denominator: int
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def overall_f_test(model: FittedModel) -> FTest:
    """F-test of the whole model against the intercept-only model."""
    dof = model.degrees_of_freedom
    p = model.n_parameters - 1  # slope parameters
    if dof <= 0 or p <= 0:
        raise FitError("degenerate model for F-test")
    r2 = model.r_squared
    if r2 >= 1.0:
        return FTest(float("inf"), p, dof, 0.0)
    f = (r2 / p) / ((1.0 - r2) / dof)
    return FTest(
        statistic=float(f),
        df_numerator=p,
        df_denominator=dof,
        p_value=float(scipy_stats.f.sf(f, p, dof)),
    )


def nested_f_test(full: FittedModel, reduced: FittedModel) -> FTest:
    """F-test comparing a full model against a nested reduced model.

    Both models must be fit to the same observations (same n and the same
    transformed response); the reduced model must have fewer parameters.
    """
    if full.n_observations != reduced.n_observations:
        raise FitError("nested models must share the training sample")
    extra = full.n_parameters - reduced.n_parameters
    if extra <= 0:
        raise FitError("the full model must have more parameters")
    dof = full.degrees_of_freedom
    if dof <= 0:
        raise FitError("no residual degrees of freedom for inference")
    rss_full = full.residual_variance * full.degrees_of_freedom
    rss_reduced = reduced.residual_variance * reduced.degrees_of_freedom
    if rss_full <= 0:
        return FTest(float("inf"), extra, dof, 0.0)
    f = ((rss_reduced - rss_full) / extra) / (rss_full / dof)
    f = max(f, 0.0)
    return FTest(
        statistic=float(f),
        df_numerator=extra,
        df_denominator=dof,
        p_value=float(scipy_stats.f.sf(f, extra, dof)),
    )


def confidence_intervals(
    model: FittedModel, level: float = 0.95
) -> Dict[str, tuple]:
    """Two-sided confidence intervals for every coefficient."""
    if not 0 < level < 1:
        raise FitError(f"confidence level must be in (0, 1), got {level}")
    dof = model.degrees_of_freedom
    critical = float(scipy_stats.t.ppf(0.5 + level / 2.0, dof))
    errors = model.standard_errors()
    names = ("(intercept)",) + model.column_names
    return {
        name: (float(b - critical * se), float(b + critical * se))
        for name, b, se in zip(names, model.coefficients, errors)
    }
