"""Model terms.

A model specification is a list of terms; each term expands one or two
predictors into design-matrix columns.  Terms are declared unbound
(:class:`LinearTerm`, :class:`SplineTerm`, :class:`InteractionTerm`) and
bound to a training sample with :meth:`Term.bind`, which freezes
data-dependent state — spline knot positions — so that predictions use the
training-time basis (Section 3.3's quantile knots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from .splines import SplineError, quantile_knots, rcs_basis, rcs_column_names

Columns = Mapping[str, np.ndarray]


class TermError(ValueError):
    """Raised for malformed terms or missing predictors."""


def _column(data: Columns, name: str) -> np.ndarray:
    try:
        return np.asarray(data[name], dtype=float)
    except KeyError:
        raise TermError(
            f"predictor {name!r} missing from data; available: {sorted(data)}"
        ) from None


class BoundTerm:
    """A term with frozen training state; produces design columns."""

    #: names of the produced columns, set at bind time
    column_names: Tuple[str, ...] = ()

    @property
    def predictors(self) -> Tuple[str, ...]:
        """Predictor names the columns depend on (for gather fast paths)."""
        raise NotImplementedError

    def design_columns(self, data: Columns) -> np.ndarray:
        raise NotImplementedError


class Term:
    """Unbound term: declares structure, binds to training data."""

    def bind(self, data: Columns) -> BoundTerm:
        raise NotImplementedError

    @property
    def predictors(self) -> Tuple[str, ...]:
        raise NotImplementedError


# -- linear -------------------------------------------------------------------


@dataclass(frozen=True)
class LinearTerm(Term):
    """A single linear column for one predictor."""

    name: str

    @property
    def predictors(self) -> Tuple[str, ...]:
        return (self.name,)

    def bind(self, data: Columns) -> BoundTerm:
        _column(data, self.name)  # validates presence
        return _BoundLinear(self.name)


class _BoundLinear(BoundTerm):
    def __init__(self, name: str):
        self.name = name
        self.column_names = (name,)

    @property
    def predictors(self) -> Tuple[str, ...]:
        return (self.name,)

    def design_columns(self, data: Columns) -> np.ndarray:
        return _column(data, self.name)[:, None]


# -- splines ------------------------------------------------------------------


@dataclass(frozen=True)
class SplineTerm(Term):
    """Restricted cubic spline on one predictor.

    Falls back to a linear column when the training sample has too few
    distinct values to support 3 knots (e.g. a pinned parameter in a
    constrained study).
    """

    name: str
    knots: int = 4

    def __post_init__(self) -> None:
        if self.knots < 3:
            raise TermError(
                f"spline on {self.name!r} needs >= 3 knots, got {self.knots}"
            )

    @property
    def predictors(self) -> Tuple[str, ...]:
        return (self.name,)

    def bind(self, data: Columns) -> BoundTerm:
        x = _column(data, self.name)
        knots = quantile_knots(x, self.knots)
        if knots.size < 3:
            return _BoundLinear(self.name)
        return _BoundSpline(self.name, knots)


class _BoundSpline(BoundTerm):
    def __init__(self, name: str, knots: np.ndarray):
        self.name = name
        self.knots = knots
        self.column_names = rcs_column_names(name, knots.size)

    @property
    def predictors(self) -> Tuple[str, ...]:
        return (self.name,)

    def design_columns(self, data: Columns) -> np.ndarray:
        return rcs_basis(_column(data, self.name), self.knots)


# -- interactions --------------------------------------------------------------


@dataclass(frozen=True)
class InteractionTerm(Term):
    """Product interaction between two predictors (Section 3.2).

    ``order="linear"`` (the default) adds the single product column
    ``a*b``; ``order="spline"`` crosses the full restricted-cubic basis of
    ``a`` with the linear column of ``b`` (Harrell's restricted
    interaction), capturing non-linear effects whose shape depends on the
    second predictor.
    """

    a: str
    b: str
    order: str = "linear"
    knots: int = 3

    def __post_init__(self) -> None:
        if self.order not in ("linear", "spline"):
            raise TermError(f"unknown interaction order {self.order!r}")
        if self.a == self.b:
            raise TermError(f"interaction of {self.a!r} with itself")

    @property
    def predictors(self) -> Tuple[str, ...]:
        return (self.a, self.b)

    def bind(self, data: Columns) -> BoundTerm:
        _column(data, self.a)
        _column(data, self.b)
        if self.order == "linear":
            return _BoundLinearInteraction(self.a, self.b)
        knots = quantile_knots(_column(data, self.a), self.knots)
        if knots.size < 3:
            return _BoundLinearInteraction(self.a, self.b)
        return _BoundSplineInteraction(self.a, self.b, knots)


class _BoundLinearInteraction(BoundTerm):
    def __init__(self, a: str, b: str):
        self.a, self.b = a, b
        self.column_names = (f"{a}*{b}",)

    @property
    def predictors(self) -> Tuple[str, ...]:
        return (self.a, self.b)

    def design_columns(self, data: Columns) -> np.ndarray:
        return (_column(data, self.a) * _column(data, self.b))[:, None]


class _BoundSplineInteraction(BoundTerm):
    def __init__(self, a: str, b: str, knots: np.ndarray):
        self.a, self.b = a, b
        self.knots = knots
        base_names = rcs_column_names(a, knots.size)
        self.column_names = tuple(f"{name}*{b}" for name in base_names)

    @property
    def predictors(self) -> Tuple[str, ...]:
        return (self.a, self.b)

    def design_columns(self, data: Columns) -> np.ndarray:
        basis = rcs_basis(_column(data, self.a), self.knots)
        return basis * _column(data, self.b)[:, None]


def bind_terms(
    terms: Sequence[Term], data: Columns
) -> Tuple[Tuple[BoundTerm, ...], Tuple[str, ...]]:
    """Bind all terms to training data; returns bound terms + column names."""
    bound = tuple(term.bind(data) for term in terms)
    names: list = []
    for term in bound:
        names.extend(term.column_names)
    if len(set(names)) != len(names):
        raise TermError(f"duplicate design columns: {names}")
    return bound, tuple(names)


def design_matrix(bound: Sequence[BoundTerm], data: Columns) -> np.ndarray:
    """Stack all bound terms' columns, prefixed with an intercept column."""
    blocks = [term.design_columns(data) for term in bound]
    if not blocks:
        raise TermError("a model needs at least one term")
    n = blocks[0].shape[0]
    return np.hstack([np.ones((n, 1))] + blocks)
