"""Predictor importance by variance decomposition.

Which design parameters drive performance and power for a given workload?
The paper's companion derivation ranked predictors by association strength
to assign spline knots (Section 3.3); this module quantifies importance on
the *fitted* model with the standard drop-one construction: refit the
model without all terms touching a predictor and record the R^2 loss
(partial R^2).  Interactions are charged to both of their predictors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from .fit import FitError, fit_ols
from .formula import ModelSpec


@dataclass(frozen=True)
class PredictorImportance:
    """Importance of every predictor of one model on one dataset."""

    response: str
    full_r_squared: float
    partial_r_squared: Dict[str, float]

    def ranked(self) -> List[str]:
        """Predictors from most to least important."""
        return sorted(
            self.partial_r_squared,
            key=lambda name: -self.partial_r_squared[name],
        )

    def shares(self) -> Dict[str, float]:
        """Importance normalized to sum to 1 (degenerate: uniform)."""
        if not self.partial_r_squared:
            return {}
        total = sum(max(v, 0.0) for v in self.partial_r_squared.values())
        if total <= 0:
            n = len(self.partial_r_squared)
            return {name: 1.0 / n for name in self.partial_r_squared}
        return {
            name: max(value, 0.0) / total
            for name, value in self.partial_r_squared.items()
        }


def predictor_importance(
    spec: ModelSpec, data: Mapping[str, np.ndarray]
) -> PredictorImportance:
    """Drop-one partial R^2 for every predictor referenced by ``spec``."""
    full = fit_ols(spec, data)
    partial: Dict[str, float] = {}
    for predictor in spec.predictors:
        remaining = tuple(
            term for term in spec.terms if predictor not in term.predictors
        )
        if not remaining:
            raise FitError(
                f"cannot drop {predictor!r}: no terms would remain"
            )
        reduced_spec = spec.with_terms(remaining, name=f"drop-{predictor}")
        reduced = fit_ols(reduced_spec, data)
        partial[predictor] = full.r_squared - reduced.r_squared
    return PredictorImportance(
        response=spec.response,
        full_r_squared=full.r_squared,
        partial_r_squared=partial,
    )
