"""Restricted cubic splines (Harrell parameterization).

Section 3.3 models predictor non-linearity with restricted cubic splines:
piecewise cubic polynomials joined at *knots*, constrained to be linear
beyond the boundary knots (which tames the wild tail behaviour of plain
polynomials).  A spline with ``k`` knots contributes ``k-1`` regression
columns: the predictor itself plus ``k-2`` non-linear basis terms.

Knots are placed at fixed quantiles of the predictor's training
distribution (Stone [22]); predictors strongly correlated with the
response get 4 knots, weaker ones 3 (Section 3.3).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class SplineError(ValueError):
    """Raised for degenerate knot specifications."""


#: Harrell's default knot quantiles by knot count.
HARRELL_QUANTILES = {
    3: (0.10, 0.50, 0.90),
    4: (0.05, 0.35, 0.65, 0.95),
    5: (0.05, 0.275, 0.50, 0.725, 0.95),
    6: (0.05, 0.23, 0.41, 0.59, 0.77, 0.95),
    7: (0.025, 0.1833, 0.3417, 0.50, 0.6583, 0.8167, 0.975),
}


def quantile_knots(x: np.ndarray, n_knots: int) -> np.ndarray:
    """Knot positions at Harrell's default quantiles of ``x``.

    Discrete microarchitectural predictors have few distinct levels; when
    quantiles collide the knots are thinned to the distinct values.  The
    caller should check the returned length: fewer than 3 knots means "use
    a linear term".
    """
    if n_knots not in HARRELL_QUANTILES:
        raise SplineError(
            f"unsupported knot count {n_knots}; supported: "
            f"{sorted(HARRELL_QUANTILES)}"
        )
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise SplineError("cannot place knots on an empty sample")
    knots = np.quantile(x, HARRELL_QUANTILES[n_knots])
    knots = np.unique(knots)
    unique_values = np.unique(x)
    if knots.size < 3 <= unique_values.size:
        # Quantiles collapsed (heavily discrete predictor): spread knots
        # over the distinct values instead.
        indices = np.linspace(
            0, unique_values.size - 1, min(n_knots, unique_values.size)
        )
        knots = np.unique(unique_values[np.round(indices).astype(int)])
    return knots


def rcs_basis(x: np.ndarray, knots: Sequence[float]) -> np.ndarray:
    """Restricted cubic spline design columns for ``x``.

    Returns an (n, k-1) matrix: column 0 is ``x`` itself, columns 1..k-2
    are the non-linear restricted terms

    ``[(x-t_j)+^3 - (x-t_{k-1})+^3 (t_k-t_j)/(t_k-t_{k-1})
       + (x-t_k)+^3 (t_{k-1}-t_j)/(t_k-t_{k-1})] / (t_k-t_1)^2``

    which are linear for ``x`` beyond the boundary knots.
    """
    x = np.asarray(x, dtype=float)
    knots = np.asarray(knots, dtype=float)
    if knots.size < 3:
        raise SplineError(
            f"restricted cubic splines need >= 3 knots, got {knots.size}"
        )
    if (np.diff(knots) <= 0).any():
        raise SplineError(f"knots must be strictly increasing, got {knots}")
    k = knots.size
    t_first, t_last, t_penult = knots[0], knots[-1], knots[-2]
    scale = (t_last - t_first) ** 2

    def plus_cubed(values: np.ndarray, knot: float) -> np.ndarray:
        shifted = values - knot
        return np.where(shifted > 0, shifted**3, 0.0)

    columns = [x]
    tail = plus_cubed(x, t_last)
    penult = plus_cubed(x, t_penult)
    denom = t_last - t_penult
    for j in range(k - 2):
        t_j = knots[j]
        basis = (
            plus_cubed(x, t_j)
            - penult * (t_last - t_j) / denom
            + tail * (t_penult - t_j) / denom
        ) / scale
        columns.append(basis)
    return np.column_stack(columns)


def rcs_column_names(name: str, n_knots: int) -> Tuple[str, ...]:
    """Column labels for the basis of a ``n_knots``-knot spline on ``name``."""
    return (name,) + tuple(name + "'" * (j + 1) for j in range(n_knots - 2))
