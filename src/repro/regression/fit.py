"""Ordinary least squares fitting.

The paper fits Equation (1) by the method of least squares; we solve the
normal equations with a numerically stable SVD-based ``lstsq``.  The
returned :class:`FittedModel` carries everything later stages need:
prediction on the original metric scale, coefficient tables for
significance testing, and residual/goodness-of-fit summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple  # noqa: F401 (Tuple used in signatures)

import numpy as np

from .formula import ModelSpec
from .terms import BoundTerm, Columns, TermError, bind_terms, design_matrix


class FitError(ValueError):
    """Raised for unusable training data."""


@dataclass
class FittedModel:
    """A trained regression model.

    Predictions run the linear system forward and invert the response
    transform; ``predict_transformed`` exposes the transformed scale for
    diagnostics.
    """

    spec: ModelSpec
    bound_terms: Tuple[BoundTerm, ...]
    column_names: Tuple[str, ...]  # excludes the intercept
    coefficients: np.ndarray       # includes the intercept at index 0
    n_observations: int
    residual_variance: float
    xtx_inverse: np.ndarray
    r_squared: float

    @property
    def n_parameters(self) -> int:
        return self.coefficients.size

    @property
    def degrees_of_freedom(self) -> int:
        return self.n_observations - self.n_parameters

    @property
    def adjusted_r_squared(self) -> float:
        if self.degrees_of_freedom <= 0:
            return float("nan")
        n, p = self.n_observations, self.n_parameters
        return 1.0 - (1.0 - self.r_squared) * (n - 1) / (n - p)

    def design_matrix(self, data: Columns) -> np.ndarray:
        """Design matrix of ``data`` under this model's bound terms."""
        return design_matrix(self.bound_terms, data)

    def predict_transformed(self, data: Columns) -> np.ndarray:
        """Predictions on the transformed (fitting) scale."""
        return self.design_matrix(data) @ self.coefficients

    def predict(self, data: Columns) -> np.ndarray:
        """Predictions on the original metric scale."""
        return self.spec.transform.inverse(self.predict_transformed(data))

    def coefficient_table(self) -> Dict[str, float]:
        """Coefficients keyed by column name (intercept first)."""
        names = ("(intercept)",) + self.column_names
        return dict(zip(names, self.coefficients.tolist()))

    def standard_errors(self) -> np.ndarray:
        """Standard error of each coefficient."""
        diag = np.maximum(np.diag(self.xtx_inverse), 0.0)
        return np.sqrt(diag * self.residual_variance)

    def prediction_interval(
        self, data: Columns, level: float = 0.95
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Two-sided prediction interval on the original metric scale.

        Computed on the transformed scale — mean response variance
        ``x (X'X)^-1 x' sigma^2`` plus the residual variance — then mapped
        back through the inverse transform.  Because sqrt/log are
        monotone, the transformed-scale interval endpoints map to valid
        original-scale endpoints.
        """
        if not 0 < level < 1:
            raise FitError(f"level must be in (0, 1), got {level}")
        from scipy import stats as scipy_stats

        X = self.design_matrix(data)
        mean = X @ self.coefficients
        leverage = np.einsum("ij,jk,ik->i", X, self.xtx_inverse, X)
        spread = np.sqrt(
            np.maximum(self.residual_variance * (1.0 + leverage), 0.0)
        )
        critical = float(
            scipy_stats.t.ppf(0.5 + level / 2.0, self.degrees_of_freedom)
        )
        transform = self.spec.transform
        # The sqrt inverse squares its argument, which would fold a
        # negative transformed lower bound back upward; clamp at the
        # transform's domain floor (0 for sqrt) before inverting.
        floor = 0.0 if transform.name == "sqrt" else -np.inf
        low_z = np.maximum(mean - critical * spread, floor)
        high = transform.inverse(mean + critical * spread)
        low = transform.inverse(low_z)
        return low, high


def fit_ols(spec: ModelSpec, data: Mapping[str, np.ndarray]) -> FittedModel:
    """Fit ``spec`` to training ``data`` (columns keyed by name).

    ``data`` must contain the response column and every predictor the
    spec's terms reference.
    """
    if spec.response not in data:
        raise FitError(
            f"response {spec.response!r} missing from data; "
            f"available: {sorted(data)}"
        )
    y_raw = np.asarray(data[spec.response], dtype=float)
    if y_raw.ndim != 1:
        raise FitError("response must be one-dimensional")
    n = y_raw.size

    bound, names = bind_terms(spec.terms, data)
    X = design_matrix(bound, data)
    if X.shape[0] != n:
        raise FitError(
            f"design matrix has {X.shape[0]} rows for {n} responses"
        )
    p = X.shape[1]
    if n <= p:
        raise FitError(
            f"need more observations ({n}) than parameters ({p}); "
            "increase the sample or simplify the model"
        )

    z = spec.transform.forward(y_raw)
    beta, _, rank, _ = np.linalg.lstsq(X, z, rcond=None)
    residuals = z - X @ beta
    dof = n - p
    sigma2 = float(residuals @ residuals) / dof if dof > 0 else float("nan")
    total = float(((z - z.mean()) ** 2).sum())
    r_squared = 1.0 - float(residuals @ residuals) / total if total > 0 else 1.0

    # (X'X)^-1 via pseudo-inverse: tolerant of the rank deficiency that
    # constrained studies (pinned parameters) can produce.
    xtx_inverse = np.linalg.pinv(X.T @ X)

    return FittedModel(
        spec=spec,
        bound_terms=bound,
        column_names=names,
        coefficients=beta,
        n_observations=n,
        residual_variance=sigma2,
        xtx_inverse=xtx_inverse,
        r_squared=r_squared,
    )
