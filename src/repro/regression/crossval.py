"""Cross-validation.

The paper validates on a held-out random sample (Figure 1); k-fold
cross-validation is the standard complement when simulations are too
precious to hold out — every observation serves in both roles.  Used by
the sample-size ablation and available for model selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from .fit import FitError, fit_ols
from .formula import ModelSpec
from .validation import boxplot_stats, prediction_errors


@dataclass
class CrossValidationResult:
    """Per-fold and pooled error summary."""

    spec_name: str
    folds: int
    fold_medians: List[float]
    errors: np.ndarray  # pooled out-of-fold relative errors

    @property
    def median(self) -> float:
        return float(np.median(self.errors))

    @property
    def median_percent(self) -> float:
        return 100.0 * self.median

    def stats(self):
        return boxplot_stats(self.errors)


def _fold_indices(n: int, folds: int, seed: Optional[int]) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    return [order[i::folds] for i in range(folds)]


def cross_validate(
    spec: ModelSpec,
    data: Mapping[str, np.ndarray],
    folds: int = 5,
    seed: Optional[int] = 0,
) -> CrossValidationResult:
    """K-fold cross-validation of ``spec`` on ``data``.

    Each fold is held out once; the model is fit to the remainder and the
    held-out relative errors (``|obs-pred|/pred``) are pooled.
    """
    if folds < 2:
        raise FitError(f"need at least 2 folds, got {folds}")
    y = np.asarray(data[spec.response], dtype=float)
    n = y.size
    if n < folds:
        raise FitError(f"cannot split {n} observations into {folds} folds")

    all_errors: List[np.ndarray] = []
    fold_medians: List[float] = []
    for held_out in _fold_indices(n, folds, seed):
        mask = np.ones(n, dtype=bool)
        mask[held_out] = False
        train = {k: np.asarray(v)[mask] for k, v in data.items()}
        test = {k: np.asarray(v)[held_out] for k, v in data.items()}
        model = fit_ols(spec, train)
        errors = prediction_errors(
            np.asarray(test[spec.response], dtype=float), model.predict(test)
        )
        all_errors.append(errors)
        fold_medians.append(float(np.median(errors)))
    return CrossValidationResult(
        spec_name=spec.name or spec.response,
        folds=folds,
        fold_medians=fold_medians,
        errors=np.concatenate(all_errors),
    )


def compare_specs(
    specs: Mapping[str, ModelSpec],
    data: Mapping[str, np.ndarray],
    folds: int = 5,
    seed: Optional[int] = 0,
) -> Dict[str, CrossValidationResult]:
    """Cross-validate several candidate specs on the same data."""
    return {
        label: cross_validate(spec, data, folds=folds, seed=seed)
        for label, spec in specs.items()
    }
