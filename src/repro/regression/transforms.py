"""Response transforms.

Section 3.3: a square-root transform on the response stabilizes the
variance of the performance model; a log transform captures the
exponential trends of the power model.  Transforms are invertible so
predictions return to the original metric scale.
"""

from __future__ import annotations

import numpy as np


class TransformError(ValueError):
    """Raised when a transform is applied outside its domain."""


class ResponseTransform:
    """Invertible scalar transform applied elementwise to the response."""

    name = "abstract"

    def forward(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IdentityTransform(ResponseTransform):
    """No transform."""

    name = "identity"

    def forward(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=float)

    def inverse(self, z: np.ndarray) -> np.ndarray:
        return np.asarray(z, dtype=float)


class SqrtTransform(ResponseTransform):
    """``f(y) = sqrt(y)`` — the paper's performance-model transform."""

    name = "sqrt"

    def forward(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        if (y < 0).any():
            raise TransformError("sqrt transform requires non-negative responses")
        return np.sqrt(y)

    def inverse(self, z: np.ndarray) -> np.ndarray:
        return np.square(np.asarray(z, dtype=float))


class LogTransform(ResponseTransform):
    """``f(y) = log(y)`` — the paper's power-model transform."""

    name = "log"

    def forward(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        if (y <= 0).any():
            raise TransformError("log transform requires positive responses")
        return np.log(y)

    def inverse(self, z: np.ndarray) -> np.ndarray:
        return np.exp(np.asarray(z, dtype=float))


TRANSFORMS = {
    IdentityTransform.name: IdentityTransform,
    SqrtTransform.name: SqrtTransform,
    LogTransform.name: LogTransform,
}


def get_transform(name: str) -> ResponseTransform:
    """Transform instance by name."""
    try:
        return TRANSFORMS[name]()
    except KeyError:
        raise TransformError(
            f"unknown transform {name!r}; choices are {sorted(TRANSFORMS)}"
        ) from None
