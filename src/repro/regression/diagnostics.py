"""Model diagnostics: residual analysis and variable clustering.

The paper's derivation (Section 3, citing [14]) applied variable
clustering, correlation analysis and residual analysis before settling on
the model form.  This module implements those checks from scratch:

- Spearman rank correlation (monotone association, robust to the
  non-linear scales of microarchitectural predictors);
- hierarchical variable clustering on squared Spearman correlation, the
  Hmisc ``varclus`` idea: highly associated predictors cluster together,
  flagging redundancy;
- residual summaries against fitted values and against each predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .fit import FittedModel
from .terms import Columns


def rank_data(x: np.ndarray) -> np.ndarray:
    """Midranks of ``x`` (average ranks for ties)."""
    x = np.asarray(x, dtype=float)
    order = np.argsort(x, kind="mergesort")
    ranks = np.empty(x.size, dtype=float)
    sorted_x = x[order]
    i = 0
    while i < x.size:
        j = i
        while j + 1 < x.size and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation; 0.0 for degenerate (constant) inputs."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    xd = x - x.mean()
    yd = y - y.mean()
    denom_sq = (xd @ xd) * (yd @ yd)
    if denom_sq <= 0:
        return 0.0
    return float((xd @ yd) / np.sqrt(denom_sq))


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation."""
    return pearson(rank_data(np.asarray(x)), rank_data(np.asarray(y)))


def correlation_matrix(
    data: Columns, names: Sequence[str], method: str = "spearman"
) -> np.ndarray:
    """Pairwise correlation matrix over the named columns."""
    correlate = spearman if method == "spearman" else pearson
    k = len(names)
    matrix = np.eye(k)
    columns = [np.asarray(data[name], dtype=float) for name in names]
    for i in range(k):
        for j in range(i + 1, k):
            value = correlate(columns[i], columns[j])
            matrix[i, j] = matrix[j, i] = value
    return matrix


@dataclass
class VariableCluster:
    """A cluster in the variable-clustering dendrogram."""

    members: Tuple[str, ...]
    similarity: float  # squared correlation at which this cluster formed


def variable_clustering(
    data: Columns, names: Sequence[str], threshold: float = 0.3
) -> List[VariableCluster]:
    """Agglomerative clustering of predictors by squared Spearman rho.

    Average-linkage merging continues while the best pair similarity is at
    least ``threshold``; the result flags predictor groups that carry
    overlapping information (candidates for dropping or combining).
    """
    names = list(names)
    rho = correlation_matrix(data, names) ** 2
    clusters: List[List[int]] = [[i] for i in range(len(names))]
    formed_at: List[float] = [1.0] * len(names)

    def linkage(a: List[int], b: List[int]) -> float:
        return float(np.mean([rho[i, j] for i in a for j in b]))

    while len(clusters) > 1:
        best = None
        best_sim = threshold
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                sim = linkage(clusters[i], clusters[j])
                if sim >= best_sim:
                    best_sim = sim
                    best = (i, j)
        if best is None:
            break
        i, j = best
        merged = clusters[i] + clusters[j]
        clusters = [c for k, c in enumerate(clusters) if k not in (i, j)]
        formed_at = [s for k, s in enumerate(formed_at) if k not in (i, j)]
        clusters.append(merged)
        formed_at.append(best_sim)

    return [
        VariableCluster(
            members=tuple(names[i] for i in sorted(cluster)),
            similarity=similarity,
        )
        for cluster, similarity in zip(clusters, formed_at)
    ]


@dataclass
class ResidualSummary:
    """Residual diagnostics on the transformed (fitting) scale."""

    residuals: np.ndarray
    fitted: np.ndarray
    standardized: np.ndarray
    mean: float
    std: float
    max_abs_standardized: float
    per_predictor_correlation: Dict[str, float] = field(default_factory=dict)


def residual_analysis(
    model: FittedModel, data: Mapping[str, np.ndarray]
) -> ResidualSummary:
    """Residuals of ``model`` on ``data`` plus drift checks.

    ``per_predictor_correlation`` reports the Spearman correlation of the
    residuals with each predictor: large magnitudes indicate unmodeled
    structure (a missing transform or interaction).
    """
    z = model.spec.transform.forward(np.asarray(data[model.spec.response], dtype=float))
    fitted = model.predict_transformed(data)
    residuals = z - fitted
    std = float(residuals.std(ddof=1)) if residuals.size > 1 else 0.0
    standardized = residuals / std if std > 0 else np.zeros_like(residuals)
    correlations = {
        name: spearman(residuals, np.asarray(data[name], dtype=float))
        for name in model.spec.predictors
    }
    return ResidualSummary(
        residuals=residuals,
        fitted=fitted,
        standardized=standardized,
        mean=float(residuals.mean()),
        std=std,
        max_abs_standardized=(
            float(np.abs(standardized).max()) if residuals.size else 0.0
        ),
        per_predictor_correlation=correlations,
    )
