"""Model specifications.

A :class:`ModelSpec` names the response, its transform and the term list —
the full description of one of the paper's regression models (Equation 1
plus the transform and interaction choices of Sections 3.2-3.3).  Specs
are declarative and reusable across benchmarks: the paper fits the same
specification once per benchmark per metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from .terms import Term, TermError
from .transforms import IdentityTransform, ResponseTransform


@dataclass(frozen=True)
class ModelSpec:
    """Declarative regression model description.

    Attributes
    ----------
    response:
        Name of the response column (e.g. ``"bips"`` or ``"watts"``).
    terms:
        Sequence of :class:`~repro.regression.terms.Term`.
    transform:
        Response transform (Section 3.3); identity by default.
    name:
        Optional label for tables and artifacts.
    """

    response: str
    terms: Tuple[Term, ...]
    transform: ResponseTransform = field(default_factory=IdentityTransform)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.response:
            raise TermError("model spec needs a response name")
        if not self.terms:
            raise TermError("model spec needs at least one term")

    @property
    def predictors(self) -> Tuple[str, ...]:
        """All predictor names referenced by the terms, de-duplicated."""
        seen: list = []
        for term in self.terms:
            for predictor in term.predictors:
                if predictor not in seen:
                    seen.append(predictor)
        return tuple(seen)

    def with_terms(self, terms: Sequence[Term], name: str = "") -> "ModelSpec":
        """Copy with a different term list (ablation hook)."""
        return ModelSpec(
            response=self.response,
            terms=tuple(terms),
            transform=self.transform,
            name=name or self.name,
        )

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for EXPERIMENTS.md."""
        parts = []
        for term in self.terms:
            kind = type(term).__name__.replace("Term", "").lower()
            parts.append(f"{kind}({'x'.join(term.predictors)})")
        label = self.name or self.response
        return f"{label}: {self.transform.name}({self.response}) ~ " + " + ".join(parts)
