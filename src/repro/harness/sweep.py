"""Blockwise exhaustive-sweep engine (the paper's Section 1 promise).

The whole argument of Lee & Brooks is that regression predictions are
cheap enough to characterize the *entire* 262,500-point exploration space
exhaustively.  This module delivers that sweep without ever materializing
the space: design points are visited in fixed-size blocks, each block is
encoded into predictor columns with vectorized mixed-radix decoding (or
level-table lookups for explicit point lists), the fitted bips/watts
models evaluate their design matrices in one batched numpy call per
block, and *streaming reducers* fold every block into a compact running
state — the pareto frontier by delay bin, the efficiency argmax/top-k,
per-depth efficiency distributions — so peak memory stays proportional
to the block size, not ``|S|``.

Blocks are embarrassingly parallel; ``workers > 1`` fans chunks of
blocks out through :mod:`repro.harness.resilience` mirroring
``run_campaign``'s worker model — with chunk retries, optional
journaling for checkpoint/resume, and serial degradation when the pool
breaks.  Reduction stays in-process and consumes chunks in sweep order,
so reducers are partition independent: results are identical for any
block size or worker count, and identical to reducing a monolithic
whole-space prediction table.

The frontier construction (``pareto_indices`` / ``discretized_frontier``)
lives here — below the studies layer — so both the streaming engine and
the Study-1 code share one implementation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..designspace import DesignPoint, DesignSpace
from ..designspace.parameters import ParameterError
from ..metrics import bips3_per_watt, delay_seconds
from ..obs.metrics import get_registry, merge_snapshots
from ..obs.tracing import Stopwatch, get_tracer
from ..regression import FittedModel
from .resilience import (
    ChunkTask,
    CorruptResultError,
    Journal,
    ResilienceConfig,
    RunReport,
    fingerprint_payload,
    run_chunks,
)

#: Default number of design points predicted per block.
DEFAULT_BLOCK_SIZE = 8192

#: Target chunk count on the resilient path.  A constant — not a function
#: of ``workers`` — so a sweep journal resumes at any worker count.
SWEEP_CHUNKS = 8


class SweepError(ValueError):
    """Raised for malformed sweep configurations."""


# -- frontier mathematics ------------------------------------------------------


def pareto_indices(delay: np.ndarray, power: np.ndarray) -> np.ndarray:
    """Indices of non-dominated points (minimize delay and power).

    Sort by delay then sweep with a running power minimum: a design is on
    the frontier iff no faster-or-equal design needs less-or-equal power.
    """
    delay = np.asarray(delay, dtype=float)
    power = np.asarray(power, dtype=float)
    if delay.shape != power.shape:
        raise ValueError("delay and power must align")
    order = np.lexsort((power, delay))  # by delay, ties by power
    kept = []
    best_power = np.inf
    last_delay = None
    for index in order:
        if power[index] < best_power:
            # Strictly better power than anything at least as fast.
            if last_delay is not None and delay[index] == last_delay:
                pass  # same delay, higher power was filtered by lexsort
            kept.append(index)
            best_power = power[index]
            last_delay = delay[index]
    return np.array(sorted(kept), dtype=int)


def _binned_power_minima(
    delay: np.ndarray, power: np.ndarray, edges: np.ndarray
) -> np.ndarray:
    """Index of the power-minimizing point within each delay bin.

    Bins are half-open except the last (closed), matching the paper's
    delay discretization; empty bins are skipped.  Ties resolve to the
    lowest index, as ``argmin`` does.
    """
    bins = edges.size - 1
    chosen = []
    for b in range(bins):
        low, high = edges[b], edges[b + 1]
        if b == bins - 1:
            mask = (delay >= low) & (delay <= high)
        else:
            mask = (delay >= low) & (delay < high)
        candidates = np.flatnonzero(mask)
        if candidates.size:
            chosen.append(candidates[power[candidates].argmin()])
    return np.array(chosen, dtype=int)


def discretized_frontier(
    delay: np.ndarray, power: np.ndarray, bins: int = 50
) -> np.ndarray:
    """The paper's construction: min-power design per delay bin, pruned.

    The delay range is discretized into ``bins`` targets; within each bin
    the power-minimizing design is selected, and dominated selections are
    pruned afterwards.
    """
    delay = np.asarray(delay, dtype=float)
    power = np.asarray(power, dtype=float)
    if bins < 1:
        raise ValueError(f"bins must be positive, got {bins}")
    edges = np.linspace(delay.min(), delay.max(), bins + 1)
    chosen = _binned_power_minima(delay, power, edges)
    keep = pareto_indices(delay[chosen], power[chosen])
    return chosen[keep]


def strict_pareto_mask(delay: np.ndarray, power: np.ndarray) -> np.ndarray:
    """Boolean mask of points not *strictly* dominated in both axes.

    A point is dropped only when some other point has strictly smaller
    delay *and* strictly smaller power.  Weakly dominated points (ties in
    either axis) are retained, which is exactly the invariant the
    streaming frontier reducer needs: every design that
    :func:`discretized_frontier` can emit for the full set survives this
    filter (see :class:`ParetoFrontierReducer`).
    """
    delay = np.asarray(delay, dtype=float)
    power = np.asarray(power, dtype=float)
    if delay.shape != power.shape:
        raise ValueError("delay and power must align")
    n = delay.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(delay, kind="stable")
    sorted_delay = delay[order]
    sorted_power = power[order]
    prefix_min = np.minimum.accumulate(sorted_power)
    # For each point, the best power among *strictly* smaller delays:
    # the prefix minimum just before its delay-group starts.
    first_of_group = np.searchsorted(sorted_delay, sorted_delay, side="left")
    best_before = np.where(
        first_of_group > 0,
        prefix_min[np.maximum(first_of_group - 1, 0)],
        np.inf,
    )
    keep_sorted = sorted_power <= best_before
    mask = np.zeros(n, dtype=bool)
    mask[order[keep_sorted]] = True
    return mask


# -- point sources -------------------------------------------------------------


class SweepSource:
    """An ordered, block-addressable set of design points.

    Subclasses expose encoded predictor columns and raw parameter columns
    per block plus point materialization by sweep position, so reducers
    can resolve the (few) designs they keep without the engine ever
    holding the full point list.
    """

    space: DesignSpace

    def __len__(self) -> int:
        raise NotImplementedError

    def feature_block(self, start: int, stop: int) -> Dict[str, np.ndarray]:
        """Encoded predictor columns for sweep positions [start, stop)."""
        raise NotImplementedError

    def column_block(self, name: str, start: int, stop: int) -> np.ndarray:
        """Raw (un-encoded) values of one parameter over [start, stop)."""
        raise NotImplementedError

    def level_block(self, start: int, stop: int) -> Optional[np.ndarray]:
        """Per-parameter grid level indices over [start, stop), or None.

        An ``(n, P)`` integer matrix enables the predictor's level-table
        gather fast path; sources that cannot provide it return None and
        blocks fall back to :meth:`feature_block` evaluation.
        """
        return None

    def point_at(self, position: int) -> DesignPoint:
        """The design point at one sweep position."""
        raise NotImplementedError

    def slice(self, start: int, stop: int) -> "SweepSource":
        """A standalone source covering positions [start, stop)."""
        raise NotImplementedError


def _encoded_level_tables(space: DesignSpace) -> List[np.ndarray]:
    """Per-parameter lookup table: level index -> encoded coordinate.

    Built with :meth:`Parameter.encode` so lookups are bitwise identical
    to :class:`~repro.designspace.DesignEncoder`.
    """
    return [
        np.array([parameter.encode(value) for value in parameter.values])
        for parameter in space.parameters
    ]


def _raw_level_tables(space: DesignSpace) -> List[np.ndarray]:
    return [
        np.array(parameter.values, dtype=float)
        for parameter in space.parameters
    ]


class SpaceSweepSource(SweepSource):
    """Sweep a :class:`DesignSpace` (or an index subset) by mixed radix.

    Blocks decode integer indices directly into per-parameter level
    arrays — no :class:`DesignPoint` objects are created — which makes
    full-space enumeration at paper scale (262,500 designs) both fast and
    memory-flat.
    """

    def __init__(self, space: DesignSpace, indices: Optional[np.ndarray] = None):
        self.space = space
        if indices is None:
            self._indices = None
            self._length = len(space)
        else:
            indices = np.asarray(indices, dtype=np.int64)
            if indices.ndim != 1:
                raise SweepError("indices must be one-dimensional")
            if indices.size and (
                indices.min() < 0 or indices.max() >= len(space)
            ):
                raise SweepError(
                    f"indices out of range for |S|={len(space)}"
                )
            self._indices = indices
            self._length = int(indices.size)
        self._radices = np.array(space.radices, dtype=np.int64)
        self._cardinalities = np.array(
            [p.cardinality for p in space.parameters], dtype=np.int64
        )
        self._encoded = _encoded_level_tables(space)
        self._raw = _raw_level_tables(space)

    def __len__(self) -> int:
        return self._length

    def _index_block(self, start: int, stop: int) -> np.ndarray:
        if self._indices is None:
            return np.arange(start, stop, dtype=np.int64)
        return self._indices[start:stop]

    def _level_block(self, j: int, start: int, stop: int) -> np.ndarray:
        indices = self._index_block(start, stop)
        return (indices // self._radices[j]) % self._cardinalities[j]

    def feature_block(self, start: int, stop: int) -> Dict[str, np.ndarray]:
        return {
            name: self._encoded[j][self._level_block(j, start, stop)]
            for j, name in enumerate(self.space.names)
        }

    def column_block(self, name: str, start: int, stop: int) -> np.ndarray:
        j = self.space.names.index(name)
        return self._raw[j][self._level_block(j, start, stop)]

    def level_block(self, start: int, stop: int) -> np.ndarray:
        return np.column_stack(
            [
                self._level_block(j, start, stop)
                for j in range(len(self.space.names))
            ]
        )

    def point_at(self, position: int) -> DesignPoint:
        if self._indices is None:
            return self.space.point_at(int(position))
        return self.space.point_at(int(self._indices[position]))

    def slice(self, start: int, stop: int) -> "SpaceSweepSource":
        return SpaceSweepSource(self.space, self._index_block(start, stop))


class PointSweepSource(SweepSource):
    """Sweep an explicit point list (e.g. a UAR exploration subsample).

    The raw and encoded matrices are built once, lazily, with per-column
    level-table lookups — the encoded coordinates are bitwise identical
    to per-point :class:`~repro.designspace.DesignEncoder` output, but
    the build is vectorized over the whole list.  Points must lie on the
    space's grid (as :class:`DesignEncoder` also requires).
    """

    def __init__(self, space: DesignSpace, points: Sequence[DesignPoint]):
        self.space = space
        self.points = list(points)
        if self.points and tuple(self.points[0].names) != space.names:
            raise ParameterError(
                f"point parameters {self.points[0].names} do not match "
                f"space {space.names}"
            )
        self._raw_matrix: Optional[np.ndarray] = None
        self._encoded_matrix: Optional[np.ndarray] = None
        self._level_matrix: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.points)

    def _raw(self) -> np.ndarray:
        if self._raw_matrix is None:
            if not self.points:
                width = len(self.space.names)
                self._raw_matrix = np.empty((0, width))
            else:
                self._raw_matrix = np.array(
                    [point.values for point in self.points], dtype=float
                )
        return self._raw_matrix

    def _encoded(self) -> np.ndarray:
        if self._encoded_matrix is None:
            raw = self._raw()
            columns = []
            level_columns = []
            encoded_tables = _encoded_level_tables(self.space)
            raw_tables = _raw_level_tables(self.space)
            for j, parameter in enumerate(self.space.parameters):
                levels = raw_tables[j]
                positions = np.searchsorted(levels, raw[:, j])
                positions = np.minimum(positions, levels.size - 1)
                if raw.shape[0] and not np.array_equal(
                    levels[positions], raw[:, j]
                ):
                    bad = raw[:, j][levels[positions] != raw[:, j]][0]
                    raise ParameterError(
                        f"{bad!r} is not a level of parameter "
                        f"{parameter.name!r}; levels are {parameter.values}"
                    )
                columns.append(encoded_tables[j][positions])
                level_columns.append(positions.astype(np.int64))
            self._encoded_matrix = (
                np.column_stack(columns)
                if columns
                else np.empty((len(self.points), 0))
            )
            self._level_matrix = (
                np.column_stack(level_columns)
                if level_columns
                else np.empty((len(self.points), 0), dtype=np.int64)
            )
        return self._encoded_matrix

    def _levels(self) -> np.ndarray:
        if self._level_matrix is None:
            self._encoded()
        return self._level_matrix

    def feature_block(self, start: int, stop: int) -> Dict[str, np.ndarray]:
        encoded = self._encoded()
        return {
            name: encoded[start:stop, j]
            for j, name in enumerate(self.space.names)
        }

    def column_block(self, name: str, start: int, stop: int) -> np.ndarray:
        j = self.space.names.index(name)
        return self._raw()[start:stop, j]

    def level_block(self, start: int, stop: int) -> np.ndarray:
        return self._levels()[start:stop]

    def point_at(self, position: int) -> DesignPoint:
        return self.points[position]

    def slice(self, start: int, stop: int) -> "PointSweepSource":
        return PointSweepSource(self.space, self.points[start:stop])


# -- prediction ---------------------------------------------------------------


class _LevelDesignCache:
    """Gather tables mapping grid level indices to design-matrix columns.

    Every predictor takes a handful of grid levels, so each bound term's
    design columns — which depend only on the term's one or two
    predictors — are precomputed on the encoded level values (or the
    level cross product) once per model.  Block design matrices then
    assemble by integer gather instead of re-evaluating spline bases per
    row.  Results are bitwise identical to row-wise evaluation: the same
    elementwise operations run on the same encoded values, only once per
    level instead of once per design.
    """

    def __init__(self, model: FittedModel, space: DesignSpace):
        self.model = model
        names = list(space.names)
        encoded = _encoded_level_tables(space)
        self._plans: List[tuple] = []
        self.supported = True
        for term in model.bound_terms:
            try:
                predictors = term.predictors
            except NotImplementedError:
                predictors = None
            if (
                predictors is not None
                and len(predictors) == 1
                and predictors[0] in names
            ):
                j = names.index(predictors[0])
                table = term.design_columns({predictors[0]: encoded[j]})
                self._plans.append(("one", j, table))
            elif (
                predictors is not None
                and len(predictors) == 2
                and all(p in names for p in predictors)
            ):
                ja = names.index(predictors[0])
                jb = names.index(predictors[1])
                va, vb = encoded[ja], encoded[jb]
                table = term.design_columns(
                    {
                        predictors[0]: np.repeat(va, vb.size),
                        predictors[1]: np.tile(vb, va.size),
                    }
                )
                self._plans.append(("pair", (ja, jb, vb.size), table))
            else:
                self.supported = False
                break

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predictions for an ``(n, P)`` block of level indices."""
        n = levels.shape[0]
        blocks = [np.ones((n, 1))]
        for kind, key, table in self._plans:
            if kind == "one":
                blocks.append(table[levels[:, key]])
            else:
                ja, jb, nb = key
                blocks.append(table[levels[:, ja] * nb + levels[:, jb]])
        X = np.hstack(blocks)
        return self.model.spec.transform.inverse(X @ self.model.coefficients)


@dataclass
class BlockPredictor:
    """One benchmark's fitted bips/watts models, evaluated blockwise."""

    benchmark: str
    bips_model: FittedModel
    watts_model: FittedModel
    ref_instructions: float

    def predict(
        self, features: Dict[str, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(bips, watts) for one block of encoded predictor columns."""
        return (
            self.bips_model.predict(features),
            self.watts_model.predict(features),
        )

    def _level_caches(
        self, space: DesignSpace
    ) -> Optional[Tuple[_LevelDesignCache, _LevelDesignCache]]:
        """Per-space gather tables, built lazily (e.g. once per worker)."""
        cached = self.__dict__.get("_caches")
        if cached is None or cached[0] is not space:
            bips = _LevelDesignCache(self.bips_model, space)
            watts = _LevelDesignCache(self.watts_model, space)
            if not (bips.supported and watts.supported):
                cached = (space, None)
            else:
                cached = (space, (bips, watts))
            self.__dict__["_caches"] = cached
        return cached[1]

    def predict_levels(
        self, levels: np.ndarray, space: DesignSpace
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """(bips, watts) for a block of level indices, or None.

        Returns None when some term cannot be gathered from level tables
        (the engine then falls back to encoded-feature evaluation).
        """
        caches = self._level_caches(space)
        if caches is None:
            return None
        bips_cache, watts_cache = caches
        return bips_cache.predict(levels), watts_cache.predict(levels)


@dataclass
class SweepBlock:
    """Predictions for one contiguous chunk of sweep positions."""

    benchmark: str
    indices: np.ndarray      #: sweep positions (global, ascending)
    bips: np.ndarray
    watts: np.ndarray
    delay: np.ndarray
    efficiency: np.ndarray
    raw: Dict[str, np.ndarray] = field(default_factory=dict)

    def metric(self, name: str) -> np.ndarray:
        """One of the four predicted metric columns by name."""
        try:
            return {
                "bips": self.bips,
                "watts": self.watts,
                "delay": self.delay,
                "efficiency": self.efficiency,
            }[name]
        except KeyError:
            raise SweepError(
                f"unknown sweep metric {name!r}; choices are "
                "bips/watts/delay/efficiency"
            ) from None

    def __len__(self) -> int:
        return int(self.indices.size)


# -- streaming reducers --------------------------------------------------------


class SweepReducer:
    """Folds prediction blocks into a compact running state.

    Reducers must be *partition independent*: feeding the same points in
    any block decomposition (including one monolithic block) yields the
    same finalized result.  ``columns`` names the raw parameter columns
    the reducer needs on each block; ``cache_key`` (when not None) lets
    :class:`~repro.studies.common.StudyContext` memoize finalized results
    per benchmark and point set.
    """

    columns: Tuple[str, ...] = ()

    @property
    def cache_key(self) -> Optional[tuple]:
        return None

    def update(self, block: SweepBlock) -> None:
        raise NotImplementedError

    def finalize(self, source: SweepSource):
        """Finish the reduction, materializing any retained designs."""
        raise NotImplementedError


@dataclass
class FrontierResult:
    """Finalized pareto frontier: sweep indices plus their coordinates."""

    indices: np.ndarray
    points: List[DesignPoint]
    delay: np.ndarray
    power: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.size)


class ParetoFrontierReducer(SweepReducer):
    """Streaming pareto-frontier-by-delay-bin (Section 4.2's construction).

    Per block only the strictly-non-dominated (delay, power) candidates
    are retained — for smooth power/delay surfaces that is a vanishing
    fraction of the block — together with the running global delay range.
    Finalization re-runs the paper's min-power-per-delay-bin selection
    and pareto prune over the candidate set with bin edges spanning the
    *global* delay range, which provably reproduces
    ``discretized_frontier`` over the full sweep: any full-set per-bin
    power minimum that the final prune would keep is never strictly
    dominated (a strict dominator selects an even better design into an
    earlier bin, which would prune it), so it survives candidate
    filtering; and ties break identically because candidates stay in
    sweep order.
    """

    def __init__(self, bins: int = 50):
        if bins < 1:
            raise SweepError(f"bins must be positive, got {bins}")
        self.bins = bins
        self._indices: List[np.ndarray] = []
        self._delay: List[np.ndarray] = []
        self._power: List[np.ndarray] = []
        self._delay_min = np.inf
        self._delay_max = -np.inf

    @property
    def cache_key(self) -> tuple:
        return ("pareto", self.bins)

    def update(self, block: SweepBlock) -> None:
        if not len(block):
            return
        delay, power = block.delay, block.watts
        self._delay_min = min(self._delay_min, float(delay.min()))
        self._delay_max = max(self._delay_max, float(delay.max()))
        keep = strict_pareto_mask(delay, power)
        self._indices.append(block.indices[keep])
        self._delay.append(delay[keep])
        self._power.append(power[keep])

    def finalize(self, source: SweepSource) -> FrontierResult:
        if not self._indices:
            empty = np.array([], dtype=float)
            return FrontierResult(
                indices=np.array([], dtype=int),
                points=[],
                delay=empty,
                power=empty,
            )
        indices = np.concatenate(self._indices)
        delay = np.concatenate(self._delay)
        power = np.concatenate(self._power)
        edges = np.linspace(self._delay_min, self._delay_max, self.bins + 1)
        chosen = _binned_power_minima(delay, power, edges)
        keep = pareto_indices(delay[chosen], power[chosen])
        final = chosen[keep]
        return FrontierResult(
            indices=indices[final],
            points=[source.point_at(int(i)) for i in indices[final]],
            delay=delay[final],
            power=power[final],
        )


@dataclass
class TopKResult:
    """Finalized argmax/top-k: the best designs with all four metrics."""

    metric: str
    indices: np.ndarray
    points: List[DesignPoint]
    values: np.ndarray
    bips: np.ndarray
    watts: np.ndarray
    delay: np.ndarray
    efficiency: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.size)


class TopKReducer(SweepReducer):
    """Streaming per-benchmark argmax / top-k of one predicted metric.

    ``k=1`` reproduces ``table.<metric>.argmax()`` over a monolithic
    prediction table exactly, including first-occurrence tie-breaking
    (candidates are ordered by value descending, then sweep index
    ascending).
    """

    _FIELDS = ("values", "bips", "watts", "delay", "efficiency")

    def __init__(self, metric: str = "efficiency", k: int = 1):
        if k < 1:
            raise SweepError(f"k must be positive, got {k}")
        self.metric = metric
        self.k = k
        self._indices = np.array([], dtype=np.int64)
        self._state = {name: np.array([], dtype=float) for name in self._FIELDS}

    @property
    def cache_key(self) -> tuple:
        return ("topk", self.metric, self.k)

    def update(self, block: SweepBlock) -> None:
        if not len(block):
            return
        values = block.metric(self.metric)
        merged = {
            "values": np.concatenate([self._state["values"], values]),
            "bips": np.concatenate([self._state["bips"], block.bips]),
            "watts": np.concatenate([self._state["watts"], block.watts]),
            "delay": np.concatenate([self._state["delay"], block.delay]),
            "efficiency": np.concatenate(
                [self._state["efficiency"], block.efficiency]
            ),
        }
        indices = np.concatenate([self._indices, block.indices])
        # Highest value first; ties resolve to the lowest sweep index,
        # matching argmax over a whole-space table.
        order = np.lexsort((indices, -merged["values"]))[: self.k]
        self._indices = indices[order]
        self._state = {name: merged[name][order] for name in self._FIELDS}

    def finalize(self, source: SweepSource) -> TopKResult:
        return TopKResult(
            metric=self.metric,
            indices=self._indices.copy(),
            points=[source.point_at(int(i)) for i in self._indices],
            values=self._state["values"].copy(),
            bips=self._state["bips"].copy(),
            watts=self._state["watts"].copy(),
            delay=self._state["delay"].copy(),
            efficiency=self._state["efficiency"].copy(),
        )


@dataclass
class GroupedResult:
    """Finalized per-level reduction of one metric along one parameter."""

    parameter: str
    metric: str
    values: Dict[float, np.ndarray]       #: per level, in sweep order
    argmax_indices: Dict[float, int]      #: sweep position of each level's best
    argmax_points: Dict[float, DesignPoint]
    argmax_values: Dict[float, float]

    def levels(self) -> List[float]:
        return list(self.values)


class GroupedMetricReducer(SweepReducer):
    """Streaming per-depth (or any parameter) metric distributions.

    Keeps, per parameter level, the metric values in sweep order — the
    exact inputs the depth study's boxplot statistics and exceedance
    fractions need — plus the running per-level argmax.  Value arrays
    are floats only, so even the paper-scale stratified sweep stays
    small; no design points or design matrices are retained.
    """

    def __init__(self, parameter: str = "depth", metric: str = "efficiency"):
        self.parameter = parameter
        self.metric = metric
        self.columns = (parameter,)
        self._values: Dict[float, List[np.ndarray]] = {}
        self._best_value: Dict[float, float] = {}
        self._best_index: Dict[float, int] = {}

    @property
    def cache_key(self) -> tuple:
        return ("grouped", self.parameter, self.metric)

    def update(self, block: SweepBlock) -> None:
        if not len(block):
            return
        levels = block.raw[self.parameter]
        values = block.metric(self.metric)
        for level in np.unique(levels):
            level = float(level)
            mask = levels == level
            chunk = values[mask]
            self._values.setdefault(level, []).append(chunk)
            local_best = int(chunk.argmax())
            best = float(chunk[local_best])
            # Strictly-greater keeps the first occurrence across blocks,
            # matching argmax over the concatenated whole.
            if level not in self._best_value or best > self._best_value[level]:
                self._best_value[level] = best
                self._best_index[level] = int(
                    block.indices[np.flatnonzero(mask)[local_best]]
                )

    def finalize(self, source: SweepSource) -> GroupedResult:
        levels = sorted(self._values)
        return GroupedResult(
            parameter=self.parameter,
            metric=self.metric,
            values={
                level: np.concatenate(self._values[level]) for level in levels
            },
            argmax_indices={
                level: self._best_index[level] for level in levels
            },
            argmax_points={
                level: source.point_at(self._best_index[level])
                for level in levels
            },
            argmax_values={
                level: self._best_value[level] for level in levels
            },
        )


@dataclass
class CollectedColumns:
    """Finalized full-length metric vectors and raw parameter columns."""

    metrics: Dict[str, np.ndarray]
    columns: Dict[str, np.ndarray]

    def metric(self, name: str) -> np.ndarray:
        return self.metrics[name]

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]


class CollectReducer(SweepReducer):
    """Accumulates whole-sweep metric vectors (and raw columns).

    The escape hatch for analyses that genuinely need every prediction
    (Figure 2's characterization scatter, the suite-average percentile
    cut of Figure 5b): floats only — a paper-scale sweep costs a few MB
    — while points and design matrices still never accumulate.
    """

    def __init__(
        self,
        metrics: Sequence[str] = ("bips", "watts"),
        columns: Sequence[str] = (),
    ):
        self.metric_names = tuple(metrics)
        self.columns = tuple(columns)
        self._metrics: Dict[str, List[np.ndarray]] = {
            name: [] for name in self.metric_names
        }
        self._columns: Dict[str, List[np.ndarray]] = {
            name: [] for name in self.columns
        }

    @property
    def cache_key(self) -> tuple:
        return ("collect", self.metric_names, self.columns)

    def update(self, block: SweepBlock) -> None:
        for name in self.metric_names:
            self._metrics[name].append(block.metric(name))
        for name in self.columns:
            self._columns[name].append(block.raw[name])

    def finalize(self, source: SweepSource) -> CollectedColumns:
        def _concat(chunks: List[np.ndarray]) -> np.ndarray:
            if not chunks:
                return np.array([], dtype=float)
            return np.concatenate(chunks)

        return CollectedColumns(
            metrics={
                name: _concat(chunks)
                for name, chunks in self._metrics.items()
            },
            columns={
                name: _concat(chunks)
                for name, chunks in self._columns.items()
            },
        )


# -- the engine ----------------------------------------------------------------


@dataclass
class SweepReport:
    """Outcome of one sweep: reducer results plus throughput accounting."""

    benchmark: str
    n_points: int
    block_size: int
    workers: int
    elapsed_seconds: float
    results: List[object]
    #: Execution accounting when the sweep went through the resilient
    #: executor (retries, resumes, degradation); None on the serial path.
    run_report: Optional[RunReport] = None
    #: Merged :mod:`repro.obs` metrics for this sweep: the driver's own
    #: contribution (reduction, serial prediction) plus every worker
    #: chunk's snapshot shipped back through the resilient executor.
    metrics: Optional[dict] = None

    @property
    def points_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.n_points / self.elapsed_seconds


def _block_ranges(total: int, block_size: int) -> List[Tuple[int, int]]:
    return [
        (start, min(start + block_size, total))
        for start in range(0, total, block_size)
    ]


def _evaluate_range(
    predictor: BlockPredictor,
    source: SweepSource,
    start: int,
    stop: int,
    columns: Tuple[str, ...],
) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """Predict one contiguous range; returns (bips, watts, raw columns).

    Prefers the level-index gather fast path; sources (or models) that
    cannot provide it fall back to encoded-feature evaluation, which is
    bitwise identical for the same block decomposition.
    """
    pair = None
    levels = source.level_block(start, stop)
    if levels is not None:
        pair = predictor.predict_levels(levels, source.space)
    if pair is None:
        features = source.feature_block(start, stop)
        pair = predictor.predict(features)
    bips, watts = pair
    raw = {name: source.column_block(name, start, stop) for name in columns}
    return bips, watts, raw


def _sweep_chunk(
    predictor: BlockPredictor,
    chunk: SweepSource,
    offset: int,
    block_size: int,
    columns: Tuple[str, ...],
) -> List[Tuple[int, np.ndarray, np.ndarray, Dict[str, np.ndarray]]]:
    """Worker: evaluate one sliced chunk block-by-block.

    Runs in a separate process; the chunk source carries only its own
    points/indices, so fan-out ships O(chunk) data per task.  Returns
    ``(global_start, bips, watts, raw)`` per block.
    """
    registry = get_registry()
    payloads = []
    for start, stop in _block_ranges(len(chunk), block_size):
        with Stopwatch() as watch:
            bips, watts, raw = _evaluate_range(
                predictor, chunk, start, stop, columns
            )
        payloads.append((offset + start, bips, watts, raw))
        registry.increment("sweep.points", stop - start)
        registry.increment("sweep.blocks")
        registry.observe("sweep.predict_block.seconds", watch.wall_s)
    return payloads


def _encode_sweep_payload(payload) -> list:
    """Chunk payload → JSON for the journal (dtypes preserved)."""
    return [
        [
            start,
            bips.tolist(),
            watts.tolist(),
            {
                name: {"dtype": str(col.dtype), "values": col.tolist()}
                for name, col in raw.items()
            },
        ]
        for start, bips, watts, raw in payload
    ]


def _decode_sweep_payload(encoded) -> list:
    """Journaled JSON → chunk payload (bitwise: JSON floats round-trip)."""
    return [
        (
            int(start),
            np.asarray(bips, dtype=float),
            np.asarray(watts, dtype=float),
            {
                name: np.asarray(col["values"], dtype=np.dtype(col["dtype"]))
                for name, col in raw.items()
            },
        )
        for start, bips, watts, raw in encoded
    ]


def _validate_sweep_payload(task: ChunkTask, payload) -> None:
    """Reject chunk payloads that do not cover exactly ``task.size`` points."""
    if not isinstance(payload, list):
        raise CorruptResultError(
            f"chunk {task.index} returned {type(payload).__name__}, "
            "expected a list of blocks"
        )
    covered = sum(len(bips) for _, bips, _, _ in payload)
    if covered != task.size:
        raise CorruptResultError(
            f"chunk {task.index} covered {covered} points, "
            f"expected {task.size}"
        )


def _sweep_fingerprint(
    predictor: BlockPredictor,
    total: int,
    block_size: int,
    chunk_size: int,
    columns: Tuple[str, ...],
) -> str:
    """Digest binding a sweep journal to one layout *and* one model fit."""
    coeffs = hashlib.sha256(
        predictor.bips_model.coefficients.tobytes()
        + predictor.watts_model.coefficients.tobytes()
    ).hexdigest()[:16]
    return fingerprint_payload(
        {
            "kind": "sweep",
            "benchmark": predictor.benchmark,
            "n_points": total,
            "block_size": block_size,
            "chunk_size": chunk_size,
            "columns": list(columns),
            "ref_instructions": float(predictor.ref_instructions),
            "coefficients": coeffs,
        }
    )


def _make_block(
    predictor: BlockPredictor,
    start: int,
    bips: np.ndarray,
    watts: np.ndarray,
    raw: Dict[str, np.ndarray],
) -> SweepBlock:
    return SweepBlock(
        benchmark=predictor.benchmark,
        indices=np.arange(start, start + bips.size, dtype=np.int64),
        bips=bips,
        watts=watts,
        delay=delay_seconds(bips, predictor.ref_instructions),
        efficiency=bips3_per_watt(bips, watts),
        raw=raw,
    )


def _run_sweep_resilient(
    predictor: BlockPredictor,
    source: SweepSource,
    reducers: Sequence[SweepReducer],
    block_size: int,
    workers: int,
    progress,
    columns: Tuple[str, ...],
    resilience: ResilienceConfig,
) -> RunReport:
    """Chunked fan-out with retries/journal; in-order streaming reduction."""
    total = len(source)
    # Chunk boundaries must land on block boundaries: block decomposition
    # then matches the serial path exactly, which keeps predictions (and
    # hence reducer results) bitwise identical — BLAS kernels can round
    # differently for different matrix row counts.
    chunk_size = -(-total // SWEEP_CHUNKS)  # ceil division
    chunk_size = max(
        block_size, -(-chunk_size // block_size) * block_size
    )
    tasks = [
        ChunkTask(
            index=i,
            fn=_sweep_chunk,
            args=(predictor, source.slice(start, stop), start, block_size,
                  columns),
            size=stop - start,
            meta=(start, stop),
        )
        for i, (start, stop) in enumerate(_block_ranges(total, chunk_size))
    ]

    fingerprint = _sweep_fingerprint(
        predictor, total, block_size, chunk_size, columns
    )
    journal = None
    if resilience.journal_path is not None:
        if not resilience.resume and resilience.journal_path.exists():
            resilience.journal_path.unlink()
        journal = Journal.open(
            resilience.journal_path, fingerprint, strict=resilience.resume
        )

    # Reducers are streaming and order-sensitive (running argmaxes break
    # ties by first occurrence), so chunks completing out of order park
    # in a buffer until their predecessors arrive.
    state = {"next": 0, "done": 0}
    parked: Dict[int, list] = {}

    def consume(payload) -> None:
        registry = get_registry()
        for start, bips, watts, raw in payload:
            block = _make_block(predictor, start, bips, watts, raw)
            with get_tracer().span(
                "sweep.reduce_block", start=start, size=len(block)
            ) as reduce_span:
                for reducer in reducers:
                    reducer.update(block)
            registry.observe(
                "sweep.reduce_block.seconds", reduce_span.wall_s
            )
            state["done"] += len(block)
        if progress is not None:
            progress(predictor.benchmark, state["done"], total)

    def on_chunk(task, record, payload) -> None:
        parked[task.index] = payload
        while state["next"] in parked:
            consume(parked.pop(state["next"]))
            state["next"] += 1

    _, report = run_chunks(
        tasks,
        workers=workers,
        policy=resilience.policy,
        journal=journal,
        faults=resilience.faults,
        validate=_validate_sweep_payload,
        on_chunk=on_chunk,
        encode=_encode_sweep_payload,
        decode=_decode_sweep_payload,
        keep_results=False,
        backend=resilience.backend,
        distributed=resilience.distributed,
        fingerprint=fingerprint,
    )
    if journal is not None:
        journal.discard()
    return report


def run_sweep(
    predictor: BlockPredictor,
    source: SweepSource,
    reducers: Sequence[SweepReducer],
    block_size: int = DEFAULT_BLOCK_SIZE,
    workers: int = 1,
    progress=None,
    resilience: Optional[ResilienceConfig] = None,
) -> SweepReport:
    """Sweep ``source`` through ``predictor``, folding into ``reducers``.

    Blocks are evaluated in sweep order and every reducer sees every
    block exactly once; with ``workers > 1`` chunks of blocks evaluate
    in parallel processes while reduction stays in-process and ordered,
    so results are identical to a serial run.  ``progress`` (if given)
    is called as ``progress(benchmark, done_points, total_points)`` after
    each consumed block or chunk.

    ``resilience`` (or any multi-worker run, which uses the default
    policy) routes the fan-out through
    :func:`repro.harness.resilience.run_chunks`: transient chunk failures
    retry with backoff, a journal path enables checkpoint/resume, and the
    report carries a ``run_report``.
    """
    if block_size < 1:
        raise SweepError(f"block_size must be positive, got {block_size}")
    if workers < 1:
        raise SweepError(f"workers must be positive, got {workers}")
    columns: Tuple[str, ...] = tuple(
        dict.fromkeys(name for r in reducers for name in r.columns)
    )
    total = len(source)
    tracer = get_tracer()
    registry = get_registry()
    mark = registry.snapshot()
    run_report = None

    with tracer.span(
        "sweep.run",
        benchmark=predictor.benchmark,
        n_points=total,
        block_size=block_size,
        workers=workers,
    ) as root:
        if resilience is not None or (workers > 1 and total > block_size):
            run_report = _run_sweep_resilient(
                predictor,
                source,
                reducers,
                block_size,
                workers,
                progress,
                columns,
                resilience or ResilienceConfig(),
            )
        else:
            done = 0
            for start, stop in _block_ranges(total, block_size):
                with tracer.span(
                    "sweep.predict_block", start=start, size=stop - start
                ) as predict_span:
                    bips, watts, raw = _evaluate_range(
                        predictor, source, start, stop, columns
                    )
                    block = _make_block(predictor, start, bips, watts, raw)
                with tracer.span(
                    "sweep.reduce_block", start=start, size=len(block)
                ) as reduce_span:
                    for reducer in reducers:
                        reducer.update(block)
                registry.increment("sweep.points", len(block))
                registry.increment("sweep.blocks")
                registry.observe(
                    "sweep.predict_block.seconds", predict_span.wall_s
                )
                registry.observe(
                    "sweep.reduce_block.seconds", reduce_span.wall_s
                )
                done += len(block)
                if progress is not None:
                    progress(predictor.benchmark, done, total)

    return SweepReport(
        benchmark=predictor.benchmark,
        n_points=total,
        block_size=block_size,
        workers=workers,
        elapsed_seconds=root.wall_s,
        results=[reducer.finalize(source) for reducer in reducers],
        run_report=run_report,
        metrics=merge_snapshots(
            registry.delta(mark),
            run_report.metrics if run_report is not None else None,
        ),
    )


def predict_source(
    predictor: BlockPredictor,
    source: SweepSource,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workers: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Full (bips, watts) vectors for a source, computed blockwise."""
    report = run_sweep(
        predictor,
        source,
        [CollectReducer(metrics=("bips", "watts"))],
        block_size=block_size,
        workers=workers,
    )
    collected = report.results[0]
    return collected.metric("bips"), collected.metric("watts")
