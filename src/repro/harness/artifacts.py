"""Artifact persistence: campaign caching.

Simulation campaigns are the expensive phase of every experiment, and the
benchmarks for different figures share one campaign.  Campaigns are
serialized to JSON keyed by a digest of everything that determines them
(scale knobs, space shape, benchmark list, library version), so repeated
bench/test invocations pay once.

The cache directory defaults to ``.repro_cache`` under the current
working directory; override via ``REPRO_CACHE_DIR``.  Delete the directory
to invalidate.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from ..designspace import DesignPoint, DesignSpace, sampling_space
from ..simulator import Simulator
from ..workloads import BENCHMARK_NAMES
from .campaign import Campaign, run_campaign
from .dataset import Dataset
from .scale import ScalePreset, get_scale

#: Bump to invalidate caches when simulator/workload semantics change.
CACHE_VERSION = 5


class ArtifactError(RuntimeError):
    """Raised for unreadable or mismatched artifacts."""


def cache_dir() -> Path:
    """Artifact cache directory (``REPRO_CACHE_DIR`` or ``.repro_cache``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _campaign_key(
    scale: ScalePreset, space: DesignSpace, benchmarks: Sequence[str],
    memory_mode: str,
) -> str:
    payload = {
        "version": CACHE_VERSION,
        "scale": {
            "trace_length": scale.trace_length,
            "n_train": scale.n_train,
            "n_validation": scale.n_validation,
            "seed": scale.seed,
        },
        "space": {
            "name": space.name,
            "parameters": [
                [p.name, list(p.values)] for p in space.parameters
            ],
        },
        "benchmarks": list(benchmarks),
        "memory_mode": memory_mode,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def save_campaign(campaign: Campaign, path: Path) -> None:
    """Serialize a campaign (points + metric columns) to JSON."""
    payload = {
        "version": CACHE_VERSION,
        "space": campaign.space.name,
        "scale": campaign.scale.name,
        "benchmarks": list(campaign.benchmarks),
        "train_points": [list(p.values) for p in campaign.train_points],
        "validation_points": [list(p.values) for p in campaign.validation_points],
        "metrics": {
            split: {
                bench: {
                    name: getattr(campaign, split)[bench].metrics[name].tolist()
                    for name in ("bips", "watts")
                }
                for bench in campaign.benchmarks
            }
            for split in ("train", "validation")
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(path)


def load_campaign(
    path: Path, space: DesignSpace, scale: ScalePreset
) -> Campaign:
    """Deserialize a campaign; raises ArtifactError on any mismatch."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ArtifactError(f"unreadable campaign artifact {path}: {error}")
    if payload.get("version") != CACHE_VERSION:
        raise ArtifactError(
            f"artifact version {payload.get('version')} != {CACHE_VERSION}"
        )

    def rebuild(raw_points) -> list:
        return [DesignPoint(space.names, tuple(values)) for values in raw_points]

    train_points = rebuild(payload["train_points"])
    validation_points = rebuild(payload["validation_points"])
    benchmarks = tuple(payload["benchmarks"])
    campaign = Campaign(
        space=space,
        scale=scale,
        benchmarks=benchmarks,
        train_points=train_points,
        validation_points=validation_points,
    )
    for split, points in (
        ("train", train_points),
        ("validation", validation_points),
    ):
        for bench in benchmarks:
            metrics = payload["metrics"][split][bench]
            getattr(campaign, split)[bench] = Dataset(
                benchmark=bench,
                space=space,
                points=points,
                metrics={
                    "bips": np.asarray(metrics["bips"], dtype=float),
                    "watts": np.asarray(metrics["watts"], dtype=float),
                },
            )
    return campaign


def cached_campaign(
    simulator: Optional[Simulator] = None,
    scale: Optional[ScalePreset] = None,
    space: Optional[DesignSpace] = None,
    benchmarks: Optional[Sequence[str]] = None,
    refresh: bool = False,
    workers: int = 1,
) -> Campaign:
    """Load the matching cached campaign or run and cache a fresh one."""
    simulator = simulator or Simulator()
    scale = scale or get_scale()
    space = space or sampling_space()
    names = tuple(benchmarks or BENCHMARK_NAMES)
    key = _campaign_key(scale, space, names, simulator.memory_mode)
    path = cache_dir() / f"campaign-{scale.name}-{key}.json"
    if path.exists() and not refresh:
        try:
            return load_campaign(path, space, scale)
        except ArtifactError:
            pass  # stale or corrupt: fall through and regenerate
    campaign = run_campaign(
        simulator, scale=scale, space=space, benchmarks=names, workers=workers
    )
    save_campaign(campaign, path)
    return campaign
