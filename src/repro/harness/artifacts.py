"""Artifact persistence: campaign caching.

Simulation campaigns are the expensive phase of every experiment, and the
benchmarks for different figures share one campaign.  Campaigns are
serialized to JSON keyed by a digest of everything that determines them
(scale knobs, space shape, benchmark list, library version), so repeated
bench/test invocations pay once.

The cache directory defaults to ``.repro_cache`` under the current
working directory; override via ``REPRO_CACHE_DIR``.  Delete the directory
to invalidate.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from ..designspace import DesignPoint, DesignSpace, sampling_space
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from ..simulator import Simulator
from ..workloads import BENCHMARK_NAMES
from .campaign import Campaign, run_campaign
from .dataset import Dataset
from .resilience import ResilienceConfig
from .scale import ScalePreset, get_scale

logger = logging.getLogger(__name__)

#: Bump to invalidate caches when simulator/workload semantics change.
CACHE_VERSION = 5


class ArtifactError(RuntimeError):
    """Raised for unreadable or mismatched artifacts."""


def cache_dir() -> Path:
    """Artifact cache directory (``REPRO_CACHE_DIR`` or ``.repro_cache``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _campaign_key(
    scale: ScalePreset, space: DesignSpace, benchmarks: Sequence[str],
    memory_mode: str,
) -> str:
    payload = {
        "version": CACHE_VERSION,
        "scale": {
            "trace_length": scale.trace_length,
            "n_train": scale.n_train,
            "n_validation": scale.n_validation,
            "seed": scale.seed,
        },
        "space": {
            "name": space.name,
            "parameters": [
                [p.name, list(p.values)] for p in space.parameters
            ],
        },
        "benchmarks": list(benchmarks),
        "memory_mode": memory_mode,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def save_campaign(campaign: Campaign, path: Path) -> None:
    """Serialize a campaign (points + metric columns) to JSON."""
    with get_tracer().span("artifacts.save", path=str(path)):
        _save_campaign(campaign, path)


def _save_campaign(campaign: Campaign, path: Path) -> None:
    payload = {
        "version": CACHE_VERSION,
        "space": campaign.space.name,
        "scale": campaign.scale.name,
        "benchmarks": list(campaign.benchmarks),
        "train_points": [list(p.values) for p in campaign.train_points],
        "validation_points": [list(p.values) for p in campaign.validation_points],
        "metrics": {
            split: {
                bench: {
                    name: getattr(campaign, split)[bench].metrics[name].tolist()
                    for name in ("bips", "watts")
                }
                for bench in campaign.benchmarks
            }
            for split in ("train", "validation")
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    # Crash safety: stage in a unique temp file in the same directory,
    # fsync, then atomically rename — an interrupt at any instant leaves
    # either the old artifact or the new one, never a truncated file.
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            logger.debug("could not remove temp artifact %s", tmp_name)
        raise


def load_campaign(
    path: Path, space: DesignSpace, scale: ScalePreset
) -> Campaign:
    """Deserialize a campaign; raises ArtifactError on any mismatch."""
    with get_tracer().span("artifacts.load", path=str(path)):
        return _load_campaign(path, space, scale)


def _load_campaign(
    path: Path, space: DesignSpace, scale: ScalePreset
) -> Campaign:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ArtifactError(f"unreadable campaign artifact {path}: {error}")
    if not isinstance(payload, dict):
        raise ArtifactError(
            f"malformed campaign artifact {path}: expected a JSON object, "
            f"got {type(payload).__name__}"
        )
    if payload.get("version") != CACHE_VERSION:
        raise ArtifactError(
            f"artifact version {payload.get('version')} != {CACHE_VERSION}"
        )

    def fetch(table, key, where: str):
        """Index into the payload; malformed shapes become ArtifactError."""
        try:
            return table[key]
        except (KeyError, TypeError, IndexError) as error:
            raise ArtifactError(
                f"malformed campaign artifact {path}: missing or malformed "
                f"key {key!r} in {where} ({type(error).__name__}: {error})"
            ) from error

    def rebuild(key) -> list:
        raw_points = fetch(payload, key, "payload")
        try:
            return [
                DesignPoint(space.names, tuple(values))
                for values in raw_points
            ]
        except (TypeError, ValueError) as error:
            raise ArtifactError(
                f"malformed campaign artifact {path}: bad point data under "
                f"{key!r}: {error}"
            ) from error

    train_points = rebuild("train_points")
    validation_points = rebuild("validation_points")
    benchmarks = tuple(fetch(payload, "benchmarks", "payload"))
    campaign = Campaign(
        space=space,
        scale=scale,
        benchmarks=benchmarks,
        train_points=train_points,
        validation_points=validation_points,
    )
    all_metrics = fetch(payload, "metrics", "payload")
    for split, points in (
        ("train", train_points),
        ("validation", validation_points),
    ):
        split_metrics = fetch(all_metrics, split, "'metrics'")
        for bench in benchmarks:
            metrics = fetch(split_metrics, bench, f"'metrics'/{split!r}")
            columns = {}
            for name in ("bips", "watts"):
                raw = fetch(metrics, name, f"'metrics'/{split!r}/{bench!r}")
                try:
                    column = np.asarray(raw, dtype=float)
                except (TypeError, ValueError) as error:
                    raise ArtifactError(
                        f"malformed campaign artifact {path}: non-numeric "
                        f"{name!r} column for {bench!r}/{split}: {error}"
                    ) from error
                if column.ndim != 1 or len(column) != len(points):
                    raise ArtifactError(
                        f"malformed campaign artifact {path}: {name!r} column "
                        f"for {bench!r}/{split} has shape {column.shape}, "
                        f"expected ({len(points)},)"
                    )
                columns[name] = column
            getattr(campaign, split)[bench] = Dataset(
                benchmark=bench,
                space=space,
                points=points,
                metrics=columns,
            )
    return campaign


def quarantine_artifact(path: Path, reason: str) -> Optional[Path]:
    """Move a bad artifact aside to ``<name>.corrupt`` for post-mortems.

    Returns the quarantine path, or None when the rename itself failed
    (the artifact is then left in place and will be overwritten).
    """
    target = path.with_suffix(path.suffix + ".corrupt")
    get_registry().increment("artifacts.quarantined")
    get_tracer().event(
        "artifacts.quarantine", path=str(path), reason=reason
    )
    try:
        os.replace(path, target)
    except OSError as error:
        logger.warning(
            "could not quarantine bad artifact %s (%s); it will be "
            "overwritten on regeneration", path, error,
        )
        return None
    logger.warning(
        "quarantined bad campaign artifact %s -> %s (%s); regenerating",
        path, target.name, reason,
    )
    return target


def cached_campaign(
    simulator: Optional[Simulator] = None,
    scale: Optional[ScalePreset] = None,
    space: Optional[DesignSpace] = None,
    benchmarks: Optional[Sequence[str]] = None,
    refresh: bool = False,
    workers: int = 1,
    resilience: Optional[ResilienceConfig] = None,
    batch_size: Optional[int] = None,
) -> Campaign:
    """Load the matching cached campaign or run and cache a fresh one.

    ``batch_size`` tunes the batched timing kernel on chunked runs; it
    never changes results, so it is absent from the cache key.

    A cached file that fails to load (truncated, stale version, missing
    keys) is quarantined to ``<name>.corrupt`` with a logged reason, then
    regenerated.  When ``resilience`` asks for resume without naming a
    journal, the journal lives next to the artifact
    (``<name>.journal.jsonl``) so an interrupted regeneration continues
    from completed chunks.
    """
    simulator = simulator or Simulator()
    scale = scale or get_scale()
    space = space or sampling_space()
    names = tuple(benchmarks or BENCHMARK_NAMES)
    key = _campaign_key(scale, space, names, simulator.memory_mode)
    path = cache_dir() / f"campaign-{scale.name}-{key}.json"
    registry = get_registry()
    if path.exists() and not refresh:
        try:
            campaign = load_campaign(path, space, scale)
        except ArtifactError as error:
            quarantine_artifact(path, str(error))
        else:
            registry.increment("artifacts.cache.hits")
            return campaign
    registry.increment("artifacts.cache.misses")
    if resilience is not None and resilience.journal_path is None:
        journal_path = path.with_suffix(".journal.jsonl")
        resilience = ResilienceConfig(
            policy=resilience.policy,
            journal_path=journal_path,
            resume=resilience.resume,
            faults=resilience.faults,
            backend=resilience.backend,
            distributed=resilience.distributed,
        )
        if refresh and journal_path.exists():
            journal_path.unlink()
    campaign = run_campaign(
        simulator,
        scale=scale,
        space=space,
        benchmarks=names,
        workers=workers,
        resilience=resilience,
        batch_size=batch_size,
    )
    save_campaign(campaign, path)
    return campaign
