"""Datasets: design points with simulated metrics.

A :class:`Dataset` is the tabular bridge between the simulator and the
regression layer: encoded predictor columns (one per design parameter)
plus observed metric columns (bips, watts), keyed for one benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..designspace import DesignEncoder, DesignPoint, DesignSpace
from ..simulator.results import SimulationResult


class DatasetError(ValueError):
    """Raised for inconsistent dataset construction."""


@dataclass
class Dataset:
    """Observations for one benchmark over a set of design points."""

    benchmark: str
    space: DesignSpace
    points: List[DesignPoint]
    metrics: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.points)
        for name, column in self.metrics.items():
            if len(column) != n:
                raise DatasetError(
                    f"metric {name!r} has {len(column)} rows for {n} points"
                )
        self._encoder = DesignEncoder(self.space)

    def __len__(self) -> int:
        return len(self.points)

    def predictor_columns(self) -> Dict[str, np.ndarray]:
        """Encoded predictor columns keyed by parameter name."""
        matrix = self._encoder.encode(self.points)
        return {
            name: matrix[:, j]
            for j, name in enumerate(self._encoder.feature_names)
        }

    def columns(self) -> Dict[str, np.ndarray]:
        """Predictors + metrics — the mapping ``fit_ols`` consumes."""
        data = self.predictor_columns()
        overlap = set(data) & set(self.metrics)
        if overlap:
            raise DatasetError(f"metric names collide with predictors: {overlap}")
        data.update(self.metrics)
        return data

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """New dataset restricted to the given row indices."""
        indices = list(indices)
        return Dataset(
            benchmark=self.benchmark,
            space=self.space,
            points=[self.points[i] for i in indices],
            metrics={k: v[indices] for k, v in self.metrics.items()},
        )

    @classmethod
    def from_results(
        cls,
        benchmark: str,
        space: DesignSpace,
        points: Sequence[DesignPoint],
        results: Sequence[SimulationResult],
    ) -> "Dataset":
        """Assemble a dataset from simulation results (order-aligned)."""
        if len(points) != len(results):
            raise DatasetError(
                f"{len(points)} points but {len(results)} results"
            )
        for result in results:
            if result.watts is None:
                raise DatasetError(
                    "results must carry power; run them through a PowerModel"
                )
        return cls(
            benchmark=benchmark,
            space=space,
            points=list(points),
            metrics={
                "bips": np.array([r.bips for r in results]),
                "watts": np.array([r.watts for r in results]),
            },
        )
