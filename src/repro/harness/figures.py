"""Figure data extraction and text rendering.

The paper's figures are boxplot panels, scatter characterizations and
line series.  Benchmarks and examples regenerate the *data* of each figure
and render it as text: a boxplot row per benchmark, a series per curve.
Nothing here depends on a plotting backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..regression.validation import BoxplotStats


@dataclass(frozen=True)
class Series:
    """One named line of (x, y) pairs."""

    name: str
    x: tuple
    y: tuple

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: {len(self.x)} x vs {len(self.y)} y"
            )


def render_series(series: Series, precision: int = 3) -> str:
    """One series as a 'name: (x, y) ...' line."""
    pairs = " ".join(
        f"({x:g}, {y:.{precision}f})" for x, y in zip(series.x, series.y)
    )
    return f"{series.name}: {pairs}"


def render_boxplot(label: str, stats: BoxplotStats, percent: bool = False) -> str:
    """One boxplot as text: whiskers, quartiles, median, outlier count."""
    scale = 100.0 if percent else 1.0
    suffix = "%" if percent else ""
    return (
        f"{label:>10s}: [{stats.whisker_low * scale:6.2f}{suffix} "
        f"| {stats.q1 * scale:6.2f}{suffix} "
        f"| {stats.median * scale:6.2f}{suffix} "
        f"| {stats.q3 * scale:6.2f}{suffix} "
        f"| {stats.whisker_high * scale:6.2f}{suffix}] "
        f"outliers={len(stats.outliers)} n={stats.n}"
    )


def render_boxplot_panel(
    title: str, panel: Dict[str, BoxplotStats], percent: bool = False
) -> str:
    """A labelled stack of boxplots (one per benchmark), like Figure 1."""
    lines = [title]
    lines += [render_boxplot(label, stats, percent) for label, stats in panel.items()]
    return "\n".join(lines)


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Coarse ASCII scatter plot (Figure 2-style characterizations)."""
    if len(xs) != len(ys):
        raise ValueError(f"{len(xs)} x values vs {len(ys)} y values")
    if not xs:
        raise ValueError("nothing to plot")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(int((x - x_min) / x_span * (width - 1)), width - 1)
        row = min(int((y - y_min) / y_span * (height - 1)), height - 1)
        grid[height - 1 - row][col] = "*"
    lines = ["".join(row) for row in grid]
    header = (
        f"{y_label} ({y_min:.3g}..{y_max:.3g}) vs {x_label} ({x_min:.3g}..{x_max:.3g})"
    )
    return "\n".join([header] + lines)
