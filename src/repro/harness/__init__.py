"""Experiment harness: campaigns, datasets, caching, scale, rendering."""

from .artifacts import (
    ArtifactError,
    cache_dir,
    cached_campaign,
    load_campaign,
    save_campaign,
)
from .campaign import Campaign, fit_campaign_models, run_campaign
from .dataset import Dataset, DatasetError
from .figures import (
    Series,
    ascii_scatter,
    render_boxplot,
    render_boxplot_panel,
    render_series,
)
from .report import generate_report, write_report
from .scale import PRESETS, ScaleError, ScalePreset, get_scale
from .sweep import (
    BlockPredictor,
    CollectReducer,
    GroupedMetricReducer,
    ParetoFrontierReducer,
    PointSweepSource,
    SpaceSweepSource,
    SweepBlock,
    SweepError,
    SweepReducer,
    SweepReport,
    SweepSource,
    TopKReducer,
    discretized_frontier,
    pareto_indices,
    predict_source,
    run_sweep,
)
from .tables import render_design_point, render_table

__all__ = [
    "Campaign",
    "run_campaign",
    "fit_campaign_models",
    "Dataset",
    "DatasetError",
    "cached_campaign",
    "save_campaign",
    "load_campaign",
    "cache_dir",
    "ArtifactError",
    "ScalePreset",
    "ScaleError",
    "PRESETS",
    "get_scale",
    "BlockPredictor",
    "SweepSource",
    "SpaceSweepSource",
    "PointSweepSource",
    "SweepBlock",
    "SweepReducer",
    "SweepReport",
    "SweepError",
    "ParetoFrontierReducer",
    "TopKReducer",
    "GroupedMetricReducer",
    "CollectReducer",
    "pareto_indices",
    "discretized_frontier",
    "run_sweep",
    "predict_source",
    "render_table",
    "render_design_point",
    "Series",
    "render_series",
    "render_boxplot",
    "render_boxplot_panel",
    "ascii_scatter",
    "generate_report",
    "write_report",
]
