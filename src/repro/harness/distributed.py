"""Coordinator-less distributed work stealing for the resilient executor.

:func:`repro.harness.resilience.run_chunks` fans chunks over a process
pool owned by one driver.  This module is the ``backend="distributed"``
alternative: N independent worker processes — spawned by the driver,
attached later with ``repro workers spawn``, possibly on different hosts
sharing one directory — coordinate through *files only*:

- **Lease files** (``leases/chunk-N.lease``) grant one worker the right
  to execute a chunk.  Claims are atomic creates (write a private file,
  ``os.link`` it into place — the link fails like ``O_CREAT|O_EXCL`` if
  a lease exists); owners refresh the lease mtime from a heartbeat
  thread; a lease whose mtime is older than ``lease_ttl`` is *stolen*
  with ``os.replace`` and a **fencing token** one higher than the
  stale owner's.
- **Journal shards** (``shards/<worker>.jsonl``) are per-worker
  append-only checksummed journals (the same line format as
  :class:`~repro.harness.resilience.Journal`) holding each completed
  chunk's payload, metrics, worker id, fencing token, and sequence
  number.
- **Done markers** (``done/chunk-N.done``, ``O_CREAT|O_EXCL``) tell
  other workers a chunk is finished; **failed markers** abort the run;
  a **drain flag** asks every worker to exit.

Nothing is ever coordinated in memory, so any worker (or the driver)
can crash at any point and the survivors finish the run.  Duplicated
completions — a zombie worker finishing a chunk that was stolen from it
— are *allowed* and resolved at merge time: for each chunk the record
with the highest fencing token wins (ties: lowest worker id, then
lowest sequence number), so a stale worker can never clobber a newer
result and metrics merge exactly once.  The merge
(:func:`merge_shard_records`) is a pure, deterministic function of the
shard record *set*: any interleaving, duplication, or reordering of
shards yields the identical ``(results, RunReport)`` a serial run
produces.

Observability: every worker counts ``distributed.chunks_claimed`` /
``chunks_stolen`` / ``chunks_expired`` / ``lease_contention`` /
``chunks_completed`` and gauges ``distributed.heartbeat_age_s``
(labelled ``worker=<id>``); the snapshots ship in a final per-shard
worker record and merge into ``RunReport.metrics``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import pickle
import shutil
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import isolated_registry, merge_snapshots
from ..obs.tracing import Stopwatch, get_tracer
from .resilience import (
    ChunkFailure,
    ChunkRecord,
    ChunkTask,
    DistributedConfig,
    FaultPlan,
    Journal,
    JournalFingerprintError,
    ResilienceError,
    RetryPolicy,
    RunReport,
    _WORKER_FAULT_KINDS,
    _ChunkEnvelope,
    _line_for,
    _run_chunk,
    append_record,
    read_journal_records,
)

logger = logging.getLogger(__name__)

#: Bump when the run-directory layout or shard record format changes.
PROTOCOL_VERSION = 1

#: Lease-protocol fault kinds interpreted by the worker loop (the
#: remaining :data:`~repro.harness.resilience.FAULT_KINDS` fire inside
#: ``_run_chunk`` as usual).
_PROTOCOL_FAULT_KINDS = ("lease_expiry", "zombie", "torn_write")

_MANIFEST = "manifest.json"
_BUNDLE = "tasks.pkl"
_DRAIN = "drain"


class _SimulatedCrash(Exception):
    """Internal: a ``torn_write`` fault 'killed' this worker session."""


# -- run-directory layout ------------------------------------------------------


def _leases_dir(run_dir: Path) -> Path:
    return run_dir / "leases"


def _done_dir(run_dir: Path) -> Path:
    return run_dir / "done"


def _failed_dir(run_dir: Path) -> Path:
    return run_dir / "failed"


def _shards_dir(run_dir: Path) -> Path:
    return run_dir / "shards"


def _workers_dir(run_dir: Path) -> Path:
    return run_dir / "workers"


def _fired_dir(run_dir: Path) -> Path:
    return run_dir / "fired"


def _tmp_dir(run_dir: Path) -> Path:
    return run_dir / "tmp"


def _lease_path(run_dir: Path, index: int) -> Path:
    return _leases_dir(run_dir) / f"chunk-{index:06d}.lease"


def _done_path(run_dir: Path, index: int) -> Path:
    return _done_dir(run_dir) / f"chunk-{index:06d}.done"


def _failed_path(run_dir: Path, index: int) -> Path:
    return _failed_dir(run_dir) / f"chunk-{index:06d}.json"


def _drain_path(run_dir: Path) -> Path:
    return run_dir / _DRAIN


def default_run_dir(fingerprint: str) -> Path:
    """The shared coordination directory derived for one run fingerprint.

    Lives under the artifact cache (``REPRO_CACHE_DIR``), so driver and
    locally attached workers agree on it without configuration.
    """
    from .artifacts import cache_dir

    return cache_dir() / "distributed" / fingerprint


def _write_atomic(path: Path, data: bytes) -> None:
    """Write a file so readers never observe a partial state."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _create_marker(path: Path) -> bool:
    """``O_CREAT|O_EXCL`` marker creation; False when it already exists."""
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    os.close(fd)
    return True


# -- the work bundle -----------------------------------------------------------


@dataclass(frozen=True)
class WorkBundle:
    """Everything a worker needs to execute chunks, pickled into the run dir.

    Workers are spawned with nothing but the run directory: the bundle
    carries the task list (functions, arguments, sizes), the retry
    policy, the fault schedule, and the validate/encode hooks, all bound
    to one ``fingerprint`` so a worker can never execute against a stale
    layout.
    """

    fingerprint: str
    tasks: Tuple[ChunkTask, ...]
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    faults: Optional[FaultPlan] = None
    validate: Optional[Callable] = None
    encode: Optional[Callable] = None


def init_run_dir(
    run_dir: Path, bundle: WorkBundle, config: DistributedConfig
) -> Path:
    """Create (or re-open) the shared coordination directory for one run.

    Idempotent: an existing directory whose manifest carries the same
    fingerprint is reused as-is — done markers and shards from a crashed
    earlier driver keep their value, which is what makes the driver
    itself crash-safe.  A manifest bound to a *different* fingerprint
    raises :class:`~repro.harness.resilience.JournalFingerprintError`.
    """
    run_dir = Path(run_dir)
    for sub in (
        _leases_dir,
        _done_dir,
        _failed_dir,
        _shards_dir,
        _workers_dir,
        _fired_dir,
        _tmp_dir,
    ):
        sub(run_dir).mkdir(parents=True, exist_ok=True)
    manifest_path = run_dir / _MANIFEST
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("fingerprint") != bundle.fingerprint:
            raise JournalFingerprintError(
                f"run directory {run_dir} belongs to fingerprint "
                f"{manifest.get('fingerprint')}, but this run's fingerprint "
                f"is {bundle.fingerprint}; use a fresh --run-dir"
            )
        return run_dir
    _write_atomic(run_dir / _BUNDLE, pickle.dumps(bundle))
    manifest = {
        "version": PROTOCOL_VERSION,
        "fingerprint": bundle.fingerprint,
        "n_tasks": len(bundle.tasks),
        "lease_ttl": config.lease_ttl,
        "heartbeat_interval": config.heartbeat_interval,
        "poll_interval": config.poll_interval,
        "created": time.time(),
    }
    # The manifest is written last: its presence tells waiting workers
    # the bundle is complete and the directory is open for claiming.
    _write_atomic(
        manifest_path, json.dumps(manifest, sort_keys=True).encode("utf-8")
    )
    return run_dir


def _load_manifest(run_dir: Path, timeout: float) -> dict:
    """Wait for the driver's manifest (workers may start first)."""
    deadline = time.monotonic() + timeout
    manifest_path = Path(run_dir) / _MANIFEST
    while True:
        if manifest_path.exists():
            return json.loads(manifest_path.read_text())
        if time.monotonic() >= deadline:
            raise ResilienceError(
                f"no manifest in {run_dir} after {timeout:.0f}s; "
                "was the run initialized by a driver?"
            )
        time.sleep(0.05)


# -- leases --------------------------------------------------------------------


def _read_lease(path: Path) -> Optional[dict]:
    """The lease body plus its mtime, or None when no lease exists.

    A half-written body (impossible via the link/replace protocol, but
    cheap to tolerate) degrades to an anonymous token-0 lease that any
    worker may steal once stale.
    """
    try:
        raw = path.read_text()
        mtime = path.stat().st_mtime
    except OSError:
        return None
    try:
        body = json.loads(raw)
        if not isinstance(body, dict):
            body = {}
    except json.JSONDecodeError:
        body = {}
    return {
        "worker": body.get("worker"),
        "token": int(body.get("token", 0)),
        "mtime": mtime,
    }


class _Heartbeat:
    """Daemon thread refreshing the mtime of every lease this worker owns.

    Ownership is re-verified on every beat by reading the lease body: a
    lease that was stolen (different worker or token) is silently
    dropped — the old owner keeps executing, becoming a zombie whose
    eventual record loses the fencing-token comparison at merge time.
    The largest observed pre-refresh age lands in the
    ``distributed.heartbeat_age_s`` gauge.
    """

    def __init__(self, worker_id: str, interval: float, registry) -> None:
        self.worker_id = worker_id
        self.interval = interval
        self.registry = registry
        self._owned: Dict[Path, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{worker_id}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def own(self, path: Path, token: int) -> None:
        with self._lock:
            self._owned[path] = token

    def disown(self, path: Path) -> None:
        with self._lock:
            self._owned.pop(path, None)

    def beat_once(self) -> None:
        with self._lock:
            owned = list(self._owned.items())
        now = time.time()
        for path, token in owned:
            lease = _read_lease(path)
            if (
                lease is None
                or lease["worker"] != self.worker_id
                or lease["token"] != token
            ):
                # Stolen (or released); stop refreshing it.
                self.disown(path)
                self.registry.increment(
                    "distributed.chunks_expired", worker=self.worker_id
                )
                continue
            age = max(0.0, now - lease["mtime"])
            gauge = self.registry.gauge(
                "distributed.heartbeat_age_s", worker=self.worker_id
            )
            gauge.set(max(gauge.value, age))
            try:
                os.utime(path)
            except OSError:
                self.disown(path)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat_once()


def _try_claim(
    run_dir: Path,
    index: int,
    worker_id: str,
    lease_ttl: float,
    registry,
) -> Optional[int]:
    """Claim (or steal) the lease for one chunk; returns the fencing token.

    - No lease: atomically create one at token 1 (temp file + ``os.link``,
      which fails like ``O_CREAT|O_EXCL`` when another worker won).
    - Fresh lease held by another worker: back off (None).
    - Stale lease (mtime older than ``lease_ttl``): steal it with
      ``os.replace`` at the old token + 1, then read back to confirm we
      were the last stealer.
    """
    lease = _lease_path(run_dir, index)
    existing = _read_lease(lease)
    if existing is not None and existing["worker"] == worker_id:
        os.utime(lease)
        return existing["token"]
    if existing is not None:
        age = time.time() - existing["mtime"]
        if age <= lease_ttl:
            return None
        token = existing["token"] + 1
    else:
        token = 1
    body = json.dumps({"worker": worker_id, "token": token}).encode("utf-8")
    tmp = _tmp_dir(run_dir) / f"{worker_id}-{index}.claim"
    _write_atomic(tmp, body)
    try:
        if existing is None:
            try:
                os.link(tmp, lease)
            except FileExistsError:
                registry.increment(
                    "distributed.lease_contention", worker=worker_id
                )
                return None
            registry.increment(
                "distributed.chunks_claimed", worker=worker_id
            )
            return token
        os.replace(tmp, lease)
        confirmed = _read_lease(lease)
        if (
            confirmed is not None
            and confirmed["worker"] == worker_id
            and confirmed["token"] == token
        ):
            registry.increment(
                "distributed.chunks_claimed", worker=worker_id
            )
            registry.increment(
                "distributed.chunks_stolen", worker=worker_id
            )
            return token
        registry.increment("distributed.lease_contention", worker=worker_id)
        return None
    finally:
        # Best-effort: the temp file was either linked into place or is
        # orphaned in tmp/; a leftover never blocks later claims.
        with contextlib.suppress(OSError):
            os.unlink(tmp)


def _release_lease(run_dir: Path, index: int, worker_id: str) -> None:
    """Drop our lease; never someone else's (the chunk may be re-leased)."""
    lease = _lease_path(run_dir, index)
    body = _read_lease(lease)
    if body is not None and body["worker"] == worker_id:
        # A concurrent thief may have replaced the lease between the read
        # and the unlink; losing that race is the protocol working.
        with contextlib.suppress(OSError):
            lease.unlink()


def _expire_own_lease(run_dir: Path, index: int, lease_ttl: float) -> None:
    """Fault helper: backdate our lease so it is instantly stealable."""
    lease = _lease_path(run_dir, index)
    stale = time.time() - 2.0 * lease_ttl
    # If the lease vanished (already stolen) the fault's goal is met.
    with contextlib.suppress(OSError):
        os.utime(lease, (stale, stale))


# -- the worker ----------------------------------------------------------------


def _worker_order(tasks: Sequence[ChunkTask], worker_id: str) -> List[ChunkTask]:
    """Rotate the scan order per worker so claims rarely collide."""
    if not tasks:
        return []
    start = int(
        hashlib.sha256(worker_id.encode("utf-8")).hexdigest()[:8], 16
    ) % len(tasks)
    return list(tasks[start:]) + list(tasks[:start])


def _append_torn(shard: Path, body: dict) -> None:
    """Fault helper: append only a prefix of the record line (a torn write)."""
    line = _line_for(body)
    cut = max(1, len(line) // 2)
    shard.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(str(shard), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line[:cut])
        os.fsync(fd)
    finally:
        os.close(fd)


def _claim_protocol_fault(
    run_dir: Path, faults: Optional[FaultPlan], index: int, attempt: int
) -> Optional[str]:
    """The lease-protocol fault to fire now, exactly once per run.

    A ``fired/`` marker (``O_CREAT|O_EXCL``) makes each injected
    protocol fault fire exactly once across every worker, session, and
    retry — otherwise a torn write would recur forever as the chunk is
    re-claimed at attempt 1.
    """
    if faults is None:
        return None
    kind = faults.fault_for(index, attempt)
    if kind not in _PROTOCOL_FAULT_KINDS:
        return None
    marker = _fired_dir(run_dir) / f"{kind}-chunk-{index:06d}"
    if _create_marker(marker):
        return kind
    return None


def _wait_for_other_completion(
    run_dir: Path, index: int, poll: float, deadline: float
) -> None:
    """Zombie fault: park until another worker finishes the chunk."""
    while time.monotonic() < deadline:
        if (
            _done_path(run_dir, index).exists()
            or _drain_path(run_dir).exists()
            or any(True for _ in _failed_dir(run_dir).glob("*.json"))
        ):
            return
        time.sleep(poll)


class _WorkerSession:
    """One worker process's claim-execute-record loop over a run directory."""

    def __init__(
        self,
        run_dir: Path,
        worker_id: str,
        bundle: WorkBundle,
        manifest: dict,
        registry,
        max_chunks: Optional[int] = None,
    ):
        self.run_dir = Path(run_dir)
        self.worker_id = worker_id
        self.bundle = bundle
        self.lease_ttl = float(manifest["lease_ttl"])
        self.heartbeat_interval = float(manifest["heartbeat_interval"])
        self.poll_interval = float(manifest["poll_interval"])
        self.registry = registry
        self.max_chunks = max_chunks
        self.shard = _shards_dir(self.run_dir) / f"{worker_id}.jsonl"
        self.heartbeat = _Heartbeat(
            worker_id, self.heartbeat_interval, registry
        )
        self.seq = 0
        self.completed: List[int] = []
        self.crashed = False

    # -- shard records -----------------------------------------------------

    def _append_shard(self, body: dict) -> None:
        append_record(self.shard, body)

    def _chunk_body(
        self, task: ChunkTask, attempt: int, token: int, envelope
    ) -> dict:
        payload = envelope.payload
        if self.bundle.encode is not None:
            payload = self.bundle.encode(payload)
        self.seq += 1
        return {
            "kind": "chunk",
            "index": task.index,
            "attempts": attempt,
            "payload": payload,
            "metrics": envelope.metrics,
            "wall_s": envelope.wall_s,
            "cpu_s": envelope.cpu_s,
            "worker": self.worker_id,
            "token": token,
            "seq": self.seq,
        }

    # -- control flow ------------------------------------------------------

    def _should_stop(self) -> bool:
        if _drain_path(self.run_dir).exists():
            return True
        return any(True for _ in _failed_dir(self.run_dir).glob("*.json"))

    def _record_failed(self, task: ChunkTask, attempt: int, error) -> None:
        _write_atomic(
            _failed_path(self.run_dir, task.index),
            json.dumps(
                {
                    "chunk": task.index,
                    "meta": [str(m) for m in task.meta],
                    "attempts": attempt,
                    "worker": self.worker_id,
                    "error": f"{type(error).__name__}: {error}",
                },
                sort_keys=True,
            ).encode("utf-8"),
        )

    def _execute(self, task: ChunkTask, token: int) -> bool:
        """Run one claimed chunk to completion (True) or failure (False)."""
        lease = _lease_path(self.run_dir, task.index)
        self.heartbeat.own(lease, token)
        policy = self.bundle.policy
        attempt = 0
        try:
            while True:
                attempt += 1
                protocol = _claim_protocol_fault(
                    self.run_dir, self.bundle.faults, task.index, attempt
                )
                if protocol in ("lease_expiry", "zombie"):
                    # Stop defending the lease and backdate it: any other
                    # worker may now steal the chunk while we keep going.
                    self.heartbeat.disown(lease)
                    _expire_own_lease(self.run_dir, task.index, self.lease_ttl)
                    self.registry.increment(
                        "distributed.chunks_expired", worker=self.worker_id
                    )
                if protocol == "zombie":
                    _wait_for_other_completion(
                        self.run_dir,
                        task.index,
                        poll=self.heartbeat_interval,
                        deadline=time.monotonic() + 60.0 * self.lease_ttl,
                    )
                worker_fault = None
                if self.bundle.faults is not None:
                    kind = self.bundle.faults.fault_for(task.index, attempt)
                    if kind in _WORKER_FAULT_KINDS:
                        worker_fault = kind
                try:
                    result = _run_chunk(task.fn, task.args, worker_fault)
                    envelope = (
                        result
                        if isinstance(result, _ChunkEnvelope)
                        else _ChunkEnvelope(payload=result)
                    )
                    if self.bundle.validate is not None:
                        self.bundle.validate(task, envelope.payload)
                except Exception as error:  # noqa: BLE001 - classified below
                    if (
                        policy.classify(error) == "permanent"
                        or attempt >= policy.max_attempts
                    ):
                        self._record_failed(task, attempt, error)
                        return False
                    time.sleep(policy.backoff_seconds(task.index, attempt))
                    continue
                body = self._chunk_body(task, attempt, token, envelope)
                if protocol == "torn_write":
                    # A crash mid-append: the shard ends in a torn line
                    # and this worker session dies without a done marker
                    # or a released lease — survivors steal the chunk.
                    _append_torn(self.shard, body)
                    self.crashed = True
                    raise _SimulatedCrash(
                        f"torn_write fault on chunk {task.index}"
                    )
                self._append_shard(body)
                _create_marker(_done_path(self.run_dir, task.index))
                self.registry.increment(
                    "distributed.chunks_completed", worker=self.worker_id
                )
                self.completed.append(task.index)
                return True
        finally:
            self.heartbeat.disown(lease)
            if not self.crashed:
                _release_lease(self.run_dir, task.index, self.worker_id)

    def run(self) -> dict:
        """The main loop: scan, claim, execute until done/drained/failed."""
        ordered = _worker_order(self.bundle.tasks, self.worker_id)
        registration = _workers_dir(self.run_dir) / f"{self.worker_id}.json"
        _write_atomic(
            registration,
            json.dumps(
                {
                    "worker": self.worker_id,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "started": time.time(),
                },
                sort_keys=True,
            ).encode("utf-8"),
        )
        self._append_shard(
            {
                "kind": "header",
                "version": PROTOCOL_VERSION,
                "fingerprint": self.bundle.fingerprint,
                "worker": self.worker_id,
            }
        )
        self.heartbeat.start()
        try:
            while not self._should_stop():
                pending = [
                    task
                    for task in ordered
                    if not _done_path(self.run_dir, task.index).exists()
                ]
                if not pending:
                    break
                progressed = False
                for task in pending:
                    if self._should_stop():
                        break
                    if _done_path(self.run_dir, task.index).exists():
                        continue
                    token = _try_claim(
                        self.run_dir,
                        task.index,
                        self.worker_id,
                        self.lease_ttl,
                        self.registry,
                    )
                    if token is None:
                        continue
                    if _done_path(self.run_dir, task.index).exists():
                        # Lost race: completed between scan and claim.
                        _release_lease(
                            self.run_dir, task.index, self.worker_id
                        )
                        continue
                    self._execute(task, token)
                    progressed = True
                    if (
                        self.max_chunks is not None
                        and len(self.completed) >= self.max_chunks
                    ):
                        return self._summary()
                if not progressed:
                    # Everything pending is leased elsewhere; wait for
                    # done markers or lease expiry.
                    time.sleep(self.poll_interval)
        except _SimulatedCrash as crash:
            self.crashed = True
            logger.warning("worker %s: %s", self.worker_id, crash)
        finally:
            self.heartbeat.stop()
            if not self.crashed:
                # A worker record carries this session's lease-protocol
                # metrics into the merged report, exactly once.
                self.seq += 1
                self._append_shard(
                    {
                        "kind": "worker",
                        "worker": self.worker_id,
                        "seq": self.seq,
                        "metrics": self.registry.snapshot(),
                    }
                )
                # Registration cleanup is cosmetic; status just shows a
                # dead worker if the unlink loses to a crash.
                with contextlib.suppress(OSError):
                    registration.unlink()
        return self._summary()

    def _summary(self) -> dict:
        return {
            "worker": self.worker_id,
            "completed": list(self.completed),
            "crashed": self.crashed,
        }


def run_worker(
    run_dir,
    worker_id: Optional[str] = None,
    max_chunks: Optional[int] = None,
    manifest_timeout: float = 60.0,
) -> dict:
    """Run one worker session against a shared run directory.

    Blocks until every chunk has a done marker, a failed marker or the
    drain flag appears, or ``max_chunks`` chunks were completed by this
    session.  Returns a summary dict (``worker``, ``completed``,
    ``crashed``).  Safe to run any number of times, concurrently, on any
    host sharing the directory.
    """
    run_dir = Path(run_dir)
    manifest = _load_manifest(run_dir, manifest_timeout)
    bundle: WorkBundle = pickle.loads((run_dir / _BUNDLE).read_bytes())
    if bundle.fingerprint != manifest.get("fingerprint"):
        raise ResilienceError(
            f"bundle/manifest fingerprint mismatch in {run_dir}"
        )
    if worker_id is None:
        worker_id = f"w{os.getpid()}-{socket.gethostname()}"
    with isolated_registry() as registry:
        session = _WorkerSession(
            run_dir,
            worker_id,
            bundle,
            manifest,
            registry,
            max_chunks=max_chunks,
        )
        return session.run()


def _worker_process_main(run_dir: str, worker_id: str) -> None:
    """Entrypoint of a spawned distributed worker process."""
    try:
        run_worker(run_dir, worker_id=worker_id)
    except Exception:  # noqa: BLE001 - last-chance logging in a child
        logger.exception("distributed worker %s failed", worker_id)
        raise


# -- worker management (drives the ``repro workers`` CLI) ----------------------


def spawn_workers(
    run_dir, count: int, prefix: str = "ext"
) -> List[dict]:
    """Launch detached worker processes attached to a run directory.

    Each worker is an independent ``python`` process surviving this
    caller (``start_new_session``), logging to
    ``workers/<id>.log``.  Returns ``[{"worker", "pid"}, ...]``.
    """
    run_dir = Path(run_dir)
    if count < 1:
        raise ResilienceError("count must be >= 1")
    _workers_dir(run_dir).mkdir(parents=True, exist_ok=True)
    package_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(package_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    spawned = []
    for i in range(count):
        worker_id = f"{prefix}{i}-{os.getpid()}"
        log_path = _workers_dir(run_dir) / f"{worker_id}.log"
        with open(log_path, "ab") as log:
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    "import sys; from repro.harness.distributed import "
                    "run_worker; run_worker(sys.argv[1], worker_id="
                    "sys.argv[2])",
                    str(run_dir),
                    worker_id,
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
                start_new_session=True,
            )
        spawned.append({"worker": worker_id, "pid": process.pid})
    return spawned


def workers_status(run_dir) -> dict:
    """A point-in-time snapshot of one distributed run's coordination state.

    Returns chunk progress (total/done/failed), the registered workers
    (with same-host liveness), and every live lease with its owner,
    fencing token, and heartbeat age — the operator's view behind
    ``repro workers status``.
    """
    run_dir = Path(run_dir)
    manifest_path = run_dir / _MANIFEST
    manifest = (
        json.loads(manifest_path.read_text())
        if manifest_path.exists()
        else {}
    )
    host = socket.gethostname()
    workers = []
    for path in sorted(_workers_dir(run_dir).glob("*.json")):
        try:
            info = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        alive: Optional[bool] = None
        if info.get("host") == host and info.get("pid"):
            try:
                os.kill(int(info["pid"]), 0)
                alive = True
            except OSError:
                alive = False
        info["alive"] = alive
        workers.append(info)
    now = time.time()
    leases = []
    for path in sorted(_leases_dir(run_dir).glob("*.lease")):
        lease = _read_lease(path)
        if lease is None:
            continue
        leases.append(
            {
                "chunk": int(path.stem.split("-")[-1]),
                "worker": lease["worker"],
                "token": lease["token"],
                "age_s": round(max(0.0, now - lease["mtime"]), 3),
            }
        )
    failed = sorted(
        int(path.stem.split("-")[-1])
        for path in _failed_dir(run_dir).glob("*.json")
    )
    return {
        "fingerprint": manifest.get("fingerprint"),
        "tasks": {
            "total": manifest.get("n_tasks"),
            "done": sum(1 for _ in _done_dir(run_dir).glob("*.done")),
            "failed": failed,
        },
        "workers": workers,
        "leases": leases,
        "drain": _drain_path(run_dir).exists(),
    }


def drain(run_dir) -> None:
    """Raise the drain flag: every worker exits after its current chunk."""
    _create_marker(_drain_path(Path(run_dir)))


# -- deterministic merge -------------------------------------------------------


def read_shards(run_dir, fingerprint: str) -> Tuple[List[dict], List[dict]]:
    """All shard record bodies for one run, plus structured read warnings.

    Shards are read with the torn-tail-tolerant journal reader; shards
    bound to a different fingerprint are skipped with a warning.
    """
    records: List[dict] = []
    warnings: List[dict] = []
    for shard in sorted(_shards_dir(Path(run_dir)).glob("*.jsonl")):
        bodies, shard_warnings = read_journal_records(shard)
        warnings.extend(shard_warnings)
        if not bodies:
            continue
        header = bodies[0]
        if (
            header.get("kind") != "header"
            or header.get("fingerprint") != fingerprint
        ):
            warnings.append(
                {
                    "kind": "shard_fingerprint_mismatch",
                    "path": str(shard),
                    "line": 1,
                }
            )
            continue
        records.extend(bodies[1:])
    return records, warnings


def merge_shard_records(
    tasks: Sequence[ChunkTask], records: Sequence[dict]
) -> Tuple[Dict[int, dict], Dict[int, int], Dict[str, dict]]:
    """Fold shard records into per-chunk winners, deterministically.

    Pure function of the record *set*: records are first deduplicated by
    ``(worker, seq)`` (so replayed or re-read shards collapse), then for
    each chunk the winner is the record with the highest fencing token —
    last-write-wins, so a zombie's stale completion can never clobber
    the stealer's — with ties resolved by lowest worker id, then lowest
    sequence number.  Returns ``(winners by chunk index, duplicate
    record counts by chunk index, worker metrics by worker id)``; any
    interleaving, duplication, or reordering of the input yields
    identical output.
    """
    valid_indexes = {task.index for task in tasks}
    by_chunk: Dict[int, Dict[tuple, dict]] = {}
    worker_records: Dict[str, dict] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "chunk":
            index = record.get("index")
            if index not in valid_indexes:
                continue
            key = (str(record.get("worker")), int(record.get("seq", 0)))
            by_chunk.setdefault(index, {})[key] = record
        elif kind == "worker":
            worker = str(record.get("worker"))
            seq = int(record.get("seq", 0))
            held = worker_records.get(worker)
            if held is None or seq > int(held.get("seq", 0)):
                worker_records[worker] = record
    winners: Dict[int, dict] = {}
    duplicates: Dict[int, int] = {}
    for index, candidates in by_chunk.items():
        ordered = sorted(
            candidates.values(),
            key=lambda r: (
                -int(r.get("token", 0)),
                str(r.get("worker")),
                int(r.get("seq", 0)),
            ),
        )
        winners[index] = ordered[0]
        if len(candidates) > 1:
            duplicates[index] = len(candidates) - 1
    worker_metrics = {
        worker: record.get("metrics")
        for worker, record in sorted(worker_records.items())
        if record.get("metrics") is not None
    }
    return winners, duplicates, worker_metrics


# -- the driver ----------------------------------------------------------------


def _spawn_local(run_dir: Path, count: int) -> list:
    """Driver-side local worker processes (multiprocessing spawn)."""
    import multiprocessing

    context = multiprocessing.get_context("spawn")
    processes = []
    for i in range(count):
        worker_id = f"w{i}-{os.getpid()}"
        process = context.Process(
            target=_worker_process_main,
            args=(str(run_dir), worker_id),
            name=f"repro-worker-{worker_id}",
            daemon=False,
        )
        process.start()
        processes.append(process)
    return processes


def _remaining(run_dir: Path, tasks: Sequence[ChunkTask]) -> List[int]:
    return [
        task.index
        for task in tasks
        if not _done_path(run_dir, task.index).exists()
    ]


def _any_failed(run_dir: Path) -> bool:
    return any(True for _ in _failed_dir(run_dir).glob("*.json"))


def _wait_for_run(
    run_dir: Path,
    tasks: Sequence[ChunkTask],
    processes: list,
    config: DistributedConfig,
) -> None:
    """Poll until every chunk is done, one failed, or the timeout fires.

    If every driver-spawned worker died with work remaining (and no
    external workers will appear), the driver becomes the worker of
    last resort and finishes the run in-process — the distributed
    analogue of the pool backend's serial degradation.
    """
    deadline = (
        time.monotonic() + config.wait_timeout
        if config.wait_timeout is not None
        else None
    )
    sessions = 0
    while True:
        remaining = _remaining(run_dir, tasks)
        if not remaining or _any_failed(run_dir):
            return
        if processes and not any(p.is_alive() for p in processes):
            sessions += 1
            if sessions > len(tasks) + 2:
                raise ResilienceError(
                    f"distributed run stalled with {len(remaining)} "
                    f"chunk(s) remaining in {run_dir}"
                )
            logger.warning(
                "all spawned workers exited with %d chunk(s) remaining; "
                "driver finishing in-process",
                len(remaining),
            )
            run_worker(run_dir, worker_id=f"driver{os.getpid()}-{sessions}")
            continue
        if deadline is not None and time.monotonic() >= deadline:
            raise ResilienceError(
                f"distributed run did not complete within "
                f"{config.wait_timeout}s; {len(remaining)} chunk(s) "
                f"remaining in {run_dir}"
            )
        time.sleep(config.poll_interval)


def run_distributed_chunks(
    tasks: Sequence[ChunkTask],
    policy: RetryPolicy,
    journal: Optional[Journal],
    faults: Optional[FaultPlan],
    validate: Optional[Callable],
    on_chunk: Optional[Callable],
    encode: Optional[Callable],
    decode: Optional[Callable],
    keep_results: bool,
    config: DistributedConfig,
    fingerprint: str,
) -> Tuple[Optional[List[object]], RunReport]:
    """Drive one run through the work-stealing backend.

    The driver initializes the shared run directory, pre-marks chunks
    restored from ``journal`` as done, spawns ``config.spawn`` local
    workers, waits for completion, then deterministically merges the
    shards into the same ``(results, report)`` contract as
    :func:`~repro.harness.resilience.run_chunks` — results in task
    order, ``on_chunk`` fired per chunk, winners journaled for resume,
    metrics merged exactly once.
    """
    indexes = [task.index for task in tasks]
    if len(set(indexes)) != len(indexes):
        raise ResilienceError("chunk task indexes must be unique")
    tasks = list(tasks)
    records = {
        task.index: ChunkRecord(index=task.index, meta=task.meta)
        for task in tasks
    }
    report = RunReport(
        total_chunks=len(tasks),
        chunks=[records[task.index] for task in tasks],
    )
    resumed = dict(journal.completed) if journal is not None else {}
    if journal is not None:
        for warning in journal.warnings:
            report.events.append(
                {"name": "resilience.journal_warning", "attrs": warning}
            )

    derived_dir = config.run_dir is None
    run_dir = Path(
        config.run_dir
        if config.run_dir is not None
        else default_run_dir(fingerprint)
    )
    bundle = WorkBundle(
        fingerprint=fingerprint,
        tasks=tuple(tasks),
        policy=policy,
        faults=faults,
        validate=validate,
        encode=encode,
    )
    init_run_dir(run_dir, bundle, config)
    # A fresh driver session owns the run's lifecycle: clear a stale
    # drain flag (a previous driver always drains on exit) and stale
    # failure state so remaining chunks are retried; done markers and
    # shards are kept — completed work is never repeated.
    with contextlib.suppress(OSError):  # absent on a fresh run dir
        _drain_path(run_dir).unlink()
    for stale in _failed_dir(run_dir).glob("*.json"):
        # A racing worker may rewrite the marker; retry logic below
        # treats any surviving marker as current-session state anyway.
        with contextlib.suppress(OSError):
            stale.unlink()
    for index in resumed:
        if index in records:
            _create_marker(_done_path(run_dir, index))

    watch = Stopwatch().start()
    processes: list = []
    with get_tracer().span(
        "distributed.run",
        chunks=len(tasks),
        spawn=config.spawn,
        run_dir=str(run_dir),
    ) as root:
        try:
            if config.spawn:
                processes = _spawn_local(run_dir, config.spawn)
            _wait_for_run(run_dir, tasks, processes, config)
        finally:
            drain(run_dir)
            for process in processes:
                process.join(timeout=60.0)
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)

        shard_records, warnings = read_shards(run_dir, fingerprint)
        winners, duplicates, worker_metrics = merge_shard_records(
            tasks, shard_records
        )
        for warning in sorted(
            warnings, key=lambda w: (w["path"], w["line"])
        ):
            report.events.append(
                {"name": "resilience.journal_warning", "attrs": warning}
            )

        snapshots: List[Optional[dict]] = []
        results: Dict[int, object] = {}
        failure: Optional[Tuple[ChunkTask, str]] = None
        for task in tasks:
            record = records[task.index]
            if task.index in resumed:
                payload = resumed[task.index]
                payload = decode(payload) if decode is not None else payload
                record.status = "resumed"
                record.attempts = journal.attempts.get(task.index, 1)
                report.resumed += 1
                report.completed += 1
                snapshots.append(journal.metrics.get(task.index))
            elif task.index in winners:
                winner = winners[task.index]
                payload = winner.get("payload")
                attempts = int(winner.get("attempts", 1))
                if journal is not None:
                    journal.record(
                        task.index,
                        attempts,
                        payload,
                        metrics=winner.get("metrics"),
                    )
                payload = decode(payload) if decode is not None else payload
                record.status = "completed"
                record.attempts = attempts
                report.completed += 1
                if attempts > 1:
                    report.retried += 1
                snapshots.append(winner.get("metrics"))
                get_tracer().record_span(
                    "resilience.chunk",
                    float(winner.get("wall_s", 0.0)),
                    float(winner.get("cpu_s", 0.0)),
                    chunk=task.index,
                    attempts=attempts,
                    worker=str(winner.get("worker")),
                    meta=[str(m) for m in task.meta],
                )
                if task.index in duplicates:
                    report.events.append(
                        {
                            "name": "distributed.duplicate",
                            "attrs": {
                                "chunk": task.index,
                                "extra_records": duplicates[task.index],
                                "winner_worker": str(winner.get("worker")),
                                "winner_token": int(winner.get("token", 0)),
                            },
                        }
                    )
            else:
                failed_path = _failed_path(run_dir, task.index)
                reason = "no completion record"
                if failed_path.exists():
                    # An unreadable marker keeps the generic reason; the
                    # chunk is still reported failed either way.
                    with contextlib.suppress(OSError, json.JSONDecodeError):
                        info = json.loads(failed_path.read_text())
                        reason = info.get("error", reason)
                        record.attempts = int(info.get("attempts", 0))
                record.status = "failed"
                if failure is None:
                    failure = (task, reason)
                continue
            if keep_results:
                results[task.index] = payload
            if on_chunk is not None:
                on_chunk(task, record, payload)

        if report.resumed:
            report.events.append(
                {
                    "name": "resilience.resumed",
                    "attrs": {"chunks": report.resumed},
                }
            )
        snapshots.extend(worker_metrics.values())
        merged = merge_snapshots(*snapshots)
        if any(
            merged.get(kind)
            for kind in ("counters", "gauges", "histograms")
        ):
            report.metrics = merged
        report.events.append(
            {
                "name": "distributed.merged",
                "attrs": {
                    "workers": sorted(worker_metrics),
                    "records": len(shard_records),
                    "duplicates": sum(duplicates.values()),
                },
            }
        )
        report.elapsed_seconds = watch.stop().wall_s
        root.set_attr("completed", report.completed)
        root.set_attr("resumed", report.resumed)
        root.set_attr("duplicates", sum(duplicates.values()))

        if failure is not None:
            task, reason = failure
            meta = f" {task.meta}" if task.meta else ""
            message = f"chunk {task.index}{meta} failed: {reason}"
            report.failure = message
            report.events.append(
                {
                    "name": "resilience.chunk_failed",
                    "attrs": {"chunk": task.index, "reason": reason},
                }
            )
            raise ChunkFailure(message, report)

    if derived_dir:
        # The coordination directory is scratch state once the journal
        # and report carry everything; keep user-specified directories
        # (external workers may still be draining against them).
        shutil.rmtree(run_dir, ignore_errors=True)
    ordered = (
        [results[task.index] for task in tasks] if keep_results else None
    )
    return ordered, report
