"""Full-run report generation.

``repro report`` regenerates every experiment at the active scale and
writes a single markdown document — the machine-written companion to
EXPERIMENTS.md, useful for comparing scales or code revisions.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Sequence

from .scale import ScalePreset


def generate_report(
    ctx,
    experiment_ids: Optional[Sequence[str]] = None,
    title: str = "repro experiment report",
) -> str:
    """Run experiments against ``ctx`` and render a markdown report."""
    # Imported here: repro.experiments imports the studies package, which
    # imports this harness package at module load.
    from ..experiments import EXPERIMENTS, run_experiment

    ids = list(experiment_ids or EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")

    scale: ScalePreset = ctx.scale
    lines = [
        f"# {title}",
        "",
        f"- scale: `{scale.name}` (traces {scale.trace_length}, "
        f"train {scale.n_train}, validation {scale.n_validation}, "
        f"exploration {scale.exploration_limit or 'exhaustive'})",
        f"- benchmarks: {', '.join(ctx.benchmarks)}",
        f"- generated: {time.strftime('%Y-%m-%d %H:%M:%S')}",
        "",
    ]
    for experiment_id in ids:
        started = time.time()
        result = run_experiment(experiment_id, ctx=ctx)
        elapsed = time.time() - started
        lines += [
            f"## {result.id} — {result.title}",
            "",
            f"_regenerated in {elapsed:.1f}s_",
            "",
            "```",
            result.text,
            "```",
            "",
        ]
    return "\n".join(lines)


def write_report(
    ctx,
    path: Path,
    experiment_ids: Optional[Sequence[str]] = None,
) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(ctx, experiment_ids))
    return path
