"""Fault-tolerant chunk execution: journal, retries, degradation, faults.

The expensive phases of the reproduction — simulating sampled designs
(:func:`~repro.harness.campaign.run_campaign`) and sweeping the
exploration space (:func:`~repro.harness.sweep.run_sweep`) — share one
execution shape: a list of independent *chunks* fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  This module makes
that fan-out durable:

- **Journal** — an append-only JSONL file records every completed
  chunk's payload (checksummed, fsync'd per line), so an interrupted
  run resumes from completed chunks instead of restarting.  A header
  fingerprint ties the journal to one exact task layout; stale or
  truncated journals are detected and discarded safely.
- **RetryPolicy** — bounded attempts with exponential backoff and
  *deterministic* jitter (hash of chunk index and attempt, never a
  random generator).  Failures are classified transient (broken pool,
  timeout, :class:`TransientWorkerError`) or permanent (deterministic
  exceptions); only transient failures are retried.
- **Graceful degradation** — when the worker pool breaks repeatedly,
  the remaining chunks run serially in-process instead of aborting.
- **Fault injection** — a :class:`FaultPlan` deterministically fails
  chunk N on attempt K with an exception, a worker kill, a hang, or a
  corrupted payload, threaded through the worker entrypoint so every
  recovery path above is testable without real crashes.

Chunks must be independent and their payloads JSON-representable (via
the ``encode``/``decode`` hooks when they carry arrays); results are
always delivered in task order, so callers observe output identical to
a serial, fault-free run.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.metrics import isolated_registry, merge_snapshots
from ..obs.tracing import Stopwatch, get_tracer

logger = logging.getLogger(__name__)

#: Bump when the journal line format changes.
JOURNAL_VERSION = 1

#: Fault kinds a :class:`FaultPlan` may inject (see :class:`Fault`).
#: The first five fire inside the worker entrypoint on any backend; the
#: last three are lease-protocol faults interpreted by the distributed
#: work-stealing backend (:mod:`repro.harness.distributed`) and ignored
#: by the pool backend.
FAULT_KINDS = (
    "transient",
    "permanent",
    "kill",
    "hang",
    "corrupt",
    "lease_expiry",
    "zombie",
    "torn_write",
)

#: Fault kinds handled inside :func:`_run_chunk` itself.
_WORKER_FAULT_KINDS = ("transient", "permanent", "kill", "hang", "corrupt")


class ResilienceError(RuntimeError):
    """Raised for unusable resilience configurations or journals."""


class JournalFingerprintError(ResilienceError):
    """An explicit resume hit a journal bound to a different fingerprint.

    Raised instead of silently discarding the stale journal so a resume
    against the wrong campaign/sweep configuration fails loudly, naming
    both fingerprints (the CLI maps this to a one-line error, exit 2).
    """


class TransientWorkerError(RuntimeError):
    """A worker failure that is known to be safe to retry."""


class CorruptResultError(TransientWorkerError):
    """A chunk returned a payload that failed validation."""


class ChunkFailure(ResilienceError):
    """A chunk failed permanently or exhausted its retry budget.

    Carries the :class:`RunReport` accumulated so far as ``report`` so
    callers (and the CLI) can name the failing chunk and show what did
    complete — everything journaled before the failure remains
    resumable.
    """

    def __init__(self, message: str, report: Optional["RunReport"] = None):
        super().__init__(message)
        self.report = report


# -- fault injection -----------------------------------------------------------


@dataclass(frozen=True)
class Fault:
    """Deterministically fail one chunk on selected attempts.

    ``kind`` is one of :data:`FAULT_KINDS`: ``transient``/``permanent``
    raise in the worker, ``kill`` terminates the worker process (breaking
    the pool), ``hang`` blocks until the driver's chunk timeout fires,
    and ``corrupt`` truncates the returned payload.  ``attempts`` lists
    the 1-based attempt numbers that fire; an empty tuple fires on every
    attempt.
    """

    chunk: int
    kind: str
    attempts: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; choices are {FAULT_KINDS}"
            )
        object.__setattr__(self, "attempts", tuple(self.attempts))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults, keyed by chunk/attempt."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def fault_for(self, chunk: int, attempt: int) -> Optional[str]:
        """The fault kind to inject for this chunk attempt, or None."""
        for fault in self.faults:
            if fault.chunk == chunk and (
                not fault.attempts or attempt in fault.attempts
            ):
                return fault.kind
        return None


def _corrupt_payload(payload):
    """Worker-side ``corrupt`` fault: damage the payload detectably."""
    if isinstance(payload, list) and payload:
        return payload[:-1]
    return None


@dataclass
class _ChunkEnvelope:
    """What :func:`_run_chunk` ships back alongside the chunk payload.

    ``metrics`` is the chunk's :mod:`repro.obs` registry snapshot —
    captured in an isolated registry so it holds exactly this chunk's
    contribution wherever the chunk ran; ``wall_s``/``cpu_s`` are the
    chunk's own timings, replayed into the driver's trace as a
    ``resilience.chunk`` span.
    """

    payload: object
    metrics: Optional[dict] = None
    wall_s: float = 0.0
    cpu_s: float = 0.0


def _run_chunk(fn: Callable, args: tuple, fault_kind: Optional[str]):
    """Worker entrypoint: apply any injected fault, then run the chunk.

    This is the single choke point every chunk of every resilient run
    passes through, in-process or in a pool worker — which is what makes
    :class:`FaultPlan` able to exercise each recovery path for real.
    Successful chunks return a :class:`_ChunkEnvelope` wrapping the
    payload with the chunk's metrics snapshot and timings.
    """
    if fault_kind == "transient":
        raise TransientWorkerError("injected transient fault")
    if fault_kind == "permanent":
        raise RuntimeError("injected permanent fault")
    if fault_kind == "kill":
        os._exit(13)
    if fault_kind == "hang":
        while True:  # until the driver's chunk timeout terminates us
            time.sleep(0.05)
    with isolated_registry() as registry:
        with Stopwatch() as watch:
            result = fn(*args)
        snapshot = registry.snapshot()
    if fault_kind == "corrupt":
        result = _corrupt_payload(result)
    return _ChunkEnvelope(
        payload=result,
        metrics=snapshot,
        wall_s=watch.wall_s,
        cpu_s=watch.cpu_s,
    )


# -- retry policy --------------------------------------------------------------

#: Exception types retried by default; everything else is permanent.
DEFAULT_TRANSIENT_TYPES: Tuple[type, ...] = (
    BrokenProcessPool,
    FuturesTimeout,
    TimeoutError,
    TransientWorkerError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How failures are classified, retried, timed out, and degraded.

    ``backoff_seconds`` grows exponentially with the attempt number and
    adds a deterministic jitter derived from a hash of the chunk index
    and attempt — reruns back off identically, and no random-number
    state is consumed.  ``chunk_timeout`` bounds a single attempt's wall
    time on the parallel path (a timed-out worker is terminated with the
    pool and the chunk retried).  After ``max_pool_restarts`` pool
    rebuilds, execution degrades to in-process serial for the remainder.
    """

    max_attempts: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.25
    chunk_timeout: Optional[float] = None
    max_pool_restarts: int = 2
    transient_types: Tuple[type, ...] = DEFAULT_TRANSIENT_TYPES

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be positive")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ResilienceError(
                "backoff_base/backoff_factor/jitter must be >= 0 / >= 1 / >= 0"
            )
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ResilienceError("chunk_timeout must be positive or None")
        if self.max_pool_restarts < 0:
            raise ResilienceError("max_pool_restarts must be >= 0")

    def classify(self, error: BaseException) -> str:
        """``"transient"`` (retry) or ``"permanent"`` (abort)."""
        return (
            "transient"
            if isinstance(error, self.transient_types)
            else "permanent"
        )

    def backoff_seconds(self, chunk: int, attempt: int) -> float:
        """Delay before retrying ``chunk`` after its ``attempt``-th failure."""
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        digest = hashlib.sha256(f"{chunk}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2**64)
        return base * (1.0 + self.jitter * unit)


@dataclass(frozen=True)
class DistributedConfig:
    """Knobs for the work-stealing backend (:mod:`~repro.harness.distributed`).

    ``run_dir`` is the shared directory workers coordinate through (lease
    files, journal shards, heartbeats); None derives one under the
    artifact cache from the run fingerprint.  ``spawn`` local worker
    processes are started by the driver — ``spawn=0`` means workers are
    attached externally with ``repro workers spawn``.  ``lease_ttl`` is
    how stale a lease's heartbeat must be before another worker may steal
    it; ``heartbeat_interval`` is how often owners refresh their leases;
    ``poll_interval`` paces idle claim scans.  ``wait_timeout`` bounds
    how long the driver waits for completion (None: forever).
    """

    run_dir: Optional[Path] = None
    spawn: int = 1
    lease_ttl: float = 10.0
    heartbeat_interval: float = 1.0
    poll_interval: float = 0.05
    wait_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.spawn < 0:
            raise ResilienceError("spawn must be >= 0")
        if self.lease_ttl <= 0 or self.heartbeat_interval <= 0:
            raise ResilienceError(
                "lease_ttl and heartbeat_interval must be positive"
            )
        if self.heartbeat_interval >= self.lease_ttl:
            raise ResilienceError(
                "heartbeat_interval must be smaller than lease_ttl, or "
                "healthy leases look stale and are stolen"
            )
        if self.poll_interval <= 0:
            raise ResilienceError("poll_interval must be positive")
        if self.wait_timeout is not None and self.wait_timeout <= 0:
            raise ResilienceError("wait_timeout must be positive or None")


#: Execution backends ``run_chunks`` can route a fan-out through.
BACKENDS = ("pool", "distributed")


@dataclass(frozen=True)
class ResilienceConfig:
    """Bundle threading the resilient executor through campaigns and sweeps.

    ``journal_path`` enables chunk journaling and resume; when None and
    ``resume`` is set, callers that own a cache key (``cached_campaign``,
    the sweep CLI) derive a path next to their artifact.  ``faults`` is
    the deterministic fault-injection schedule (tests and smoke runs
    only).  ``backend`` selects how chunks fan out: ``"pool"`` is the
    in-process driver with a ``ProcessPoolExecutor``; ``"distributed"``
    is the journal-coordinated work-stealing backend where independent
    worker processes (possibly on other hosts sharing ``distributed.run_dir``)
    claim chunks through lease files.
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    journal_path: Optional[Path] = None
    resume: bool = False
    faults: Optional[FaultPlan] = None
    backend: str = "pool"
    distributed: Optional[DistributedConfig] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ResilienceError(
                f"unknown backend {self.backend!r}; choices are {BACKENDS}"
            )


# -- tasks and reports ---------------------------------------------------------


@dataclass(frozen=True)
class ChunkTask:
    """One unit of the fan-out: a picklable function call plus labels.

    ``size`` counts work units (e.g. design points) for progress
    accounting and payload validation; ``meta`` is an opaque caller
    label (the campaign uses ``(benchmark, split)``) handed back through
    ``on_chunk`` callbacks.
    """

    index: int
    fn: Callable
    args: tuple
    size: int = 1
    meta: tuple = ()


@dataclass
class ChunkRecord:
    """Per-chunk outcome accounting inside a :class:`RunReport`."""

    index: int
    meta: tuple = ()
    status: str = "pending"  #: pending | completed | resumed | failed
    attempts: int = 0
    errors: Tuple[str, ...] = ()


@dataclass
class RunReport:
    """Structured outcome of one resilient run.

    ``completed`` counts chunks that finished this run plus chunks
    restored from the journal (``resumed``); ``retried`` counts chunks
    that needed more than one attempt; ``failure`` names the aborting
    chunk when the run raised :class:`ChunkFailure`.

    ``metrics`` is the merged :mod:`repro.obs` snapshot of every
    completed chunk's contribution — shipped back from pool workers in
    result envelopes, restored from the journal for resumed chunks, so
    the account covers the whole logical run with no double counting
    (failed attempts' metrics are discarded).  ``events`` lists the
    structured occurrences (``resilience.retry``, ``.pool_restart``,
    ``.degraded``, ``.resumed``, ``.chunk_failed``) that also land in
    the trace when tracing is active.
    """

    total_chunks: int
    completed: int = 0
    resumed: int = 0
    retried: int = 0
    pool_restarts: int = 0
    degraded: bool = False
    elapsed_seconds: float = 0.0
    failure: Optional[str] = None
    chunks: List[ChunkRecord] = field(default_factory=list)
    metrics: Optional[dict] = None
    events: List[dict] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable account of the run."""
        parts = [f"chunks {self.completed}/{self.total_chunks}"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed from journal")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.pool_restarts:
            parts.append(f"{self.pool_restarts} pool restart(s)")
        if self.degraded:
            parts.append("degraded to serial")
        if self.failure:
            parts.append(f"FAILED ({self.failure})")
        parts.append(f"{self.elapsed_seconds:.1f}s")
        return "; ".join(parts)


# -- the journal ---------------------------------------------------------------


def _canonical(body: dict) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _line_for(body: dict) -> bytes:
    canonical = _canonical(body)
    sha = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    return (
        json.dumps(
            {"sha": sha, "body": body}, sort_keys=True, separators=(",", ":")
        )
        + "\n"
    ).encode("utf-8")


def append_record(path: Path, body: dict) -> None:
    """Durably append one checksummed record line to a journal file.

    A single ``O_APPEND`` write followed by an fsync: a crash mid-write
    leaves at most one truncated tail line, which
    :func:`read_journal_records` skips with a warning.  A file whose
    last byte is not a newline (a torn tail from an earlier crash) is
    sealed with one first, so the new record starts on its own line
    instead of extending the garbage.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        line = _line_for(body)
        size = os.fstat(fd).st_size
        if size:
            with open(path, "rb") as reader:
                reader.seek(size - 1)
                if reader.read(1) != b"\n":
                    line = b"\n" + line
        os.write(fd, line)
        os.fsync(fd)
    finally:
        os.close(fd)


def read_journal_records(path: Path) -> Tuple[List[dict], List[dict]]:
    """Parse a checksummed JSONL journal, tolerating a torn final record.

    Returns ``(bodies, warnings)``.  A final line truncated mid-write by
    a crash is skipped with a structured ``journal_torn_tail`` warning
    (never an exception).  Undecodable *interior* lines — a sealed tear
    from an earlier crash, with appends continuing after it — are
    skipped with a ``journal_corrupt_line`` warning; records beyond them
    stay trustworthy because every line carries its own checksum, and a
    line whose checksum does not match its body is skipped with a
    ``journal_bad_checksum`` warning.  Each warning is a dict with
    ``kind``, ``path``, and ``line`` (1-based) keys, ready to land in
    ``RunReport.events``.
    """
    bodies: List[dict] = []
    warnings: List[dict] = []

    def warn(kind: str, lineno: int) -> None:
        warnings.append({"kind": kind, "path": str(path), "line": lineno})

    try:
        lines = path.read_text().splitlines()
    except OSError:
        return bodies, warnings
    for lineno, raw in enumerate(lines, start=1):
        torn = False
        body = None
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            torn = True
        else:
            body = record.get("body") if isinstance(record, dict) else None
            if not isinstance(body, dict):
                torn = True
        if torn:
            if lineno == len(lines):
                warn("journal_torn_tail", lineno)
            else:
                warn("journal_corrupt_line", lineno)
            continue
        sha = hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()[:16]
        if record.get("sha") != sha:
            warn("journal_bad_checksum", lineno)
            continue
        bodies.append(body)
    for warning in warnings:
        logger.warning(
            "journal %s: %s at line %d",
            path,
            warning["kind"],
            warning["line"],
        )
    return bodies, warnings


class Journal:
    """Append-only, checksummed JSONL record of completed chunks.

    Line 1 is a header binding the file to one ``fingerprint`` (a digest
    of everything that determines the task layout and its results); each
    further line records one completed chunk's payload with a checksum.
    Lines are written with a single ``O_APPEND`` write and fsync'd, so a
    mid-write interrupt leaves at most one truncated tail line — which
    loading tolerates (the tail is dropped, completed chunks survive).
    """

    def __init__(
        self,
        path: Path,
        fingerprint: str,
        completed: Dict[int, object],
        attempts: Dict[int, int],
        metrics: Optional[Dict[int, dict]] = None,
        warnings: Optional[List[dict]] = None,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.completed = completed
        self.attempts = attempts
        self.metrics = metrics if metrics is not None else {}
        #: Structured read anomalies (torn tail, bad checksums) collected
        #: while loading; the executor replays them as report events.
        self.warnings = warnings if warnings is not None else []

    @classmethod
    def open(cls, path, fingerprint: str, strict: bool = False) -> "Journal":
        """Open or create a journal bound to ``fingerprint``.

        An existing file with a matching header is loaded (its completed
        chunks become resumable); a torn final record is skipped with a
        structured warning, never an error.  A stale, mismatched, or
        unreadable file is discarded with a warning and the journal
        starts fresh — unless ``strict`` is set (an explicit ``--resume``),
        in which case a readable header with the *wrong* fingerprint
        raises :class:`JournalFingerprintError` naming both fingerprints
        instead of silently restarting the run.
        """
        path = Path(path)
        completed: Dict[int, object] = {}
        attempts: Dict[int, int] = {}
        metrics: Dict[int, dict] = {}
        warnings: List[dict] = []
        if path.exists():
            loaded = cls._read(path, fingerprint, strict=strict)
            if loaded is None:
                logger.warning(
                    "discarding stale or corrupt journal %s", path
                )
                path.unlink()
            else:
                completed, attempts, metrics, warnings = loaded
        if not path.exists():
            header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            cls._append(path, header)
        return cls(path, fingerprint, completed, attempts, metrics, warnings)

    @staticmethod
    def _read(path: Path, fingerprint: str, strict: bool = False):
        """Parse a journal; None when the header does not match."""
        completed: Dict[int, object] = {}
        attempts: Dict[int, int] = {}
        metrics: Dict[int, dict] = {}
        entries, warnings = read_journal_records(path)
        if not entries:
            return None
        header = entries[0]
        if header.get("kind") != "header":
            return None
        if (
            strict
            and header.get("version") == JOURNAL_VERSION
            and header.get("fingerprint") != fingerprint
        ):
            raise JournalFingerprintError(
                f"journal {path} was written for fingerprint "
                f"{header.get('fingerprint')}, but the current run's "
                f"fingerprint is {fingerprint}; the configuration changed "
                "— delete the journal or rerun without --resume"
            )
        if (
            header.get("version") != JOURNAL_VERSION
            or header.get("fingerprint") != fingerprint
        ):
            return None
        for body in entries[1:]:
            if body.get("kind") != "chunk" or "index" not in body:
                continue
            index = int(body["index"])
            completed[index] = body.get("payload")
            attempts[index] = int(body.get("attempts", 1))
            if body.get("metrics") is not None:
                metrics[index] = body["metrics"]
        return completed, attempts, metrics, warnings

    @staticmethod
    def _append(path: Path, body: dict) -> None:
        append_record(path, body)

    def record(
        self, index: int, attempts: int, payload, metrics: Optional[dict] = None
    ) -> None:
        """Durably record one completed chunk (atomic append + fsync).

        ``metrics`` (the chunk's obs snapshot) rides along so a resumed
        run restores the chunk's metrics contribution exactly once —
        the field is optional, keeping older journals readable.
        """
        body = {
            "kind": "chunk",
            "index": index,
            "attempts": attempts,
            "payload": payload,
        }
        if metrics is not None:
            body["metrics"] = metrics
        self._append(self.path, body)
        self.completed[index] = payload
        self.attempts[index] = attempts
        if metrics is not None:
            self.metrics[index] = metrics

    def discard(self) -> None:
        """Delete the journal file (the run it covered completed)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            logger.debug("journal %s already removed", self.path)
        self.completed = {}
        self.attempts = {}
        self.metrics = {}


# -- the resilient executor ----------------------------------------------------


def _shutdown_pool(executor: Optional[ProcessPoolExecutor], terminate: bool):
    """Shut a pool down; ``terminate`` also kills worker processes.

    Termination is how hung (or abandoned) workers are reaped after a
    chunk timeout or an abort — ``shutdown`` alone would wait on them
    forever.
    """
    if executor is None:
        return
    if not terminate:
        executor.shutdown(wait=True)
        return
    processes = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(5.0)


class _ChunkRunner:
    """One resilient run: scheduling loop, retry state, report assembly."""

    def __init__(
        self,
        tasks: Sequence[ChunkTask],
        workers: int,
        policy: RetryPolicy,
        journal: Optional[Journal],
        faults: Optional[FaultPlan],
        validate: Optional[Callable],
        on_chunk: Optional[Callable],
        encode: Optional[Callable],
        decode: Optional[Callable],
        keep_results: bool,
    ):
        indexes = [task.index for task in tasks]
        if len(set(indexes)) != len(indexes):
            raise ResilienceError("chunk task indexes must be unique")
        self.tasks = list(tasks)
        self.workers = max(1, workers)
        self.policy = policy
        self.journal = journal
        self.faults = faults
        self.validate = validate
        self.on_chunk = on_chunk
        self.encode = encode
        self.decode = decode
        self.keep_results = keep_results
        self.records = {
            task.index: ChunkRecord(index=task.index, meta=task.meta)
            for task in self.tasks
        }
        self.report = RunReport(
            total_chunks=len(self.tasks),
            chunks=[self.records[task.index] for task in self.tasks],
        )
        self.results: Dict[int, object] = {}
        self._done: Dict[int, bool] = {}

    # -- outcome bookkeeping ----------------------------------------------

    def _fault_for(self, task, attempt, in_process):
        if self.faults is None:
            return None
        kind = self.faults.fault_for(task.index, attempt)
        if kind in ("kill", "hang") and in_process:
            # Cannot kill or hang the driver itself; surface the fault
            # as a retryable worker error instead.
            return "transient"
        return kind

    def _meta_tag(self, task: ChunkTask) -> str:
        return f" {task.meta}" if task.meta else ""

    def _event(self, name: str, **attrs) -> None:
        """Record a structured occurrence in the report and the trace."""
        self.report.events.append({"name": name, "attrs": attrs})
        get_tracer().event(name, **attrs)

    @staticmethod
    def _as_envelope(result) -> _ChunkEnvelope:
        """Normalize a chunk result (envelopes come from `_run_chunk`)."""
        if isinstance(result, _ChunkEnvelope):
            return result
        return _ChunkEnvelope(payload=result)

    def _complete(
        self, task: ChunkTask, attempt: int, envelope: _ChunkEnvelope
    ) -> None:
        payload = envelope.payload
        record = self.records[task.index]
        record.status = "completed"
        record.attempts = attempt
        if attempt > 1:
            self.report.retried += 1
        self.report.completed += 1
        self._done[task.index] = True
        if envelope.metrics is not None:
            # Merge only after validation passed: a corrupt or retried
            # attempt's metrics never reach the report.
            self.report.metrics = merge_snapshots(
                self.report.metrics, envelope.metrics
            )
        get_tracer().record_span(
            "resilience.chunk",
            envelope.wall_s,
            envelope.cpu_s,
            chunk=task.index,
            attempts=attempt,
            meta=[str(m) for m in task.meta],
        )
        if self.journal is not None:
            encoded = self.encode(payload) if self.encode else payload
            self.journal.record(
                task.index, attempt, encoded, metrics=envelope.metrics
            )
        if self.keep_results:
            self.results[task.index] = payload
        if self.on_chunk is not None:
            self.on_chunk(task, record, payload)

    def _record_failure(self, task, attempt, error) -> None:
        """Account one failed attempt; raises when the chunk is lost."""
        record = self.records[task.index]
        record.attempts = attempt
        record.errors += (
            f"attempt {attempt}: {type(error).__name__}: {error}",
        )
        if self.policy.classify(error) == "permanent":
            self._abort(task, record, f"permanent failure: {error}")
        if attempt >= self.policy.max_attempts:
            self._abort(
                task,
                record,
                f"exhausted {self.policy.max_attempts} attempts: {error}",
            )
        self._event(
            "resilience.retry",
            chunk=task.index,
            attempt=attempt,
            error=f"{type(error).__name__}: {error}",
        )
        logger.info(
            "retrying chunk %d%s after attempt %d: %s",
            task.index,
            self._meta_tag(task),
            attempt,
            error,
        )

    def _abort(self, task, record, reason) -> None:
        record.status = "failed"
        message = f"chunk {task.index}{self._meta_tag(task)} failed: {reason}"
        self.report.failure = message
        self._event(
            "resilience.chunk_failed", chunk=task.index, reason=reason
        )
        raise ChunkFailure(message, self.report)

    def _check(self, task: ChunkTask, payload) -> None:
        if self.validate is not None:
            self.validate(task, payload)

    # -- resume ------------------------------------------------------------

    def _resume_from_journal(self) -> None:
        if self.journal is None:
            return
        for warning in self.journal.warnings:
            self._event("resilience.journal_warning", **warning)
        for task in self.tasks:
            if task.index not in self.journal.completed:
                continue
            payload = self.journal.completed[task.index]
            if self.decode is not None:
                payload = self.decode(payload)
            record = self.records[task.index]
            record.status = "resumed"
            record.attempts = self.journal.attempts.get(task.index, 1)
            self.report.resumed += 1
            self.report.completed += 1
            self._done[task.index] = True
            journal_metrics = self.journal.metrics.get(task.index)
            if journal_metrics is not None:
                # The chunk's metrics were journaled when it first
                # completed; restoring them here (and nowhere else)
                # keeps the merged account exact across resumes.
                self.report.metrics = merge_snapshots(
                    self.report.metrics, journal_metrics
                )
            if self.keep_results:
                self.results[task.index] = payload
            if self.on_chunk is not None:
                self.on_chunk(task, record, payload)
        if self.report.resumed:
            self._event("resilience.resumed", chunks=self.report.resumed)

    # -- serial execution --------------------------------------------------

    def _run_serial(self, items: Sequence[Tuple[ChunkTask, int]]) -> None:
        """Run ``(task, attempts_already_charged)`` pairs in-process."""
        for task, attempts_done in sorted(items, key=lambda i: i[0].index):
            attempt = attempts_done
            while True:
                attempt += 1
                fault = self._fault_for(task, attempt, in_process=True)
                try:
                    envelope = self._as_envelope(
                        _run_chunk(task.fn, task.args, fault)
                    )
                    self._check(task, envelope.payload)
                except ChunkFailure:
                    raise
                except Exception as error:
                    self._record_failure(task, attempt, error)
                    delay = self.policy.backoff_seconds(task.index, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self._complete(task, attempt, envelope)
                break

    # -- parallel execution ------------------------------------------------

    def _restart_pool(self, executor, inflight, queue):
        """Kill a broken/hung pool; requeue in-flight chunks uncharged.

        Returns a fresh pool, or None once the restart budget is spent —
        the caller then degrades to serial execution.
        """
        for task, attempt, _ in inflight.values():
            queue.append((task, attempt - 1))
        inflight.clear()
        _shutdown_pool(executor, terminate=True)
        self.report.pool_restarts += 1
        self._event(
            "resilience.pool_restart",
            count=self.report.pool_restarts,
            budget=self.policy.max_pool_restarts,
        )
        if self.report.pool_restarts > self.policy.max_pool_restarts:
            return None
        logger.info(
            "restarting worker pool (%d/%d)",
            self.report.pool_restarts,
            self.policy.max_pool_restarts,
        )
        return ProcessPoolExecutor(max_workers=self.workers)

    def _run_parallel(self, pending: Sequence[Tuple[ChunkTask, int]]) -> None:
        queue: Deque[Tuple[ChunkTask, int]] = deque(pending)
        waiting: List[Tuple[float, ChunkTask, int]] = []
        inflight: Dict[object, Tuple[ChunkTask, int, Optional[float]]] = {}
        executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.workers
        )
        aborted = True
        try:
            while queue or waiting or inflight:
                now = time.monotonic()
                ready = [item for item in waiting if item[0] <= now]
                waiting = [item for item in waiting if item[0] > now]
                for _, task, attempts_done in ready:
                    queue.append((task, attempts_done))

                pool_failed = False
                while queue and len(inflight) < self.workers:
                    task, attempts_done = queue.popleft()
                    attempt = attempts_done + 1
                    fault = self._fault_for(task, attempt, in_process=False)
                    try:
                        future = executor.submit(
                            _run_chunk, task.fn, task.args, fault
                        )
                    except BrokenProcessPool:
                        queue.appendleft((task, attempts_done))
                        pool_failed = True
                        break
                    deadline = (
                        now + self.policy.chunk_timeout
                        if self.policy.chunk_timeout is not None
                        else None
                    )
                    inflight[future] = (task, attempt, deadline)

                if not pool_failed and inflight:
                    deadlines = [
                        deadline
                        for _, _, deadline in inflight.values()
                        if deadline is not None
                    ]
                    ready_times = [ready_at for ready_at, _, _ in waiting]
                    horizon = min(deadlines + ready_times, default=None)
                    timeout = (
                        None
                        if horizon is None
                        else max(0.0, horizon - time.monotonic())
                    )
                    done, _ = wait(
                        set(inflight),
                        timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        task, attempt, _ = inflight.pop(future)
                        try:
                            envelope = self._as_envelope(future.result())
                            self._check(task, envelope.payload)
                        except BrokenProcessPool as error:
                            pool_failed = True
                            self._record_failure(task, attempt, error)
                            waiting.append(
                                (
                                    time.monotonic()
                                    + self.policy.backoff_seconds(
                                        task.index, attempt
                                    ),
                                    task,
                                    attempt,
                                )
                            )
                        except Exception as error:
                            self._record_failure(task, attempt, error)
                            waiting.append(
                                (
                                    time.monotonic()
                                    + self.policy.backoff_seconds(
                                        task.index, attempt
                                    ),
                                    task,
                                    attempt,
                                )
                            )
                        else:
                            self._complete(task, attempt, envelope)
                    now = time.monotonic()
                    for future, (task, attempt, deadline) in list(
                        inflight.items()
                    ):
                        if deadline is not None and now >= deadline:
                            del inflight[future]
                            timeout_error = FuturesTimeout(
                                f"chunk {task.index} exceeded chunk_timeout="
                                f"{self.policy.chunk_timeout}s"
                            )
                            self._record_failure(
                                task, attempt, timeout_error
                            )
                            waiting.append(
                                (
                                    now
                                    + self.policy.backoff_seconds(
                                        task.index, attempt
                                    ),
                                    task,
                                    attempt,
                                )
                            )
                            pool_failed = True
                elif not pool_failed and waiting:
                    # Nothing running; wait out the nearest backoff.
                    nearest = min(ready_at for ready_at, _, _ in waiting)
                    delay = max(0.0, nearest - time.monotonic())
                    if delay > 0:
                        time.sleep(delay)

                if pool_failed:
                    executor = self._restart_pool(executor, inflight, queue)
                    if executor is None:
                        self.report.degraded = True
                        remaining = list(queue) + [
                            (task, attempts_done)
                            for _, task, attempts_done in waiting
                        ]
                        self._event(
                            "resilience.degraded",
                            pool_restarts=self.report.pool_restarts,
                            remaining_chunks=len(remaining),
                        )
                        logger.warning(
                            "worker pool broke %d times; running remaining "
                            "%d chunk(s) serially in-process",
                            self.report.pool_restarts,
                            len(remaining),
                        )
                        self._run_serial(remaining)
                        break
            aborted = False
        except ChunkFailure:
            raise
        finally:
            _shutdown_pool(executor, terminate=aborted)

    # -- entry point -------------------------------------------------------

    def run(self) -> Tuple[Optional[List[object]], RunReport]:
        watch = Stopwatch().start()
        with get_tracer().span(
            "resilience.run",
            chunks=len(self.tasks),
            workers=self.workers,
        ) as root:
            try:
                self._resume_from_journal()
                pending = [
                    (task, 0)
                    for task in self.tasks
                    if not self._done.get(task.index)
                ]
                if pending:
                    if self.workers > 1:
                        self._run_parallel(pending)
                    else:
                        self._run_serial(pending)
            finally:
                self.report.elapsed_seconds = watch.stop().wall_s
                root.set_attr("completed", self.report.completed)
                root.set_attr("resumed", self.report.resumed)
                root.set_attr("retried", self.report.retried)
                root.set_attr("pool_restarts", self.report.pool_restarts)
                root.set_attr("degraded", self.report.degraded)
        ordered = (
            [self.results[task.index] for task in self.tasks]
            if self.keep_results
            else None
        )
        return ordered, self.report


def run_chunks(
    tasks: Sequence[ChunkTask],
    workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[Journal] = None,
    faults: Optional[FaultPlan] = None,
    validate: Optional[Callable] = None,
    on_chunk: Optional[Callable] = None,
    encode: Optional[Callable] = None,
    decode: Optional[Callable] = None,
    keep_results: bool = True,
    backend: str = "pool",
    distributed: Optional[DistributedConfig] = None,
    fingerprint: Optional[str] = None,
) -> Tuple[Optional[List[object]], RunReport]:
    """Execute independent chunk tasks with retries, journaling, degradation.

    Returns ``(results, report)`` where ``results`` lists each task's
    payload in task order (or None with ``keep_results=False``, for
    streaming consumers that take payloads via ``on_chunk``).  Semantics:

    - ``workers > 1`` fans chunks over a process pool (at most
      ``workers`` in flight); ``workers == 1`` runs in-process.  Either
      way results are identical to a fault-free serial run.
    - Failures are classified by ``policy``: transient ones retry up to
      ``policy.max_attempts`` with deterministic backoff, permanent ones
      abort immediately.  Aborts raise :class:`ChunkFailure` carrying
      the report; chunks journaled before the abort stay resumable.
    - A broken pool is rebuilt up to ``policy.max_pool_restarts`` times,
      then execution degrades to in-process serial for the remainder.
    - ``journal`` restores completed chunks before running anything
      (``on_chunk`` fires for them with status ``"resumed"``) and
      durably records each newly completed chunk (through ``encode``;
      restored payloads pass through ``decode``).
    - ``validate(task, payload)`` runs on every fresh payload; raise
      :class:`CorruptResultError` to classify a bad payload as a
      retryable failure.
    - ``on_chunk(task, record, payload)`` fires as chunks complete (in
      completion order, not task order).
    - Each chunk runs inside an isolated :mod:`repro.obs` metrics
      registry; the snapshots ship back with the payloads and merge into
      ``report.metrics`` (journaled chunks restore theirs on resume, so
      the account is exact with no double counting).  Retries, pool
      restarts, and degradation land in ``report.events`` and — when
      tracing is configured — in the trace.
    - ``backend="distributed"`` routes the fan-out through the
      journal-coordinated work-stealing backend
      (:mod:`repro.harness.distributed`): independent worker processes
      sharing ``distributed.run_dir`` claim chunks via lease files and
      append results to per-worker shards, which merge deterministically
      into the same ``(results, report)`` a serial run produces.
      Requires ``fingerprint`` (binding the shared run directory to one
      exact task layout); ``workers`` is ignored in favor of
      ``distributed.spawn``.
    """
    if backend not in BACKENDS:
        raise ResilienceError(
            f"unknown backend {backend!r}; choices are {BACKENDS}"
        )
    if backend == "distributed":
        from .distributed import run_distributed_chunks

        if fingerprint is None:
            raise ResilienceError(
                "backend='distributed' requires a run fingerprint"
            )
        return run_distributed_chunks(
            tasks=tasks,
            policy=policy or RetryPolicy(),
            journal=journal,
            faults=faults,
            validate=validate,
            on_chunk=on_chunk,
            encode=encode,
            decode=decode,
            keep_results=keep_results,
            config=distributed or DistributedConfig(),
            fingerprint=fingerprint,
        )
    runner = _ChunkRunner(
        tasks=tasks,
        workers=workers,
        policy=policy or RetryPolicy(),
        journal=journal,
        faults=faults,
        validate=validate,
        on_chunk=on_chunk,
        encode=encode,
        decode=decode,
        keep_results=keep_results,
    )
    return runner.run()


def fingerprint_payload(payload: dict) -> str:
    """Stable short digest of a JSON-representable description.

    Used to bind a :class:`Journal` to one exact task layout: any change
    to the digested description (scale knobs, space shape, chunking,
    model coefficients) makes existing journal entries unresumable.
    """
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]
