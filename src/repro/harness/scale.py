"""Scale presets.

The paper's full protocol (1,000 training simulations x 9 benchmarks on
100M-instruction traces; exhaustive 262,500-point predictions) is more
than a test suite should pay for.  A :class:`ScalePreset` bundles every
size knob; three presets ship:

- ``ci`` — seconds; used by the test suite.
- ``default`` — a few minutes for the full harness; the EXPERIMENTS.md
  numbers are recorded at this scale.
- ``paper`` — the paper's counts (long; traces remain synthetic).

Select via the ``REPRO_SCALE`` environment variable or explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional


class ScaleError(ValueError):
    """Raised for unknown preset names or inconsistent knobs."""


@dataclass(frozen=True)
class ScalePreset:
    """Every size knob of the experimental protocol."""

    name: str
    trace_length: int          #: dynamic instructions per benchmark trace
    n_train: int               #: training designs sampled UAR (paper: 1000)
    n_validation: int          #: random validation designs (paper: 100)
    exploration_limit: Optional[int]  #: points predicted per benchmark (None = all)
    per_depth_designs: int     #: enhanced-depth-study designs per depth level
    frontier_validations: int  #: simulated designs along each pareto frontier
    depth_validations: int     #: simulated designs per depth for Fig 6/7
    seed: int                  #: master seed for sampling and traces

    def __post_init__(self) -> None:
        for label in (
            "trace_length",
            "n_train",
            "n_validation",
            "per_depth_designs",
            "frontier_validations",
            "depth_validations",
        ):
            if getattr(self, label) < 1:
                raise ScaleError(f"{label} must be positive")
        if self.exploration_limit is not None and self.exploration_limit < 1:
            raise ScaleError("exploration_limit must be positive or None")

    def with_overrides(self, **overrides) -> "ScalePreset":
        return replace(self, **overrides)


PRESETS: Dict[str, ScalePreset] = {
    "ci": ScalePreset(
        name="ci",
        trace_length=2000,
        n_train=90,
        n_validation=20,
        exploration_limit=2000,
        per_depth_designs=250,
        frontier_validations=4,
        depth_validations=3,
        seed=7,
    ),
    "default": ScalePreset(
        name="default",
        trace_length=8000,
        n_train=300,
        n_validation=60,
        exploration_limit=20000,
        per_depth_designs=2500,
        frontier_validations=8,
        depth_validations=7,
        seed=7,
    ),
    "paper": ScalePreset(
        name="paper",
        trace_length=100000,
        n_train=1000,
        n_validation=100,
        exploration_limit=None,
        per_depth_designs=37500,
        frontier_validations=20,
        depth_validations=7,
        seed=7,
    ),
}


def get_scale(name: Optional[str] = None) -> ScalePreset:
    """Preset by name, or by ``REPRO_SCALE`` (default ``default``)."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    try:
        return PRESETS[name]
    except KeyError:
        raise ScaleError(
            f"unknown scale {name!r}; presets are {sorted(PRESETS)}"
        ) from None
