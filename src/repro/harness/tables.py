"""ASCII table rendering for the paper's tables."""

from __future__ import annotations

from typing import List, Sequence


class TableError(ValueError):
    """Raised for ragged rows."""


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with a header rule, GitHub-style."""
    width = len(headers)
    for row in rows:
        if len(row) != width:
            raise TableError(
                f"row has {len(row)} cells, expected {width}: {row}"
            )
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells += [[_format(value) for value in row] for row in rows]
    widths = [max(len(row[j]) for row in cells) for j in range(width)]

    def line(row: Sequence[str]) -> str:
        return " | ".join(value.rjust(w) for value, w in zip(row, widths))

    rule = "-+-".join("-" * w for w in widths)
    body = [line(cells[0]), rule] + [line(row) for row in cells[1:]]
    if title:
        body.insert(0, title)
    return "\n".join(body)


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_design_point(point) -> str:
    """Compact one-line rendering of a design point."""
    return " ".join(f"{name}={value}" for name, value in zip(point.names, point.values))
