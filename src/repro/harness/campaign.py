"""Simulation campaigns (Section 2.3's protocol).

A campaign samples designs uniformly at random from the Table 1 space,
simulates every sampled design on every benchmark, and assembles training
and validation datasets — the inputs to model fitting and Figure 1.

Campaigns are embarrassingly parallel across design points; pass
``workers > 1`` to spread simulations over processes (each worker rebuilds
its deterministic trace, so results are bit-identical to a serial run).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..designspace import DesignPoint, DesignSpace, sample_uar, sampling_space
from ..regression import FittedModel, fit_ols, performance_spec, power_spec
from ..simulator import Simulator
from ..workloads import BENCHMARK_NAMES, get_profile
from .dataset import Dataset
from .scale import ScalePreset, get_scale


@dataclass
class Campaign:
    """Everything a study context needs from the simulation phase."""

    space: DesignSpace
    scale: ScalePreset
    benchmarks: tuple
    train_points: List[DesignPoint]
    validation_points: List[DesignPoint]
    train: Dict[str, Dataset] = field(default_factory=dict)
    validation: Dict[str, Dataset] = field(default_factory=dict)

    def dataset(self, benchmark: str, split: str = "train") -> Dataset:
        if split not in ("train", "validation"):
            raise ValueError(
                f"unknown split {split!r}; choices are 'train'/'validation'"
            )
        table = self.train if split == "train" else self.validation
        try:
            return table[benchmark]
        except KeyError:
            raise KeyError(
                f"no {split} data for {benchmark!r}; have {sorted(table)}"
            ) from None


def _simulate_chunk(
    space: DesignSpace,
    benchmark: str,
    trace_length: int,
    seed: int,
    memory_mode: str,
    warm: bool,
    points: List[DesignPoint],
) -> List[Tuple[float, float]]:
    """Worker: simulate ``points`` for one benchmark; returns (bips, watts).

    Runs in a separate process: rebuilds the deterministic trace and a
    fresh simulator, so outputs are identical to an in-process run.
    """
    simulator = Simulator(memory_mode=memory_mode, warm=warm)
    trace = simulator.trace_for(get_profile(benchmark), trace_length, seed=seed)
    results = [simulator.simulate_point(space, point, trace) for point in points]
    return [(r.bips, float(r.watts)) for r in results]


def _chunked(points: List[DesignPoint], chunks: int) -> List[List[DesignPoint]]:
    size = max(1, (len(points) + chunks - 1) // chunks)
    return [points[i : i + size] for i in range(0, len(points), size)]


def run_campaign(
    simulator: Simulator,
    scale: Optional[ScalePreset] = None,
    space: Optional[DesignSpace] = None,
    benchmarks: Optional[Sequence[str]] = None,
    progress=None,
    workers: int = 1,
) -> Campaign:
    """Sample, simulate, and assemble datasets.

    The training and validation samples are drawn disjointly UAR from the
    *sampling* space (which is wider in depth than the exploration space —
    Section 3.5's guard against extrapolation).  Every sampled design is
    simulated for every benchmark, as in the paper.

    ``workers > 1`` parallelizes over processes (results identical to the
    serial run).  ``progress`` callbacks fire on both paths with the same
    ``(benchmark, split, done, total)`` stream: per point serially, per
    completed chunk in parallel.
    """
    scale = scale or get_scale()
    space = space or sampling_space()
    names = tuple(benchmarks or BENCHMARK_NAMES)

    total = scale.n_train + scale.n_validation
    points = sample_uar(space, total, seed=scale.seed)
    train_points = points[: scale.n_train]
    validation_points = points[scale.n_train :]

    campaign = Campaign(
        space=space,
        scale=scale,
        benchmarks=names,
        train_points=train_points,
        validation_points=validation_points,
    )
    splits = (("train", train_points), ("validation", validation_points))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = {}
            chunk_of = {}
            for benchmark in names:
                for split, split_points in splits:
                    chunks = _chunked(split_points, workers * 2)
                    jobs = [
                        executor.submit(
                            _simulate_chunk,
                            space,
                            benchmark,
                            scale.trace_length,
                            scale.seed,
                            simulator.memory_mode,
                            simulator.warm,
                            chunk,
                        )
                        for chunk in chunks
                    ]
                    futures[(benchmark, split)] = jobs
                    for job, chunk in zip(jobs, chunks):
                        chunk_of[job] = (benchmark, split, len(chunk))
            if progress is not None:
                # Fire the same (benchmark, split, done, total) stream as
                # the serial path, advancing by chunk as futures finish.
                split_totals = {split: len(pts) for split, pts in splits}
                done_counts = {key: 0 for key in futures}
                for job in as_completed(chunk_of):
                    benchmark, split, count = chunk_of[job]
                    done_counts[(benchmark, split)] += count
                    progress(
                        benchmark,
                        split,
                        done_counts[(benchmark, split)],
                        split_totals[split],
                    )
            for (benchmark, split), jobs in futures.items():
                pairs = [pair for job in jobs for pair in job.result()]
                bips = np.array([p[0] for p in pairs])
                watts = np.array([p[1] for p in pairs])
                split_points = dict(splits)[split]
                getattr(campaign, split)[benchmark] = Dataset(
                    benchmark=benchmark,
                    space=space,
                    points=list(split_points),
                    metrics={"bips": bips, "watts": watts},
                )
        return campaign

    for benchmark in names:
        profile = get_profile(benchmark)
        trace = simulator.trace_for(profile, scale.trace_length, seed=scale.seed)
        for split, split_points in splits:
            results = []
            for i, point in enumerate(split_points):
                results.append(simulator.simulate_point(space, point, trace))
                if progress is not None:
                    progress(benchmark, split, i + 1, len(split_points))
            dataset = Dataset.from_results(benchmark, space, split_points, results)
            getattr(campaign, split)[benchmark] = dataset
    return campaign


def fit_campaign_models(
    campaign: Campaign,
) -> Dict[str, Dict[str, FittedModel]]:
    """Fit the paper's performance and power models per benchmark.

    Returns ``{benchmark: {"bips": model, "watts": model}}``.
    """
    models: Dict[str, Dict[str, FittedModel]] = {}
    for benchmark in campaign.benchmarks:
        data = campaign.dataset(benchmark, "train").columns()
        models[benchmark] = {
            "bips": fit_ols(performance_spec(), data),
            "watts": fit_ols(power_spec(), data),
        }
    return models
