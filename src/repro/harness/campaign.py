"""Simulation campaigns (Section 2.3's protocol).

A campaign samples designs uniformly at random from the Table 1 space,
simulates every sampled design on every benchmark, and assembles training
and validation datasets — the inputs to model fitting and Figure 1.

Campaigns are embarrassingly parallel across design points; pass
``workers > 1`` to spread simulations over processes (each worker rebuilds
its deterministic trace, so results are bit-identical to a serial run).
Parallel runs go through :mod:`repro.harness.resilience`: chunks are
retried on transient failures, optionally journaled to disk for
checkpoint/resume, and the run degrades to in-process execution when the
worker pool breaks repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..designspace import DesignPoint, DesignSpace, sample_uar, sampling_space
from ..obs.tracing import get_tracer
from ..regression import FittedModel, fit_ols, performance_spec, power_spec
from ..simulator import Simulator
from ..workloads import BENCHMARK_NAMES, get_profile
from .dataset import Dataset
from .resilience import (
    ChunkTask,
    CorruptResultError,
    Journal,
    ResilienceConfig,
    RunReport,
    fingerprint_payload,
    run_chunks,
)
from .scale import ScalePreset, get_scale

#: Chunks per (benchmark, split) on the resilient path.  A constant — not
#: a function of ``workers`` — so a journal written at one worker count
#: resumes cleanly at another.
CAMPAIGN_CHUNKS_PER_SPLIT = 8


@dataclass
class Campaign:
    """Everything a study context needs from the simulation phase."""

    space: DesignSpace
    scale: ScalePreset
    benchmarks: tuple
    train_points: List[DesignPoint]
    validation_points: List[DesignPoint]
    train: Dict[str, Dataset] = field(default_factory=dict)
    validation: Dict[str, Dataset] = field(default_factory=dict)
    #: Execution accounting when the run went through the resilient
    #: executor (retries, resumes, degradation); None on the serial path.
    run_report: Optional[RunReport] = None

    def dataset(self, benchmark: str, split: str = "train") -> Dataset:
        if split not in ("train", "validation"):
            raise ValueError(
                f"unknown split {split!r}; choices are 'train'/'validation'"
            )
        table = self.train if split == "train" else self.validation
        try:
            return table[benchmark]
        except KeyError:
            raise KeyError(
                f"no {split} data for {benchmark!r}; have {sorted(table)}"
            ) from None


def _simulate_chunk(
    space: DesignSpace,
    benchmark: str,
    trace_length: int,
    seed: int,
    memory_mode: str,
    warm: bool,
    points: List[DesignPoint],
    batch_size: Optional[int] = None,
) -> List[Tuple[float, float]]:
    """Worker: simulate ``points`` for one benchmark; returns (bips, watts).

    Runs in a separate process: rebuilds the deterministic trace and a
    fresh simulator, so outputs are identical to an in-process run.  The
    chunk goes through the batched timing kernel — one trace replay per
    block of configs — whose results are bit-identical to the per-point
    scalar path (``batch_size`` only changes speed, never values, so it
    stays out of the campaign fingerprint and journals remain portable
    across batch sizes).
    """
    simulator = Simulator(memory_mode=memory_mode, warm=warm)
    trace = simulator.trace_for(get_profile(benchmark), trace_length, seed=seed)
    results = simulator.simulate_batch(
        space, points, trace, batch_size=batch_size
    )
    return [(r.bips, float(r.watts)) for r in results]


def _chunked(points: List[DesignPoint], chunks: int) -> List[List[DesignPoint]]:
    size = max(1, (len(points) + chunks - 1) // chunks)
    return [points[i : i + size] for i in range(0, len(points), size)]


def _campaign_fingerprint(
    scale: ScalePreset,
    space: DesignSpace,
    names: Sequence[str],
    memory_mode: str,
    warm: bool,
    chunk_sizes: Sequence[int],
) -> str:
    """Digest of everything that determines the chunk layout and results."""
    return fingerprint_payload(
        {
            "kind": "campaign",
            "scale": {
                "trace_length": scale.trace_length,
                "n_train": scale.n_train,
                "n_validation": scale.n_validation,
                "seed": scale.seed,
            },
            "space": {
                "name": space.name,
                "parameters": [
                    [p.name, list(p.values)] for p in space.parameters
                ],
            },
            "benchmarks": list(names),
            "memory_mode": memory_mode,
            "warm": warm,
            "chunk_sizes": list(chunk_sizes),
        }
    )


def _validate_campaign_payload(task: ChunkTask, payload) -> None:
    """Reject worker payloads that are not ``task.size`` (bips, watts) pairs."""
    if not isinstance(payload, list) or len(payload) != task.size:
        got = len(payload) if isinstance(payload, list) else type(payload)
        raise CorruptResultError(
            f"chunk {task.index} returned {got} results, expected {task.size}"
        )
    for pair in payload:
        if not isinstance(pair, (tuple, list)) or len(pair) != 2:
            raise CorruptResultError(
                f"chunk {task.index} returned a malformed result pair"
            )


def _run_campaign_resilient(
    campaign: Campaign,
    simulator: Simulator,
    scale: ScalePreset,
    space: DesignSpace,
    names: Sequence[str],
    splits,
    progress,
    workers: int,
    resilience: ResilienceConfig,
    batch_size: Optional[int] = None,
) -> Campaign:
    """The chunked path: fan out, retry, journal, and assemble datasets."""
    tasks: List[ChunkTask] = []
    chunk_sizes: List[int] = []
    for benchmark in names:
        for split, split_points in splits:
            for chunk in _chunked(split_points, CAMPAIGN_CHUNKS_PER_SPLIT):
                tasks.append(
                    ChunkTask(
                        index=len(tasks),
                        fn=_simulate_chunk,
                        args=(
                            space,
                            benchmark,
                            scale.trace_length,
                            scale.seed,
                            simulator.memory_mode,
                            simulator.warm,
                            chunk,
                            batch_size,
                        ),
                        size=len(chunk),
                        meta=(benchmark, split),
                    )
                )
                chunk_sizes.append(len(chunk))

    fingerprint = _campaign_fingerprint(
        scale, space, names, simulator.memory_mode, simulator.warm,
        chunk_sizes,
    )
    journal = None
    if resilience.journal_path is not None:
        if not resilience.resume and resilience.journal_path.exists():
            resilience.journal_path.unlink()
        journal = Journal.open(
            resilience.journal_path, fingerprint, strict=resilience.resume
        )

    split_totals = {split: len(pts) for split, pts in splits}
    done_counts = {
        (benchmark, split): 0 for benchmark in names for split, _ in splits
    }

    def on_chunk(task, record, payload):
        if progress is None:
            return
        benchmark, split = task.meta
        done_counts[task.meta] += task.size
        progress(benchmark, split, done_counts[task.meta], split_totals[split])

    results, report = run_chunks(
        tasks,
        workers=workers,
        policy=resilience.policy,
        journal=journal,
        faults=resilience.faults,
        validate=_validate_campaign_payload,
        on_chunk=on_chunk,
        backend=resilience.backend,
        distributed=resilience.distributed,
        fingerprint=fingerprint,
    )
    campaign.run_report = report

    by_group: Dict[tuple, List] = {}
    for task, payload in zip(tasks, results):
        by_group.setdefault(task.meta, []).extend(payload)
    for (benchmark, split), pairs in by_group.items():
        split_points = dict(splits)[split]
        getattr(campaign, split)[benchmark] = Dataset(
            benchmark=benchmark,
            space=space,
            points=list(split_points),
            metrics={
                "bips": np.array([float(p[0]) for p in pairs]),
                "watts": np.array([float(p[1]) for p in pairs]),
            },
        )
    if journal is not None:
        journal.discard()
    return campaign


def run_campaign(
    simulator: Simulator,
    scale: Optional[ScalePreset] = None,
    space: Optional[DesignSpace] = None,
    benchmarks: Optional[Sequence[str]] = None,
    progress=None,
    workers: int = 1,
    resilience: Optional[ResilienceConfig] = None,
    batch_size: Optional[int] = None,
) -> Campaign:
    """Sample, simulate, and assemble datasets.

    The training and validation samples are drawn disjointly UAR from the
    *sampling* space (which is wider in depth than the exploration space —
    Section 3.5's guard against extrapolation).  Every sampled design is
    simulated for every benchmark, as in the paper.

    ``workers > 1`` parallelizes over processes (results identical to the
    serial run).  ``progress`` callbacks fire on both paths with the same
    ``(benchmark, split, done, total)`` stream: per point serially, per
    completed chunk in parallel.

    ``resilience`` (or any ``workers > 1`` run, which uses the default
    policy) routes execution through :func:`repro.harness.resilience.run_chunks`:
    transient worker failures retry with backoff, a journal path enables
    checkpoint/resume, and the finished campaign carries a ``run_report``.

    On the chunked path, workers replay each trace once per block of up
    to ``batch_size`` configs through the batched timing kernel
    (``None`` batches each chunk whole); results and journal layout are
    bit-identical for every batch size.  The serial path simulates
    point-by-point through the scalar kernel and serves as the reference
    the batch path is checked against.
    """
    scale = scale or get_scale()
    space = space or sampling_space()
    names = tuple(benchmarks or BENCHMARK_NAMES)

    total = scale.n_train + scale.n_validation
    points = sample_uar(space, total, seed=scale.seed)
    train_points = points[: scale.n_train]
    validation_points = points[scale.n_train :]

    campaign = Campaign(
        space=space,
        scale=scale,
        benchmarks=names,
        train_points=train_points,
        validation_points=validation_points,
    )
    splits = (("train", train_points), ("validation", validation_points))
    tracer = get_tracer()
    with tracer.span(
        "campaign.run",
        benchmarks=list(names),
        n_train=scale.n_train,
        n_validation=scale.n_validation,
        workers=workers,
    ):
        if workers > 1 or resilience is not None:
            return _run_campaign_resilient(
                campaign,
                simulator,
                scale,
                space,
                names,
                splits,
                progress,
                workers,
                resilience or ResilienceConfig(),
                batch_size,
            )

        for benchmark in names:
            profile = get_profile(benchmark)
            trace = simulator.trace_for(
                profile, scale.trace_length, seed=scale.seed
            )
            for split, split_points in splits:
                with tracer.span(
                    "campaign.split",
                    benchmark=benchmark,
                    split=split,
                    points=len(split_points),
                ):
                    results = []
                    for i, point in enumerate(split_points):
                        results.append(
                            simulator.simulate_point(space, point, trace)
                        )
                        if progress is not None:
                            progress(
                                benchmark, split, i + 1, len(split_points)
                            )
                dataset = Dataset.from_results(
                    benchmark, space, split_points, results
                )
                getattr(campaign, split)[benchmark] = dataset
    return campaign


def fit_campaign_models(
    campaign: Campaign,
) -> Dict[str, Dict[str, FittedModel]]:
    """Fit the paper's performance and power models per benchmark.

    Returns ``{benchmark: {"bips": model, "watts": model}}``.
    """
    models: Dict[str, Dict[str, FittedModel]] = {}
    for benchmark in campaign.benchmarks:
        data = campaign.dataset(benchmark, "train").columns()
        models[benchmark] = {
            "bips": fit_ols(performance_spec(), data),
            "watts": fit_ols(power_spec(), data),
        }
    return models
