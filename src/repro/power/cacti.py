"""CACTI-style cache array scaling (Shivakumar & Jouppi [21]).

The paper scales cache latency and power with array size "according to
CACTI".  We implement compact analytical fits with the same qualitative
form CACTI produces for this size range:

- access time grows with the square root of capacity (wordline/bitline
  lengths) plus a small per-way comparator cost;
- access energy likewise grows ~sqrt(capacity), with an associativity
  surcharge for reading multiple ways;
- leakage grows near-linearly with capacity;
- area grows linearly with capacity (used as a leakage/floorplan proxy).

Constants are chosen for a 90nm-class technology so the POWER4-like
baseline (Table 3) lands at its documented latencies: ~1-2 cycle 32KB L1
and a 9-cycle 2MB L2 at 19 FO4, with ~60ns DRAM (77 cycles).
"""

from __future__ import annotations

import math


class CactiError(ValueError):
    """Raised for non-physical array queries."""


#: Fixed DRAM access latency in nanoseconds.
MEMORY_LATENCY_NS = 60.0

#: Energy per DRAM access in nanojoules (interface + array).
MEMORY_ACCESS_ENERGY_NJ = 12.0

_T_BASE_NS = 0.35
_T_SQRT_NS_PER_SQRT_KB = 0.16
_T_PER_WAY_NS = 0.02

_E_BASE_NJ = 0.05
_E_SQRT_NJ_PER_SQRT_KB = 0.018
_E_WAY_FACTOR = 0.15

_LEAK_W_PER_KB = 0.0016
_LEAK_EXPONENT = 0.97

_AREA_MM2_PER_KB = 0.055


def _check(size_kb: float, assoc: int) -> None:
    if size_kb <= 0:
        raise CactiError(f"size must be positive, got {size_kb}KB")
    if assoc < 1:
        raise CactiError(f"associativity must be >= 1, got {assoc}")


def access_time_ns(size_kb: float, assoc: int = 1) -> float:
    """Array access time in nanoseconds."""
    _check(size_kb, assoc)
    return (
        _T_BASE_NS
        + _T_SQRT_NS_PER_SQRT_KB * math.sqrt(size_kb)
        + _T_PER_WAY_NS * assoc
    )


def access_energy_nj(size_kb: float, assoc: int = 1) -> float:
    """Energy per access in nanojoules."""
    _check(size_kb, assoc)
    return (_E_BASE_NJ + _E_SQRT_NJ_PER_SQRT_KB * math.sqrt(size_kb)) * (
        1.0 + _E_WAY_FACTOR * assoc
    )


def leakage_w(size_kb: float) -> float:
    """Standby leakage power in watts."""
    _check(size_kb, 1)
    return _LEAK_W_PER_KB * size_kb**_LEAK_EXPONENT


def area_mm2(size_kb: float) -> float:
    """Array area in mm^2 (floorplan / leakage proxy)."""
    _check(size_kb, 1)
    return _AREA_MM2_PER_KB * size_kb
