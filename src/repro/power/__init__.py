"""Power modeling: CACTI array scaling + PowerTimer-style structure models."""

from . import cacti, scaling, structures
from .powertimer import PowerBreakdown, PowerModel
from .voltage import (
    InvarianceStudy,
    OperatingPoint,
    VoltageError,
    invariance_study,
    scale_operating_point,
    split_power,
)

__all__ = [
    "cacti",
    "scaling",
    "structures",
    "PowerModel",
    "PowerBreakdown",
    "scale_operating_point",
    "invariance_study",
    "split_power",
    "OperatingPoint",
    "InvarianceStudy",
    "VoltageError",
]
