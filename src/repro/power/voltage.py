"""Voltage-frequency scaling and the bips^3/w invariance claim.

Footnote 2 of the paper: ``bips^3/w`` is "a voltage invariant
power-performance metric derived from the cubic relationship between power
and voltage" [2].  The argument: above threshold, frequency scales ~V and
dynamic power ~C V^2 f ~ V^3, so scaling voltage by ``k`` multiplies bips
by ``k`` and power by ``k^3`` — leaving bips^3/w fixed — while simpler
metrics (bips/w, bips^2/w) shift with the operating point.

In practice leakage scales far more gently than V^3, so the invariance is
approximate; this module quantifies exactly how approximate, given our
power model's dynamic/static split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

from . import structures
from .powertimer import PowerModel

if TYPE_CHECKING:  # imported lazily to avoid a cycle with simulator.config
    from ..simulator.config import MachineConfig
    from ..simulator.results import SimulationResult


class VoltageError(ValueError):
    """Raised for non-physical scaling requests."""


#: Exponent of frequency (and bips) in supply voltage.
FREQUENCY_EXPONENT = 1.0

#: Exponent of dynamic power in supply voltage (C V^2 f).
DYNAMIC_EXPONENT = 3.0

#: Effective exponent of leakage power in supply voltage (sub-cubic:
#: subthreshold leakage grows with V but not with switching activity).
STATIC_EXPONENT = 1.0


@dataclass(frozen=True)
class OperatingPoint:
    """One voltage-scaled view of a simulated design."""

    voltage_scale: float
    bips: float
    watts: float
    dynamic_watts: float
    static_watts: float

    @property
    def bips_per_watt(self) -> float:
        return self.bips / self.watts

    @property
    def bips2_per_watt(self) -> float:
        return self.bips**2 / self.watts

    @property
    def bips3_per_watt(self) -> float:
        return self.bips**3 / self.watts


def split_power(
    config: MachineConfig, result: SimulationResult, power_model: PowerModel = None
) -> Dict[str, float]:
    """Total watts split into dynamic and static parts."""
    power_model = power_model or PowerModel()
    breakdown = power_model.breakdown(config, result.counts)
    static = sum(structures.static_power(config).values()) * power_model.scale
    total = breakdown.total
    static = min(static, total)  # guard: static can never exceed total
    return {"dynamic": total - static, "static": static, "total": total}


def scale_operating_point(
    config: MachineConfig,
    result: SimulationResult,
    voltage_scale: float,
    power_model: PowerModel = None,
) -> OperatingPoint:
    """The design's performance/power at a scaled supply voltage."""
    if voltage_scale <= 0:
        raise VoltageError(f"voltage scale must be positive, got {voltage_scale}")
    parts = split_power(config, result, power_model)
    k = voltage_scale
    dynamic = parts["dynamic"] * k**DYNAMIC_EXPONENT
    static = parts["static"] * k**STATIC_EXPONENT
    return OperatingPoint(
        voltage_scale=k,
        bips=result.bips * k**FREQUENCY_EXPONENT,
        watts=dynamic + static,
        dynamic_watts=dynamic,
        static_watts=static,
    )


@dataclass
class InvarianceStudy:
    """Metric spreads over a voltage sweep (max/min ratio per metric)."""

    points: List[OperatingPoint]
    spreads: Dict[str, float]


def invariance_study(
    config: MachineConfig,
    result: SimulationResult,
    voltage_scales: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.2),
    power_model: PowerModel = None,
) -> InvarianceStudy:
    """Sweep voltage and measure each metric's spread.

    A perfectly voltage-invariant metric has spread 1.0; bips^3/w should
    come far closer to it than bips/w or bips^2/w, deviating only through
    the leakage fraction.
    """
    if not voltage_scales:
        raise VoltageError("need at least one voltage scale")
    points = [
        scale_operating_point(config, result, k, power_model)
        for k in voltage_scales
    ]

    def spread(metric: str) -> float:
        values = [getattr(p, metric) for p in points]
        return max(values) / min(values)

    return InvarianceStudy(
        points=points,
        spreads={
            "bips_per_watt": spread("bips_per_watt"),
            "bips2_per_watt": spread("bips2_per_watt"),
            "bips3_per_watt": spread("bips3_per_watt"),
        },
    )
