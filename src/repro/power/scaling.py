"""Power scaling laws.

The paper's power model inherits two key scaling behaviours (Section 2.1):

- **superlinear width scaling** for multi-ported structures — register
  files, rename logic, forwarding/bypass — following Zyuban's analysis
  [25], while clustered functional units keep FU power growth near linear
  with width [19, 25];
- **depth-driven latch and clock power** — deeper pipelines (smaller FO4
  per stage) insert more pipeline latches and clock them faster [26].

This module centralizes those exponents and the latch-count model so the
structure models in :mod:`repro.power.structures` stay declarative.
"""

from __future__ import annotations

#: Reference machine width for normalizing width scaling factors.
REFERENCE_WIDTH = 4

#: Superlinear exponent for heavily multi-ported structures (register
#: files, bypass network) [25].  Calibrated down from the raw port-count
#: argument (~w^1.8) because the modeled machine, like the paper's, clusters
#: its datapath so port fan-in does not grow with full machine width.
PORTED_EXPONENT = 1.25

#: Mildly superlinear exponent for rename/decode structures.
FRONTEND_EXPONENT = 1.05

#: Near-linear exponent for clustered functional units [19, 25].
CLUSTERED_EXPONENT = 1.0

#: Exponent for issue-queue broadcast networks.
BROADCAST_EXPONENT = 0.7

#: Latches per stage per unit of width (datapath registers).
LATCHES_PER_STAGE_PER_WIDTH = 220.0

#: Exponent of width in the latch count (datapath + control replication).
LATCH_WIDTH_EXPONENT = 0.6

#: Exponent of stage count in the latch count: mildly sublinear because
#: some latch banks (architected state) do not replicate per stage.
STAGE_EXPONENT = 0.85


def width_scale(width: int, exponent: float) -> float:
    """Power multiplier of a structure at ``width`` relative to 4-wide."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return (width / REFERENCE_WIDTH) ** exponent


def latch_count(depth_fo4: float, width: int) -> float:
    """Approximate pipeline latch count.

    Proportional to total stage count (which grows as FO4 per stage
    shrinks) and sublinearly to machine width.
    """
    # Imported lazily: repro.simulator.config itself imports repro.power
    # (for CACTI latencies), so a module-level import here would cycle.
    from ..simulator import frequency

    stages = frequency.total_stages(depth_fo4)
    return (
        LATCHES_PER_STAGE_PER_WIDTH
        * stages**STAGE_EXPONENT
        * width**LATCH_WIDTH_EXPONENT
    )
