"""PowerTimer-style power evaluation.

:class:`PowerModel` combines the per-structure models into a total watts
figure and a named breakdown, attached to a
:class:`~repro.simulator.results.SimulationResult` after timing simulation
— mirroring how PowerTimer derives power from Turandot's resource
utilization statistics [1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict

from . import structures

if TYPE_CHECKING:  # imported lazily to avoid a cycle with simulator.config
    from ..simulator.config import MachineConfig
    from ..simulator.results import ActivityCounts, SimulationResult


@dataclass(frozen=True)
class PowerBreakdown:
    """Watts by structure, plus the total."""

    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def fraction(self, name: str) -> float:
        total = self.total
        return self.components[name] / total if total else 0.0


class PowerModel:
    """Evaluates total power for (config, activity) pairs.

    ``scale`` multiplies every component — a calibration hook for ablations
    (e.g. technology scaling studies) that leaves relative behaviour alone.
    """

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self._components: Dict[
            str, Callable[[MachineConfig, ActivityCounts], float]
        ] = {
            "clock": lambda c, a: structures.clock_power(c),
            "frontend": structures.frontend_power,
            "regfile": structures.regfile_power,
            "issue_queues": structures.issue_queue_power,
            "lsq": structures.lsq_power,
            "functional_units": structures.fu_power,
            "caches": structures.cache_power,
            "base_leakage": lambda c, a: structures.base_leakage(c),
        }

    def breakdown(
        self, config: MachineConfig, counts: ActivityCounts
    ) -> PowerBreakdown:
        """Per-structure watts for one simulated execution."""
        components = {
            name: self.scale * model(config, counts)
            for name, model in self._components.items()
        }
        return PowerBreakdown(components=components)

    def evaluate(
        self, config: MachineConfig, result: SimulationResult
    ) -> SimulationResult:
        """Attach watts and the breakdown to ``result`` (in place)."""
        breakdown = self.breakdown(config, result.counts)
        result.watts = breakdown.total
        result.power_breakdown = dict(breakdown.components)
        return result
