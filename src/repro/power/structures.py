"""Per-structure power models.

Each function returns watts for one microarchitectural structure given the
machine configuration and the simulation's activity counts.  Dynamic power
is ``energy/event x events/second``; nanojoules times gigahertz conveniently
yields watts.  Structures with significant standby components (clock tree,
arrays) carry explicit idle/leakage terms.

Constants are calibrated so the POWER4-like baseline of Table 3 lands in
the tens of watts and the 12 FO4 / 8-wide corner of the space reaches the
~150W the paper's Figure 2 shows, with the correct *relative* scaling in
depth, width and array sizes (see DESIGN.md on substitutions).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import cacti, scaling

if TYPE_CHECKING:  # imported lazily to avoid a cycle with simulator.config
    from ..simulator.config import MachineConfig
    from ..simulator.results import ActivityCounts

# -- energy constants (nanojoules per event at the reference width) --------

ENERGY_NJ = {
    "decode": 0.9,
    "rename": 1.1,
    "int_op": 2.0,
    "int_mul_op": 5.0,
    "fp_op": 6.0,
    "fp_div_op": 12.0,
    "agen_op": 2.5,
    "branch_op": 1.0,
    "regfile_access": 0.235,  # per sqrt(entry) — see regfile_power
    "issue_wakeup": 0.010,    # per queue entry searched
    "lsq_search": 0.020,      # per queue entry searched
    "predictor_access": 0.15,
}

#: Watts per latch per GHz (clock distribution + latch hold power).
CLOCK_W_PER_LATCH_GHZ = 0.0018

#: Idle (clock-gated floor) fraction of each array's peak dynamic power.
ARRAY_IDLE_FRACTION = 0.10

#: Core leakage per functional unit (watts).
FU_LEAKAGE_W = 0.35

#: Fixed platform leakage (watts): pads, PLLs, misc control.
BASE_LEAKAGE_W = 4.0

#: Leakage per physical register (watts).
REGISTER_LEAKAGE_W = 0.004

#: Leakage per queue entry (reservation stations, LSQ) in watts.
QUEUE_LEAKAGE_W = 0.006


def _per_second(events: int, counts: ActivityCounts, f_ghz: float) -> float:
    """Events per nanosecond (== events/cycle * GHz)."""
    return counts.activity(events) * f_ghz


def clock_power(config: MachineConfig) -> float:
    """Clock tree + pipeline latch power; the depth-sensitive term."""
    latches = scaling.latch_count(config.depth_fo4, config.width)
    return CLOCK_W_PER_LATCH_GHZ * latches * config.frequency_ghz


def frontend_power(config: MachineConfig, counts: ActivityCounts) -> float:
    """Fetch/decode/rename energy; mildly superlinear in width.

    Includes wrong-path waste: each mispredict flushes a front end holding
    roughly ``stages x width / 2`` instructions whose fetch/decode energy
    was spent for nothing — a penalty that grows with pipeline depth and
    width, as in PowerTimer's speculative-work accounting.
    """
    f = config.frequency_ghz
    scale = scaling.width_scale(config.width, scaling.FRONTEND_EXPONENT)
    wasted = counts.mispredicts * config.frontend_stages * config.width * 0.5
    events = counts.instructions + wasted
    decode = ENERGY_NJ["decode"] * _per_second(events, counts, f)
    rename = ENERGY_NJ["rename"] * _per_second(events, counts, f)
    predictor = ENERGY_NJ["predictor_access"] * _per_second(counts.branches, counts, f)
    return (decode + rename) * scale + predictor


def regfile_power(config: MachineConfig, counts: ActivityCounts) -> float:
    """Multi-ported register files; the strongest width-superlinear term."""
    f = config.frequency_ghz
    scale = scaling.width_scale(config.width, scaling.PORTED_EXPONENT)
    e_gpr = ENERGY_NJ["regfile_access"] * config.gpr_phys**0.5 * scale
    e_fpr = ENERGY_NJ["regfile_access"] * config.fpr_phys**0.5 * scale
    gpr_events = counts.gpr_reads + counts.gpr_writes
    fpr_events = counts.fpr_reads + counts.fpr_writes
    dynamic = e_gpr * _per_second(gpr_events, counts, f)
    dynamic += e_fpr * _per_second(fpr_events, counts, f)
    leakage = REGISTER_LEAKAGE_W * (
        config.gpr_phys + config.fpr_phys + config.spr_phys
    )
    return dynamic + leakage


def issue_queue_power(config: MachineConfig, counts: ActivityCounts) -> float:
    """Reservation-station wakeup/select; broadcast cost grows with width."""
    f = config.frequency_ghz
    scale = scaling.width_scale(config.width, scaling.BROADCAST_EXPONENT)
    e = ENERGY_NJ["issue_wakeup"] * scale
    int_events = counts.int_ops + counts.int_mul_ops
    fp_events = counts.fp_ops + counts.fp_div_ops
    dynamic = e * config.fx_resv * _per_second(int_events, counts, f)
    dynamic += e * config.fp_resv * _per_second(fp_events, counts, f)
    dynamic += e * config.br_resv * _per_second(counts.branches, counts, f)
    leakage = QUEUE_LEAKAGE_W * (config.fx_resv + config.fp_resv + config.br_resv)
    return dynamic + leakage


def lsq_power(config: MachineConfig, counts: ActivityCounts) -> float:
    """Load/store queue CAM search per memory operation."""
    f = config.frequency_ghz
    events = counts.loads + counts.stores
    dynamic = ENERGY_NJ["lsq_search"] * config.ls_queue * _per_second(events, counts, f)
    leakage = QUEUE_LEAKAGE_W * (config.ls_queue + config.store_queue)
    return dynamic + leakage


def fu_power(config: MachineConfig, counts: ActivityCounts) -> float:
    """Functional units: near-linear in width thanks to clustering."""
    f = config.frequency_ghz
    scale = scaling.width_scale(config.width, scaling.CLUSTERED_EXPONENT)
    dynamic = (
        ENERGY_NJ["int_op"] * _per_second(counts.int_ops, counts, f)
        + ENERGY_NJ["int_mul_op"] * _per_second(counts.int_mul_ops, counts, f)
        + ENERGY_NJ["fp_op"] * _per_second(counts.fp_ops, counts, f)
        + ENERGY_NJ["fp_div_op"] * _per_second(counts.fp_div_ops, counts, f)
        + ENERGY_NJ["agen_op"] * _per_second(counts.loads + counts.stores, counts, f)
        + ENERGY_NJ["branch_op"] * _per_second(counts.branches, counts, f)
    ) * scale
    # 4 unit classes (FXU/FPU/LSU/BR), `functional_units` of each.
    leakage = FU_LEAKAGE_W * 4 * config.functional_units
    return dynamic + leakage


def _array_power(
    size_kb: float, assoc: int, accesses: int, counts: ActivityCounts, f_ghz: float
) -> float:
    """Dynamic + idle + leakage power of one cache array."""
    energy = cacti.access_energy_nj(size_kb, assoc)
    dynamic = energy * _per_second(accesses, counts, f_ghz)
    idle = ARRAY_IDLE_FRACTION * energy * f_ghz  # gated clock floor
    return dynamic + idle + cacti.leakage_w(size_kb)


def cache_power(config: MachineConfig, counts: ActivityCounts) -> float:
    """All three cache arrays plus the memory interface."""
    f = config.frequency_ghz
    total = _array_power(
        config.il1_kb, config.il1_assoc, counts.il1_accesses, counts, f
    )
    total += _array_power(
        config.dl1_kb, config.dl1_assoc, counts.dl1_accesses, counts, f
    )
    total += _array_power(
        config.l2_mb * 1024.0, config.l2_assoc, counts.l2_accesses, counts, f
    )
    total += cacti.MEMORY_ACCESS_ENERGY_NJ * _per_second(
        counts.memory_accesses, counts, f
    )
    return total


def base_leakage(config: MachineConfig) -> float:
    """Fixed platform leakage."""
    return BASE_LEAKAGE_W


def static_power(config: MachineConfig) -> dict:
    """Leakage-only watts per structure (no activity dependence).

    Used to split each structure's total into dynamic and static parts —
    the two scale differently under voltage scaling (~V^3 with frequency
    versus ~V), which is what limits the bips^3/w metric's voltage
    invariance in practice.
    """
    return {
        "clock": 0.0,  # clock tree power is all switching
        "frontend": 0.0,
        "regfile": REGISTER_LEAKAGE_W
        * (config.gpr_phys + config.fpr_phys + config.spr_phys),
        "issue_queues": QUEUE_LEAKAGE_W
        * (config.fx_resv + config.fp_resv + config.br_resv),
        "lsq": QUEUE_LEAKAGE_W * (config.ls_queue + config.store_queue),
        "functional_units": FU_LEAKAGE_W * 4 * config.functional_units,
        "caches": (
            cacti.leakage_w(config.il1_kb)
            + cacti.leakage_w(config.dl1_kb)
            + cacti.leakage_w(config.l2_mb * 1024.0)
        ),
        "base_leakage": BASE_LEAKAGE_W,
    }
