"""Extended design space (the paper's future-work parameters).

Section 8 names two parameters the authors intend to add: cache
associativity and in-order execution.  This module defines them and an
extended space including both, so the simulator, models and studies can be
exercised beyond the paper's evaluation.
"""

from __future__ import annotations

from .parameters import Parameter
from .space import DesignSpace
from .table1 import TABLE1_PARAMETERS

#: Set-associativity applied to the d-L1 cache (the baseline is 2-way).
DL1_ASSOCIATIVITY = Parameter(
    name="dl1_assoc",
    values=(1, 2, 4, 8),
    unit="ways",
    group="S8",
    description="d-L1 cache associativity",
    log2_encode=True,
)

#: Issue discipline: 0 = out-of-order (the paper's machines), 1 = in-order.
IN_ORDER = Parameter(
    name="in_order",
    values=(0, 1),
    unit="flag",
    group="S9",
    description="in-order issue discipline",
)

EXTENDED_PARAMETERS = TABLE1_PARAMETERS + (DL1_ASSOCIATIVITY, IN_ORDER)


def extended_space() -> DesignSpace:
    """Table 1 space crossed with associativity and issue discipline."""
    return DesignSpace(EXTENDED_PARAMETERS, name="table1-extended")
