"""The paper's design space (Table 1) and the exploration subspace.

Table 1 defines seven parameter groups ``S1 .. S7``; their Cartesian
product is the 375,000-point sampling space.  Section 3.5 explores a
262,500-point subspace with pipeline depths restricted to 12..30 FO4 —
the sampling space is deliberately larger than the exploration space so
that predictions near the boundary of the exploration space interpolate
rather than extrapolate.
"""

from __future__ import annotations

from .parameters import Parameter, linear_range, pow2_range
from .space import DesignSpace

#: S1 — pipeline depth in FO4 inverter delays per stage (9::3::36).
DEPTH = Parameter(
    name="depth",
    values=linear_range(9, 3, 36),
    unit="FO4",
    group="S1",
    description="pipeline depth in FO4 delays per stage",
)

#: S2 — pipeline width; decode bandwidth with queue depths and FU counts
#: varying in lockstep (2/4/8-wide machines).
WIDTH = Parameter(
    name="width",
    values=(2, 4, 8),
    unit="insns/cycle",
    group="S2",
    description="decode bandwidth",
    log2_encode=True,
    derived={
        "ls_queue": linear_range(15, 15, 45),
        "store_queue": linear_range(14, 14, 42),
        "functional_units": (1, 2, 4),
    },
)

#: S3 — physical register files; GPR count is primary, FPR and SPR scale
#: with it.
REGISTERS = Parameter(
    name="gpr_phys",
    values=linear_range(40, 10, 130),
    unit="registers",
    group="S3",
    description="general purpose physical registers",
    derived={
        "fpr_phys": linear_range(40, 8, 112),
        "spr_phys": linear_range(42, 6, 96),
    },
)

#: S4 — reservation stations; branch-RS entry count is primary, fixed-point
#: and floating-point RS sizes scale with it.
RESERVATIONS = Parameter(
    name="br_resv",
    values=linear_range(6, 1, 15),
    unit="entries",
    group="S4",
    description="branch reservation station entries",
    derived={
        "fx_resv": linear_range(10, 2, 28),
        "fp_resv": linear_range(5, 1, 14),
    },
)

#: S5 — instruction L1 cache size in KB (16::2x::256).
ICACHE = Parameter(
    name="il1_kb",
    values=pow2_range(16, 256),
    unit="KB",
    group="S5",
    description="i-L1 cache size",
    log2_encode=True,
)

#: S6 — data L1 cache size in KB (8::2x::128).
DCACHE = Parameter(
    name="dl1_kb",
    values=pow2_range(8, 128),
    unit="KB",
    group="S6",
    description="d-L1 cache size",
    log2_encode=True,
)

#: S7 — unified L2 cache size in MB (0.25::2x::4).
L2CACHE = Parameter(
    name="l2_mb",
    values=(0.25, 0.5, 1.0, 2.0, 4.0),
    unit="MB",
    group="S7",
    description="L2 cache size",
    log2_encode=True,
)

TABLE1_PARAMETERS = (DEPTH, WIDTH, REGISTERS, RESERVATIONS, ICACHE, DCACHE, L2CACHE)

#: Depth levels of the exploration space (Section 3.5): 12..30 FO4.
EXPLORATION_DEPTHS = linear_range(12, 3, 30)


def sampling_space() -> DesignSpace:
    """The 375,000-point Table 1 space used for sampling and model training."""
    return DesignSpace(TABLE1_PARAMETERS, name="table1")


def exploration_space() -> DesignSpace:
    """The 262,500-point subspace explored by the three studies."""
    return sampling_space().restrict(
        {"depth": EXPLORATION_DEPTHS}, name="exploration"
    )
