"""Design parameter definitions.

The paper's design space (Table 1) is built from *parameter groups*: one
degree of freedom (e.g. "width") that simultaneously controls several
machine settings (decode bandwidth, load/store queue depth, store queue
depth, functional unit count).  A :class:`Parameter` models one such degree
of freedom: an ordered tuple of primary values plus, optionally, tuples of
*derived* settings that vary in lockstep with the primary value.

Parameters are immutable.  Identity of values matters: sampling, encoding
and the simulator all look values up by position in ``values``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple, Union

Number = Union[int, float]


class ParameterError(ValueError):
    """Raised for malformed parameter definitions or unknown values."""


def linear_range(start: Number, step: Number, stop: Number) -> Tuple[Number, ...]:
    """Inclusive arithmetic progression, the paper's ``i::j::k`` notation.

    >>> linear_range(9, 3, 36)
    (9, 12, 15, 18, 21, 24, 27, 30, 33, 36)
    """
    if step <= 0:
        raise ParameterError(f"step must be positive, got {step}")
    if stop < start:
        raise ParameterError(f"empty range: start={start} > stop={stop}")
    values = []
    current = start
    # Tolerate float accumulation: stop within half a step counts.
    while current <= stop + step * 1e-9:
        values.append(current)
        current += step
    return tuple(values)


def pow2_range(start: Number, stop: Number) -> Tuple[Number, ...]:
    """Inclusive geometric progression doubling each step (``i::2x::k``).

    >>> pow2_range(16, 256)
    (16, 32, 64, 128, 256)
    """
    if start <= 0:
        raise ParameterError(f"start must be positive, got {start}")
    if stop < start:
        raise ParameterError(f"empty range: start={start} > stop={stop}")
    values = []
    current = float(start)
    while current <= stop * (1 + 1e-9):
        values.append(int(current) if current == int(current) else current)
        current *= 2
    return tuple(values)


@dataclass(frozen=True)
class Parameter:
    """One degree of freedom in the design space.

    Attributes
    ----------
    name:
        Identifier used throughout the library (e.g. ``"depth"``).
    values:
        Ordered tuple of primary values this parameter may take.
    unit:
        Human-readable unit (``"FO4"``, ``"KB"``, ...).
    group:
        The paper's set label, ``"S1"`` .. ``"S7"``.
    description:
        One-line description for tables and docs.
    log2_encode:
        When True, numeric encodings (for regression and clustering) use
        ``log2(value)`` so that geometric ranges such as cache sizes are
        evenly spaced.
    derived:
        Mapping of machine-setting name to a tuple parallel to ``values``;
        the derived setting takes ``derived[k][i]`` whenever the primary
        value is ``values[i]``.
    """

    name: str
    values: Tuple[Number, ...]
    unit: str = ""
    group: str = ""
    description: str = ""
    log2_encode: bool = False
    derived: Mapping[str, Tuple[Number, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("parameter name must be non-empty")
        if len(self.values) < 1:
            raise ParameterError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ParameterError(f"parameter {self.name!r} has duplicate values")
        if list(self.values) != sorted(self.values):
            raise ParameterError(f"parameter {self.name!r} values must be ascending")
        for key, column in self.derived.items():
            if len(column) != len(self.values):
                raise ParameterError(
                    f"derived setting {key!r} of parameter {self.name!r} has "
                    f"{len(column)} entries, expected {len(self.values)}"
                )
        if self.log2_encode and any(v <= 0 for v in self.values):
            raise ParameterError(
                f"parameter {self.name!r} cannot be log2-encoded: non-positive value"
            )

    @property
    def cardinality(self) -> int:
        """Number of levels, the paper's ``|S_i|``."""
        return len(self.values)

    def index_of(self, value: Number) -> int:
        """Position of ``value`` in ``values``; raises for unknown values."""
        try:
            return self.values.index(value)
        except ValueError:
            raise ParameterError(
                f"{value!r} is not a level of parameter {self.name!r}; "
                f"levels are {self.values}"
            ) from None

    def settings_at(self, value: Number) -> Dict[str, Number]:
        """All machine settings implied by taking ``value``.

        Includes the primary value under this parameter's own name and every
        derived setting at the matching index.
        """
        index = self.index_of(value)
        settings: Dict[str, Number] = {self.name: value}
        for key, column in self.derived.items():
            settings[key] = column[index]
        return settings

    def encode(self, value: Number) -> float:
        """Numeric encoding of ``value`` used by regression and clustering."""
        self.index_of(value)  # validate membership
        if not self.log2_encode:
            return float(value)
        if value <= 0:
            raise ParameterError(
                f"{self.name}: log2 encoding requires positive values, "
                f"got {value!r}"
            )
        return math.log2(value)

    def decode(self, encoded: float) -> Number:
        """Nearest valid level for an encoded coordinate (inverse of encode)."""
        return min(self.values, key=lambda v: abs(self.encode(v) - encoded))

    def nearest(self, value: Number) -> Number:
        """Nearest valid level to an arbitrary raw value."""
        return min(self.values, key=lambda v: abs(float(v) - float(value)))

    def span(self) -> Tuple[float, float]:
        """(min, max) of the encoded coordinate, used for normalization."""
        encoded = [self.encode(v) for v in self.values]
        return min(encoded), max(encoded)


def validate_unique_names(parameters: Sequence[Parameter]) -> None:
    """Raise if any two parameters (or derived settings) share a name."""
    seen: Dict[str, str] = {}
    for parameter in parameters:
        names = [parameter.name, *parameter.derived.keys()]
        for name in names:
            if name in seen:
                raise ParameterError(
                    f"setting name {name!r} defined by both {seen[name]!r} "
                    f"and {parameter.name!r}"
                )
            seen[name] = parameter.name
