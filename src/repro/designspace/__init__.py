"""Design space definition, sampling and encoding.

Public surface:

- :class:`Parameter`, :class:`DesignSpace`, :class:`DesignPoint` — space model
- :func:`sampling_space`, :func:`exploration_space` — the paper's Table 1 spaces
- :func:`sample_uar` and friends — samplers (Section 2.3)
- :class:`DesignEncoder`, :class:`NormalizedEncoder` — numeric codecs
"""

from .encoding import DesignEncoder, NormalizedEncoder
from .extensions import DL1_ASSOCIATIVITY, IN_ORDER, extended_space
from .parameters import Parameter, ParameterError, linear_range, pow2_range
from .sampling import (
    sample_halton,
    sample_stratified,
    sample_uar,
    split_train_validation,
)
from .space import DesignPoint, DesignSpace
from .table1 import (
    DCACHE,
    DEPTH,
    EXPLORATION_DEPTHS,
    ICACHE,
    L2CACHE,
    REGISTERS,
    RESERVATIONS,
    TABLE1_PARAMETERS,
    WIDTH,
    exploration_space,
    sampling_space,
)

__all__ = [
    "Parameter",
    "ParameterError",
    "DesignSpace",
    "DesignPoint",
    "DesignEncoder",
    "NormalizedEncoder",
    "linear_range",
    "pow2_range",
    "sample_uar",
    "sample_stratified",
    "sample_halton",
    "split_train_validation",
    "sampling_space",
    "exploration_space",
    "extended_space",
    "TABLE1_PARAMETERS",
    "EXPLORATION_DEPTHS",
    "DEPTH",
    "WIDTH",
    "REGISTERS",
    "RESERVATIONS",
    "ICACHE",
    "DCACHE",
    "L2CACHE",
    "DL1_ASSOCIATIVITY",
    "IN_ORDER",
]
