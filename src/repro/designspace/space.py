"""Design spaces and design points.

A :class:`DesignSpace` is the Cartesian product of its parameters' value
sets — the paper's ``S = S1 x ... x S7``.  Points are addressable by a
mixed-radix integer index in ``[0, |S|)``, which lets callers enumerate or
subsample enormous spaces without materializing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .parameters import Number, Parameter, ParameterError, validate_unique_names


@dataclass(frozen=True)
class DesignPoint:
    """One configuration: a value for every parameter of its space.

    Stored as a tuple of primary values in the space's parameter order.
    Hashable, so points can key dictionaries and sets (used for dedup in
    pareto and clustering code).
    """

    names: Tuple[str, ...]
    values: Tuple[Number, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.values):
            raise ParameterError(
                f"point has {len(self.values)} values for {len(self.names)} names"
            )

    def __getitem__(self, name: str) -> Number:
        try:
            return self.values[self.names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def get(self, name: str, default: Optional[Number] = None) -> Optional[Number]:
        return self[name] if name in self.names else default

    def as_dict(self) -> Dict[str, Number]:
        return dict(zip(self.names, self.values))

    def replace(self, **overrides: Number) -> "DesignPoint":
        """Copy of this point with some parameter values replaced."""
        unknown = set(overrides) - set(self.names)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        values = tuple(
            overrides.get(name, value) for name, value in zip(self.names, self.values)
        )
        return DesignPoint(self.names, values)

    def __str__(self) -> str:
        inner = ", ".join(f"{n}={v}" for n, v in zip(self.names, self.values))
        return f"DesignPoint({inner})"


class DesignSpace:
    """Cartesian product of parameters with integer-indexed points."""

    def __init__(self, parameters: Sequence[Parameter], name: str = "design-space"):
        if not parameters:
            raise ParameterError("a design space needs at least one parameter")
        validate_unique_names(parameters)
        self._parameters: Tuple[Parameter, ...] = tuple(parameters)
        self._by_name: Dict[str, Parameter] = {p.name: p for p in parameters}
        self.name = name
        self._names: Tuple[str, ...] = tuple(p.name for p in parameters)
        # Mixed-radix place values: index = sum(level_i * radix_i).
        radices: List[int] = []
        place = 1
        for parameter in reversed(self._parameters):
            radices.append(place)
            place *= parameter.cardinality
        self._radices: Tuple[int, ...] = tuple(reversed(radices))
        self._size = place

    # -- basic protocol ----------------------------------------------------

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        return self._parameters

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def radices(self) -> Tuple[int, ...]:
        """Mixed-radix place values, parallel to :attr:`parameters`.

        ``index = sum(level_i * radices[i])`` — exposed so vectorized
        consumers (the sweep engine) can decode blocks of indices into
        per-parameter level arrays without materializing points.
        """
        return self._radices

    def parameter(self, name: str) -> Parameter:
        """Parameter by name; raises with the valid names listed."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ParameterError(
                f"space {self.name!r} has no parameter {name!r}; "
                f"parameters are {list(self._names)}"
            ) from None

    def __len__(self) -> int:
        """Total number of design points, the paper's ``|S|``."""
        return self._size

    def __contains__(self, point: DesignPoint) -> bool:
        if tuple(point.names) != self._names:
            return False
        try:
            for parameter, value in zip(self._parameters, point.values):
                parameter.index_of(value)
        except ParameterError:
            return False
        return True

    def __iter__(self) -> Iterator[DesignPoint]:
        for index in range(self._size):
            yield self.point_at(index)

    # -- point addressing --------------------------------------------------

    def point_at(self, index: int) -> DesignPoint:
        """Decode a mixed-radix index into a design point."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for |S|={self._size}")
        values: List[Number] = []
        remaining = index
        for parameter, radix in zip(self._parameters, self._radices):
            level, remaining = divmod(remaining, radix)
            values.append(parameter.values[level])
        return DesignPoint(self._names, tuple(values))

    def index_of(self, point: DesignPoint) -> int:
        """Inverse of :meth:`point_at`."""
        if tuple(point.names) != self._names:
            raise ParameterError(
                f"point parameters {point.names} do not match space {self._names}"
            )
        index = 0
        triples = zip(self._parameters, self._radices, point.values)
        for parameter, radix, value in triples:
            index += parameter.index_of(value) * radix
        return index

    def point(self, **values: Number) -> DesignPoint:
        """Build a point from keyword values; every parameter is required."""
        missing = set(self._names) - set(values)
        if missing:
            raise ParameterError(f"missing parameters: {sorted(missing)}")
        unknown = set(values) - set(self._names)
        if unknown:
            raise ParameterError(f"unknown parameters: {sorted(unknown)}")
        point = DesignPoint(self._names, tuple(values[name] for name in self._names))
        for parameter, value in zip(self._parameters, point.values):
            parameter.index_of(value)  # validate levels
        return point

    def snap(self, **values: Number) -> DesignPoint:
        """Build a point snapping each raw value to the nearest valid level."""
        missing = set(self._names) - set(values)
        if missing:
            raise ParameterError(f"missing parameters: {sorted(missing)}")
        snapped = {
            name: self.parameter(name).nearest(values[name]) for name in self._names
        }
        return self.point(**snapped)

    # -- expansion & restriction --------------------------------------------

    def machine_settings(self, point: DesignPoint) -> Dict[str, Number]:
        """All machine settings implied by a point, including derived ones."""
        if tuple(point.names) != self._names:
            raise ParameterError(
                f"point parameters {point.names} do not match space {self._names}"
            )
        settings: Dict[str, Number] = {}
        for parameter, value in zip(self._parameters, point.values):
            settings.update(parameter.settings_at(value))
        return settings

    def restrict(
        self, restrictions: Mapping[str, Sequence[Number]], name: Optional[str] = None
    ) -> "DesignSpace":
        """New space with some parameters restricted to subsets of levels.

        Used to carve the 262,500-point exploration space (depth 12..30 FO4)
        out of the 375,000-point sampling space of Table 1.
        """
        unknown = set(restrictions) - set(self._names)
        if unknown:
            raise ParameterError(f"unknown parameters: {sorted(unknown)}")
        parameters: List[Parameter] = []
        for parameter in self._parameters:
            if parameter.name not in restrictions:
                parameters.append(parameter)
                continue
            kept = tuple(sorted(restrictions[parameter.name]))
            indices = [parameter.index_of(v) for v in kept]  # validates membership
            derived = {
                key: tuple(column[i] for i in indices)
                for key, column in parameter.derived.items()
            }
            parameters.append(
                Parameter(
                    name=parameter.name,
                    values=kept,
                    unit=parameter.unit,
                    group=parameter.group,
                    description=parameter.description,
                    log2_encode=parameter.log2_encode,
                    derived=derived,
                )
            )
        return DesignSpace(parameters, name=name or f"{self.name}-restricted")

    def fix(self, name: Optional[str] = None, **fixed: Number) -> "DesignSpace":
        """New space with some parameters pinned to a single value.

        This is how the 'original' constrained pipeline-depth study is
        expressed: every non-depth parameter fixed at its baseline value.
        """
        restrictions = {key: [value] for key, value in fixed.items()}
        return self.restrict(restrictions, name=name or f"{self.name}-fixed")

    def sweep(self, parameter_name: str, base: DesignPoint) -> List[DesignPoint]:
        """All points obtained by varying one parameter around a base point."""
        parameter = self.parameter(parameter_name)
        return [base.replace(**{parameter_name: value}) for value in parameter.values]

    def __repr__(self) -> str:
        dims = " x ".join(str(p.cardinality) for p in self._parameters)
        return f"DesignSpace({self.name!r}, |S|={self._size} = {dims})"
