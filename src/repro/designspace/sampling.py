"""Design space samplers.

The paper samples designs uniformly at random (UAR) from the full space —
Section 2.3 argues this decouples simulation count from space cardinality
and avoids baseline-centred bias.  We provide the UAR sampler used by the
paper plus two alternatives useful for ablation: stratified sampling along
one parameter (guaranteeing coverage of every level) and a deterministic
low-discrepancy (Halton) sampler.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .parameters import ParameterError
from .space import DesignPoint, DesignSpace


def _generator(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def sample_uar(
    space: DesignSpace,
    count: int,
    seed: Optional[int] = None,
    unique: bool = True,
) -> List[DesignPoint]:
    """Sample ``count`` points uniformly at random from ``space``.

    With ``unique=True`` (default) points are sampled without replacement,
    matching the paper's n=1,000 distinct training designs; requires
    ``count <= |space|``.
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    size = len(space)
    rng = _generator(seed)
    if unique:
        if count > size:
            raise ParameterError(
                f"cannot draw {count} unique points from a space of {size}"
            )
        # For huge spaces, rejection sampling beats materializing range(|S|).
        if count * 20 < size:
            seen: set = set()
            indices = []
            while len(indices) < count:
                needed = count - len(indices)
                for i in rng.integers(0, size, size=needed * 2):
                    i = int(i)
                    if i not in seen:
                        seen.add(i)
                        indices.append(i)
                        if len(indices) == count:
                            break
        else:
            indices = list(rng.choice(size, size=count, replace=False))
    else:
        indices = list(rng.integers(0, size, size=count))
    return [space.point_at(int(i)) for i in indices]


def sample_stratified(
    space: DesignSpace,
    parameter_name: str,
    per_level: int,
    seed: Optional[int] = None,
) -> List[DesignPoint]:
    """Sample ``per_level`` points UAR within each level of one parameter.

    Guarantees every level of ``parameter_name`` appears equally often —
    useful when validating per-depth trends (Section 5) where plain UAR may
    under-represent a level at small sample counts.
    """
    parameter = space.parameter(parameter_name)
    rng = _generator(seed)
    points: List[DesignPoint] = []
    for value in parameter.values:
        level_space = space.fix(**{parameter_name: value})
        child_seed = int(rng.integers(0, 2**31 - 1))
        points.extend(sample_uar(level_space, per_level, seed=child_seed))
    return points


def _halton_sequence(index: int, base: int) -> float:
    """The ``index``-th element of the van der Corput sequence in ``base``."""
    result = 0.0
    fraction = 1.0 / base
    i = index
    while i > 0:
        result += fraction * (i % base)
        i //= base
        fraction /= base
    return result


_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def sample_halton(
    space: DesignSpace, count: int, skip: int = 20
) -> List[DesignPoint]:
    """Deterministic low-discrepancy sample of ``count`` points.

    Each parameter is driven by a Halton sequence in a distinct prime base;
    the unit-interval coordinate selects a level by equal-width binning.
    Provided for sampler ablations against the paper's UAR choice.
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    if len(space.parameters) > len(_PRIMES):
        raise ParameterError(
            f"halton sampler supports at most {len(_PRIMES)} parameters"
        )
    points: List[DesignPoint] = []
    for i in range(count):
        values = {}
        for parameter, base in zip(space.parameters, _PRIMES):
            coordinate = _halton_sequence(i + skip, base)
            level = min(
                int(coordinate * parameter.cardinality), parameter.cardinality - 1
            )
            values[parameter.name] = parameter.values[level]
        points.append(space.point(**values))
    return points


def split_train_validation(
    points: Sequence[DesignPoint],
    validation_count: int,
    seed: Optional[int] = None,
) -> tuple:
    """Shuffle ``points`` and split off ``validation_count`` of them."""
    if validation_count > len(points):
        raise ParameterError(
            f"cannot hold out {validation_count} of {len(points)} points"
        )
    rng = _generator(seed)
    order = list(range(len(points)))
    rng.shuffle(order)
    validation = [points[i] for i in order[:validation_count]]
    training = [points[i] for i in order[validation_count:]]
    return training, validation
