"""Numeric encodings of design points.

Regression and clustering both consume design points as numeric vectors.
The encoding uses each parameter's ``encode`` rule (log2 for geometric
ranges such as width and cache sizes, identity otherwise), and the
clustering path additionally normalizes coordinates to [0, 1] with optional
per-parameter weights (Section 6.1's "normalized and weighted vectors").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .parameters import ParameterError
from .space import DesignPoint, DesignSpace


class DesignEncoder:
    """Encode design points of one space into numeric feature vectors."""

    def __init__(self, space: DesignSpace):
        self.space = space
        self.feature_names = list(space.names)

    def encode_point(self, point: DesignPoint) -> np.ndarray:
        """One point -> 1-D float vector in parameter order."""
        if tuple(point.names) != self.space.names:
            raise ParameterError(
                f"point parameters {point.names} do not match space {self.space.names}"
            )
        return np.array(
            [
                parameter.encode(value)
                for parameter, value in zip(self.space.parameters, point.values)
            ],
            dtype=float,
        )

    def encode(self, points: Iterable[DesignPoint]) -> np.ndarray:
        """Many points -> 2-D matrix, one row per point."""
        rows = [self.encode_point(point) for point in points]
        if not rows:
            return np.empty((0, len(self.feature_names)))
        return np.vstack(rows)

    def decode_vector(self, vector: Sequence[float]) -> DesignPoint:
        """Snap an encoded vector back to the nearest valid design point."""
        if len(vector) != len(self.space.parameters):
            raise ParameterError(
                f"vector has {len(vector)} coordinates for "
                f"{len(self.space.parameters)} parameters"
            )
        values = {
            parameter.name: parameter.decode(float(coordinate))
            for parameter, coordinate in zip(self.space.parameters, vector)
        }
        return self.space.point(**values)


class NormalizedEncoder(DesignEncoder):
    """Encoder whose coordinates are scaled to [0, 1] and weighted.

    Euclidean distance between these vectors is the similarity metric used
    by K-means in the heterogeneity study.  Parameters whose encoded span is
    zero (e.g. in a subspace with a pinned value) encode as 0.
    """

    def __init__(
        self, space: DesignSpace, weights: Optional[Mapping[str, float]] = None
    ):
        super().__init__(space)
        weights = dict(weights or {})
        unknown = set(weights) - set(space.names)
        if unknown:
            raise ParameterError(f"weights for unknown parameters: {sorted(unknown)}")
        if any(w < 0 for w in weights.values()):
            raise ParameterError("weights must be non-negative")
        self.weights: Dict[str, float] = {
            name: float(weights.get(name, 1.0)) for name in space.names
        }
        lows: List[float] = []
        spans: List[float] = []
        for parameter in space.parameters:
            low, high = parameter.span()
            lows.append(low)
            spans.append(high - low)
        self._lows = np.array(lows)
        self._spans = np.array(spans)
        self._weight_vector = np.array([self.weights[n] for n in space.names])

    def encode_point(self, point: DesignPoint) -> np.ndarray:
        raw = super().encode_point(point)
        with np.errstate(invalid="ignore"):
            safe_spans = np.where(self._spans > 0, self._spans, 1.0)
            unit = np.where(self._spans > 0, (raw - self._lows) / safe_spans, 0.0)
        return unit * self._weight_vector

    def decode_vector(self, vector: Sequence[float]) -> DesignPoint:
        vector = np.asarray(vector, dtype=float)
        if vector.shape != self._weight_vector.shape:
            raise ParameterError(
                f"vector has {vector.size} coordinates for "
                f"{self._weight_vector.size} parameters"
            )
        safe_weights = np.where(self._weight_vector > 0, self._weight_vector, 1.0)
        raw = (vector / safe_weights) * self._spans + self._lows
        return super().decode_vector(raw)
