"""Command-line interface.

``repro list`` enumerates the paper's tables/figures; ``repro run <id>``
regenerates one (or ``all``); ``repro info`` prints the environment.
Scale is chosen with ``--scale`` or the ``REPRO_SCALE`` env var.

``repro run`` and ``repro sweep`` accept ``--resume``, ``--retries``, and
``--chunk-timeout``: these route the expensive phases through the
resilient executor (:mod:`repro.harness.resilience`), which retries
transient worker failures and journals completed chunks so an
interrupted invocation picks up where it stopped.  Expected operational
errors (bad artifacts, unknown scales, malformed sweeps, failed chunks,
resume-fingerprint mismatches) print one line to stderr and exit with
code 2 instead of a traceback.

``--backend distributed`` swaps the in-process pool for the
lease-coordinated work-stealing backend
(:mod:`repro.harness.distributed`): ``--workers N`` spawns N worker
processes that claim chunks from a shared ``--run-dir``, and ``repro
workers spawn|status|drain|run`` manages extra workers attached to the
same directory from other shells or hosts.

Observability (:mod:`repro.obs`): ``--trace PATH`` on ``run``/``sweep``
records a span/event trace readable with ``repro trace summary|tree``;
``--metrics`` prints the merged metrics snapshot (driver plus pool
workers).  ``-v/-vv`` raise logging verbosity on the ``repro.*``
namespace and ``-q`` silences everything below errors — without these,
resilience retry/degradation warnings go to stderr at WARNING level.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from typing import List, Optional

from . import __version__
from .experiments import EXPERIMENTS, run_experiment, shared_context
from .harness import (
    PRESETS,
    ArtifactError,
    ChunkFailure,
    ResilienceConfig,
    ResilienceError,
    RetryPolicy,
    ScaleError,
    SweepError,
    get_scale,
)


def _configure_logging(verbose: int, quiet: bool) -> None:
    """Attach a stderr handler to the ``repro`` logger namespace.

    Without this the root logger's last-resort handler drops everything
    below WARNING and mangles the rest; with it, resilience retry and
    degradation messages are actually visible.  Idempotent: repeated
    ``main()`` calls (tests) reuse the one handler and just adjust the
    level.
    """
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in logger.handlers:
        if getattr(handler, "_repro_cli", False):
            return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    handler._repro_cli = True
    logger.addHandler(handler)


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared --resume/--retries/--chunk-timeout flag group."""
    parser.add_argument(
        "--resume", action="store_true",
        help="journal completed chunks and resume an interrupted run",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per chunk for transient failures (default 3)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk wall-time limit; timed-out chunks are retried",
    )
    parser.add_argument(
        "--backend", choices=("pool", "distributed"), default="pool",
        help="chunk execution backend: in-process worker pool (default) "
        "or the lease-coordinated distributed work-stealing backend "
        "(--workers N spawns N local worker processes; attach more "
        "with 'repro workers spawn')",
    )
    parser.add_argument(
        "--run-dir", default=None, metavar="PATH",
        help="shared coordination directory for --backend distributed "
        "(default: derived from the run fingerprint under the artifact "
        "cache); pass the same path to 'repro workers spawn' on other "
        "hosts",
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared --trace/--metrics flag group."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span/event trace (checksummed JSONL) to PATH; "
        "inspect it with 'repro trace summary PATH'",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the merged metrics snapshot (driver + workers) "
        "after the run",
    )


def _tracing_from_args(args: argparse.Namespace):
    """Context manager activating ``--trace PATH`` around a command body."""
    from contextlib import contextmanager

    from .obs import configure_tracing, disable_tracing

    @contextmanager
    def tracing():
        if args.trace:
            configure_tracing(args.trace)
        try:
            yield
        finally:
            if args.trace:
                disable_tracing()
                print(f"trace written to {args.trace}")

    return tracing()


def _print_metrics(mark: dict, *worker_snapshots: Optional[dict]) -> None:
    """Print driver-delta metrics merged with worker snapshots.

    Chunk work runs in isolated registries (its metrics arrive only via
    the ``RunReport`` snapshots passed here), so this merge never double
    counts, whichever path executed the chunks.
    """
    from .obs import get_registry, merge_snapshots, render_metrics

    merged = merge_snapshots(get_registry().delta(mark), *worker_snapshots)
    print("--- metrics ---")
    print(render_metrics(merged))


def _resilience_from_args(
    args: argparse.Namespace,
) -> Optional[ResilienceConfig]:
    """A ResilienceConfig when any resilience flag was given, else None."""
    backend = getattr(args, "backend", "pool")
    if (
        not args.resume
        and args.retries is None
        and args.chunk_timeout is None
        and backend == "pool"
    ):
        return None
    policy = RetryPolicy(
        max_attempts=args.retries if args.retries is not None else 3,
        chunk_timeout=args.chunk_timeout,
    )
    distributed = None
    if backend == "distributed":
        from pathlib import Path

        from .harness import DistributedConfig

        distributed = DistributedConfig(
            run_dir=Path(args.run_dir) if args.run_dir else None,
            spawn=max(1, args.workers),
        )
    return ResilienceConfig(
        policy=policy,
        resume=args.resume,
        backend=backend,
        distributed=distributed,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Lee & Brooks (HPCA 2007): regression-based "
            "microarchitectural design space studies."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise log verbosity on the repro.* namespace "
        "(-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors",
    )
    subparsers = parser.add_subparsers(dest="command")

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "ids",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="scale preset (default: REPRO_SCALE or 'default')",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel simulation workers for the campaign phase",
    )
    run_parser.add_argument(
        "--batch-size", type=int, default=None,
        help="configs per block of the batched timing kernel "
        "(default: whole chunk; results are identical for any value)",
    )
    _add_resilience_arguments(run_parser)
    _add_observability_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    info_parser = subparsers.add_parser("info", help="environment summary")
    info_parser.set_defaults(func=_cmd_info)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="blockwise exhaustive prediction sweep of the exploration space",
    )
    sweep_parser.add_argument(
        "--scale", choices=sorted(PRESETS), default=None,
        help="scale preset (default: REPRO_SCALE or 'default')",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel sweep workers (and campaign simulation workers)",
    )
    sweep_parser.add_argument(
        "--block-size", type=int, default=None,
        help="design points predicted per block (default 8192)",
    )
    sweep_parser.add_argument(
        "--bins", type=int, default=50,
        help="delay bins for the pareto frontier (default 50)",
    )
    sweep_parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="restrict to these benchmarks (default: the full suite)",
    )
    sweep_parser.add_argument(
        "--space", choices=("exploration", "sampling"),
        default="exploration",
        help="which design space to sweep (default exploration)",
    )
    _add_resilience_arguments(sweep_parser)
    _add_observability_arguments(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    workers_parser = subparsers.add_parser(
        "workers",
        help="manage distributed-backend workers attached to a run dir",
    )
    workers_sub = workers_parser.add_subparsers(dest="workers_command")
    wspawn_parser = workers_sub.add_parser(
        "spawn", help="launch detached worker processes against a run dir"
    )
    wspawn_parser.add_argument(
        "--run-dir", required=True, metavar="PATH",
        help="coordination directory of the run to join",
    )
    wspawn_parser.add_argument(
        "-n", "--count", type=int, default=1,
        help="number of worker processes to launch (default 1)",
    )
    wspawn_parser.set_defaults(func=_cmd_workers_spawn)
    wstatus_parser = workers_sub.add_parser(
        "status", help="show task, worker, and lease state for a run dir"
    )
    wstatus_parser.add_argument(
        "--run-dir", required=True, metavar="PATH",
        help="coordination directory to inspect",
    )
    wstatus_parser.add_argument(
        "--json", action="store_true", help="print the raw status as JSON"
    )
    wstatus_parser.set_defaults(func=_cmd_workers_status)
    wdrain_parser = workers_sub.add_parser(
        "drain", help="ask every worker on a run dir to exit after its "
        "current chunk",
    )
    wdrain_parser.add_argument(
        "--run-dir", required=True, metavar="PATH",
        help="coordination directory to drain",
    )
    wdrain_parser.set_defaults(func=_cmd_workers_drain)
    wrun_parser = workers_sub.add_parser(
        "run", help="run one worker in the foreground until the run drains"
    )
    wrun_parser.add_argument(
        "--run-dir", required=True, metavar="PATH",
        help="coordination directory of the run to join",
    )
    wrun_parser.add_argument(
        "--id", default=None, metavar="WORKER_ID",
        help="worker identity (default: derived from host and pid)",
    )
    wrun_parser.add_argument(
        "--max-chunks", type=int, default=None, metavar="N",
        help="exit after claiming at most N chunks",
    )
    wrun_parser.set_defaults(func=_cmd_workers_run)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a recorded trace file"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command")
    summary_parser = trace_sub.add_parser(
        "summary",
        help="per-span-name aggregates: count, total/mean/p95 wall, CPU",
    )
    summary_parser.add_argument("path", help="trace JSONL file")
    summary_parser.set_defaults(func=_cmd_trace_summary)
    tree_parser = trace_sub.add_parser(
        "tree", help="slowest-path span tree"
    )
    tree_parser.add_argument("path", help="trace JSONL file")
    tree_parser.add_argument(
        "--depth", type=int, default=8,
        help="maximum tree depth to print (default 8)",
    )
    tree_parser.set_defaults(func=_cmd_trace_tree)
    validate_parser = trace_sub.add_parser(
        "validate",
        help="check every line against the span/event schema and checksums",
    )
    validate_parser.add_argument("path", help="trace JSONL file")
    validate_parser.set_defaults(func=_cmd_trace_validate)

    analyze_parser = subparsers.add_parser(
        "analyze", help="run the repo's static-analysis rules"
    )
    analyze_parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to analyze (default: src/)",
    )
    analyze_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )
    analyze_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: analysis-baseline.json if present)",
    )
    analyze_parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    analyze_parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit",
    )
    analyze_parser.add_argument(
        "--strict", action="store_true",
        help="fail on any finding (not just errors) and on stale baseline "
        "entries",
    )
    analyze_parser.add_argument(
        "--select", nargs="*", default=None, metavar="RULE",
        help="run only these rule ids, space- or comma-separated "
        "(e.g. DET001 LAY001 or DET001,LAY001)",
    )
    analyze_parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    analyze_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel workers for the parse+module-rule phase (default 1)",
    )
    analyze_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-file summary cache (.repro_cache/analysis/)",
    )
    analyze_parser.add_argument(
        "--graph", action="store_true",
        help="dump the import/call graph (entrypoints, RNG factories) as "
        "JSON and exit",
    )
    analyze_parser.set_defaults(func=_cmd_analyze)

    report_parser = subparsers.add_parser(
        "report", help="run experiments and write a markdown report"
    )
    report_parser.add_argument(
        "--output", default="report.md", help="output path (default report.md)"
    )
    report_parser.add_argument(
        "--scale", choices=sorted(PRESETS), default=None,
        help="scale preset (default: REPRO_SCALE or 'default')",
    )
    report_parser.add_argument(
        "--only", nargs="*", default=None,
        help="restrict to these experiment ids",
    )
    report_parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel simulation workers for the campaign phase",
    )
    report_parser.set_defaults(func=_cmd_report)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    for experiment_id, runner in EXPERIMENTS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:>4s}  {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .obs import get_registry

    ids: List[str] = args.ids
    if ids == ["all"]:
        ids = list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"choices: {', '.join(EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    scale = get_scale(args.scale)
    mark = get_registry().snapshot()
    with _tracing_from_args(args):
        ctx = shared_context(
            scale,
            workers=args.workers,
            resilience=_resilience_from_args(args),
            batch_size=args.batch_size,
        )
        for experiment_id in ids:
            started = time.time()
            result = run_experiment(experiment_id, ctx=ctx)
            elapsed = time.time() - started
            print(
                f"=== {result.id}: {result.title} "
                f"[{elapsed:.1f}s @ {scale.name}] ==="
            )
            print(result.text)
            print()
    # only report on a campaign the experiments actually built — touching
    # ctx.campaign here would force a build T1-style experiments never need
    campaign = getattr(ctx, "_campaign", None)
    if campaign is not None and campaign.run_report is not None:
        print(f"campaign execution: {campaign.run_report.summary()}")
    if args.metrics:
        worker_metrics = (
            campaign.run_report.metrics
            if campaign is not None and campaign.run_report is not None
            else None
        )
        _print_metrics(mark, worker_metrics)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .harness.report import write_report

    scale = get_scale(args.scale)
    ctx = shared_context(scale, workers=getattr(args, "workers", 1))
    try:
        path = write_report(ctx, Path(args.output), experiment_ids=args.only)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    print(f"wrote {path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    import json as _json

    from .analysis import (
        CACHE_SUBDIR,
        Baseline,
        BaselineError,
        UsageError,
        all_rules,
        analyze_paths,
        dataflow_index,
        render_json,
        render_text,
    )

    if args.list_rules:
        for rule in all_rules():
            print(
                f"{rule.id}  {rule.severity.label:>7s}  {rule.scope:>7s}  "
                f"{rule.name}"
            )
        return 0

    paths = [Path(p) for p in (args.paths or ["src"])]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    cache_dir = None if args.no_cache else CACHE_SUBDIR

    if args.graph:
        try:
            index = dataflow_index(paths, cache_dir=cache_dir)
        except UsageError as error:
            print(error, file=sys.stderr)
            return 2
        print(_json.dumps(index.to_json(), indent=2))
        return 0

    baseline_path = Path(args.baseline) if args.baseline else Path(
        "analysis-baseline.json"
    )
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as error:
            print(error, file=sys.stderr)
            return 2

    selected = None
    if args.select is not None:
        selected = [
            rule for token in args.select for rule in token.split(",") if rule
        ]
    try:
        report = analyze_paths(
            paths,
            rules=selected,
            baseline=baseline,
            jobs=max(1, args.jobs),
            cache_dir=cache_dir,
        )
    except UsageError as error:
        print(error, file=sys.stderr)
        return 2
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"wrote {len(report.findings)} baseline entries to "
            f"{baseline_path} (fill in the reason fields)"
        )
        return 0

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code(strict=args.strict)


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep the exploration set per benchmark, printing reductions.

    For every benchmark the streaming engine folds one pass into the
    pareto-frontier and efficiency-argmax reducers, then prints the
    frontier size, the bips^3/w-optimal design, and throughput.
    """
    from .harness import (
        ParetoFrontierReducer,
        SpaceSweepSource,
        TopKReducer,
        render_design_point,
    )
    from .harness.artifacts import cache_dir
    from .harness.sweep import run_sweep
    from .obs import get_registry

    scale = get_scale(args.scale)
    resilience = _resilience_from_args(args)
    ctx = shared_context(scale, workers=args.workers, resilience=resilience)
    benchmarks = args.benchmarks or list(ctx.benchmarks)
    unknown = [b for b in benchmarks if b not in ctx.benchmarks]
    if unknown:
        print(f"unknown benchmarks: {unknown}", file=sys.stderr)
        print(f"choices: {', '.join(ctx.benchmarks)}", file=sys.stderr)
        return 2

    if args.space == "sampling":
        from .designspace import sampling_space

        # The sampling space sweeps whole: prediction is cheap enough
        # that no scale subsampling is needed (the point of the paper).
        source = SpaceSweepSource(sampling_space())
    else:
        source = ctx.exploration_source()
    kwargs = {}
    if args.block_size is not None:
        kwargs["block_size"] = args.block_size
    print(
        f"sweeping {len(source):,} {args.space} designs per benchmark "
        f"[scale={scale.name}, workers={args.workers}]"
    )
    mark = get_registry().snapshot()
    worker_metrics: List[Optional[dict]] = []
    with _tracing_from_args(args):
        for benchmark in benchmarks:
            bench_resilience = resilience
            if resilience is not None and resilience.resume:
                # One journal per benchmark, next to the campaign cache.
                bench_resilience = ResilienceConfig(
                    policy=resilience.policy,
                    journal_path=cache_dir()
                    / f"sweep-{scale.name}-{benchmark}.journal.jsonl",
                    resume=True,
                    faults=resilience.faults,
                    backend=resilience.backend,
                    distributed=resilience.distributed,
                )
            report = run_sweep(
                ctx.predictor(benchmark),
                source,
                [
                    ParetoFrontierReducer(bins=args.bins),
                    TopKReducer(metric="efficiency", k=1),
                ],
                workers=args.workers,
                resilience=bench_resilience,
                **kwargs,
            )
            if report.run_report is not None:
                worker_metrics.append(report.run_report.metrics)
            front, best = report.results
            print(f"=== {benchmark} ===")
            print(
                f"  frontier: {len(front)} designs across {args.bins} "
                "delay bins"
            )
            print(
                f"  bips^3/w optimum: {render_design_point(best.points[0])}"
            )
            print(
                f"    bips={best.bips[0]:.3f}  watts={best.watts[0]:.2f}  "
                f"efficiency={best.efficiency[0]:.4g}"
            )
            print(
                f"  throughput: {report.points_per_second:,.0f} points/s "
                f"({report.elapsed_seconds * 1e3:.0f} ms)"
            )
            if report.run_report is not None:
                print(f"  execution: {report.run_report.summary()}")
    if args.metrics:
        campaign = getattr(ctx, "_campaign", None)
        if campaign is not None and campaign.run_report is not None:
            worker_metrics.append(campaign.run_report.metrics)
        _print_metrics(mark, *worker_metrics)
    return 0


def _cmd_workers_spawn(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .harness import spawn_workers

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: no such run dir: {run_dir}", file=sys.stderr)
        return 2
    for entry in spawn_workers(run_dir, max(1, args.count)):
        print(f"spawned worker {entry['worker']} pid={entry['pid']}")
    return 0


def _cmd_workers_status(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .harness import workers_status

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: no such run dir: {run_dir}", file=sys.stderr)
        return 2
    status = workers_status(run_dir)
    if args.json:
        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0
    tasks = status["tasks"]
    print(f"run dir:     {run_dir}")
    print(f"fingerprint: {status['fingerprint']}")
    print(
        f"tasks:       {tasks['done']}/{tasks['total']} done, "
        f"{len(tasks['failed'])} failed"
    )
    print(f"draining:    {'yes' if status['drain'] else 'no'}")
    for worker in status["workers"]:
        alive = worker["alive"]
        liveness = {True: "alive", False: "dead", None: "remote"}[alive]
        print(
            f"worker {worker['worker']}: pid={worker['pid']} "
            f"host={worker['host']} [{liveness}]"
        )
    for lease in status["leases"]:
        print(
            f"lease chunk={lease['chunk']} worker={lease['worker']} "
            f"token={lease['token']} age={lease['age_s']:.1f}s"
        )
    return 0


def _cmd_workers_drain(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .harness import drain

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: no such run dir: {run_dir}", file=sys.stderr)
        return 2
    drain(run_dir)
    print(f"drain requested for {run_dir}")
    return 0


def _cmd_workers_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .harness import run_worker

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: no such run dir: {run_dir}", file=sys.stderr)
        return 2
    outcome = run_worker(
        run_dir, worker_id=args.id, max_chunks=args.max_chunks
    )
    print(
        f"worker {outcome['worker']} finished: "
        f"{len(outcome['completed'])} chunks completed"
    )
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    """Aggregate a trace per span name (count, total/mean/p95 wall, CPU)."""
    from .obs import TraceError, read_trace, render_summary

    try:
        records = read_trace(args.path)
    except (OSError, TraceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_summary(records))
    return 0


def _cmd_trace_tree(args: argparse.Namespace) -> int:
    """Render a trace as a slowest-path span tree."""
    from .obs import TraceError, read_trace, render_tree

    try:
        records = read_trace(args.path)
    except (OSError, TraceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_tree(records, max_depth=args.depth))
    return 0


def _cmd_trace_validate(args: argparse.Namespace) -> int:
    """Strictly validate every trace line (schema + checksums)."""
    from .obs import TraceError, read_trace

    try:
        records = read_trace(args.path, strict=True)
    except (OSError, TraceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    spans = sum(1 for r in records if r["kind"] == "span")
    events = len(records) - spans
    print(f"{args.path}: OK ({spans} spans, {events} events)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .designspace import exploration_space, sampling_space
    from .workloads import BENCHMARK_NAMES

    scale = get_scale()
    print(f"repro {__version__}")
    print(f"sampling space:    {len(sampling_space()):,} designs")
    print(f"exploration space: {len(exploration_space()):,} designs")
    print(f"benchmarks:        {', '.join(BENCHMARK_NAMES)}")
    print(f"active scale:      {scale.name} (trace={scale.trace_length}, "
          f"train={scale.n_train}, val={scale.n_validation})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    if not hasattr(args, "func"):
        parser.print_help()
        return 1
    try:
        return args.func(args)
    except ChunkFailure as error:
        # A chunk failed permanently or exhausted its retries; show what
        # completed (journaled chunks remain resumable) and the reason.
        if error.report is not None:
            print(f"error: {error.report.summary()}", file=sys.stderr)
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ArtifactError, ResilienceError, ScaleError, SweepError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
