"""Command-line interface.

``repro list`` enumerates the paper's tables/figures; ``repro run <id>``
regenerates one (or ``all``); ``repro info`` prints the environment.
Scale is chosen with ``--scale`` or the ``REPRO_SCALE`` env var.

``repro run`` and ``repro sweep`` accept ``--resume``, ``--retries``, and
``--chunk-timeout``: these route the expensive phases through the
resilient executor (:mod:`repro.harness.resilience`), which retries
transient worker failures and journals completed chunks so an
interrupted invocation picks up where it stopped.  Expected operational
errors (bad artifacts, unknown scales, malformed sweeps, failed chunks)
print one line to stderr and exit with code 2 instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import __version__
from .experiments import EXPERIMENTS, run_experiment, shared_context
from .harness import (
    PRESETS,
    ArtifactError,
    ChunkFailure,
    ResilienceConfig,
    RetryPolicy,
    ScaleError,
    SweepError,
    get_scale,
)


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared --resume/--retries/--chunk-timeout flag group."""
    parser.add_argument(
        "--resume", action="store_true",
        help="journal completed chunks and resume an interrupted run",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per chunk for transient failures (default 3)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk wall-time limit; timed-out chunks are retried",
    )


def _resilience_from_args(
    args: argparse.Namespace,
) -> Optional[ResilienceConfig]:
    """A ResilienceConfig when any resilience flag was given, else None."""
    if (
        not args.resume
        and args.retries is None
        and args.chunk_timeout is None
    ):
        return None
    policy = RetryPolicy(
        max_attempts=args.retries if args.retries is not None else 3,
        chunk_timeout=args.chunk_timeout,
    )
    return ResilienceConfig(policy=policy, resume=args.resume)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Lee & Brooks (HPCA 2007): regression-based "
            "microarchitectural design space studies."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "ids",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="scale preset (default: REPRO_SCALE or 'default')",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel simulation workers for the campaign phase",
    )
    _add_resilience_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    info_parser = subparsers.add_parser("info", help="environment summary")
    info_parser.set_defaults(func=_cmd_info)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="blockwise exhaustive prediction sweep of the exploration space",
    )
    sweep_parser.add_argument(
        "--scale", choices=sorted(PRESETS), default=None,
        help="scale preset (default: REPRO_SCALE or 'default')",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel sweep workers (and campaign simulation workers)",
    )
    sweep_parser.add_argument(
        "--block-size", type=int, default=None,
        help="design points predicted per block (default 8192)",
    )
    sweep_parser.add_argument(
        "--bins", type=int, default=50,
        help="delay bins for the pareto frontier (default 50)",
    )
    sweep_parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="restrict to these benchmarks (default: the full suite)",
    )
    _add_resilience_arguments(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    analyze_parser = subparsers.add_parser(
        "analyze", help="run the repo's static-analysis rules"
    )
    analyze_parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to analyze (default: src/)",
    )
    analyze_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )
    analyze_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: analysis-baseline.json if present)",
    )
    analyze_parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    analyze_parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit",
    )
    analyze_parser.add_argument(
        "--strict", action="store_true",
        help="fail on any finding (not just errors) and on stale baseline "
        "entries",
    )
    analyze_parser.add_argument(
        "--select", nargs="*", default=None, metavar="RULE",
        help="run only these rule ids, space- or comma-separated "
        "(e.g. DET001 LAY001 or DET001,LAY001)",
    )
    analyze_parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    analyze_parser.set_defaults(func=_cmd_analyze)

    report_parser = subparsers.add_parser(
        "report", help="run experiments and write a markdown report"
    )
    report_parser.add_argument(
        "--output", default="report.md", help="output path (default report.md)"
    )
    report_parser.add_argument(
        "--scale", choices=sorted(PRESETS), default=None,
        help="scale preset (default: REPRO_SCALE or 'default')",
    )
    report_parser.add_argument(
        "--only", nargs="*", default=None,
        help="restrict to these experiment ids",
    )
    report_parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel simulation workers for the campaign phase",
    )
    report_parser.set_defaults(func=_cmd_report)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    for experiment_id, runner in EXPERIMENTS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:>4s}  {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ids: List[str] = args.ids
    if ids == ["all"]:
        ids = list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"choices: {', '.join(EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    scale = get_scale(args.scale)
    ctx = shared_context(
        scale, workers=args.workers, resilience=_resilience_from_args(args)
    )
    for experiment_id in ids:
        started = time.time()
        result = run_experiment(experiment_id, ctx=ctx)
        elapsed = time.time() - started
        print(f"=== {result.id}: {result.title} [{elapsed:.1f}s @ {scale.name}] ===")
        print(result.text)
        print()
    # only report on a campaign the experiments actually built — touching
    # ctx.campaign here would force a build T1-style experiments never need
    campaign = getattr(ctx, "_campaign", None)
    if campaign is not None and campaign.run_report is not None:
        print(f"campaign execution: {campaign.run_report.summary()}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .harness.report import write_report

    scale = get_scale(args.scale)
    ctx = shared_context(scale, workers=getattr(args, "workers", 1))
    try:
        path = write_report(ctx, Path(args.output), experiment_ids=args.only)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    print(f"wrote {path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (
        Baseline,
        BaselineError,
        all_rules,
        analyze_paths,
        render_json,
        render_text,
    )

    if args.list_rules:
        for rule in all_rules():
            print(
                f"{rule.id}  {rule.severity.label:>7s}  {rule.scope:>7s}  "
                f"{rule.name}"
            )
        return 0

    paths = [Path(p) for p in (args.paths or ["src"])]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else Path(
        "analysis-baseline.json"
    )
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as error:
            print(error, file=sys.stderr)
            return 2

    selected = None
    if args.select is not None:
        selected = [
            rule for token in args.select for rule in token.split(",") if rule
        ]
    try:
        report = analyze_paths(paths, rules=selected, baseline=baseline)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"wrote {len(report.findings)} baseline entries to "
            f"{baseline_path} (fill in the reason fields)"
        )
        return 0

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code(strict=args.strict)


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep the exploration set per benchmark, printing reductions.

    For every benchmark the streaming engine folds one pass into the
    pareto-frontier and efficiency-argmax reducers, then prints the
    frontier size, the bips^3/w-optimal design, and throughput.
    """
    from .harness import ParetoFrontierReducer, TopKReducer, render_design_point
    from .harness.artifacts import cache_dir
    from .harness.sweep import run_sweep

    scale = get_scale(args.scale)
    resilience = _resilience_from_args(args)
    ctx = shared_context(scale, workers=args.workers, resilience=resilience)
    benchmarks = args.benchmarks or list(ctx.benchmarks)
    unknown = [b for b in benchmarks if b not in ctx.benchmarks]
    if unknown:
        print(f"unknown benchmarks: {unknown}", file=sys.stderr)
        print(f"choices: {', '.join(ctx.benchmarks)}", file=sys.stderr)
        return 2

    source = ctx.exploration_source()
    kwargs = {}
    if args.block_size is not None:
        kwargs["block_size"] = args.block_size
    print(
        f"sweeping {len(source):,} designs per benchmark "
        f"[scale={scale.name}, workers={args.workers}]"
    )
    for benchmark in benchmarks:
        bench_resilience = resilience
        if resilience is not None and resilience.resume:
            # One journal per benchmark, next to the campaign cache.
            bench_resilience = ResilienceConfig(
                policy=resilience.policy,
                journal_path=cache_dir()
                / f"sweep-{scale.name}-{benchmark}.journal.jsonl",
                resume=True,
                faults=resilience.faults,
            )
        report = run_sweep(
            ctx.predictor(benchmark),
            source,
            [
                ParetoFrontierReducer(bins=args.bins),
                TopKReducer(metric="efficiency", k=1),
            ],
            workers=args.workers,
            resilience=bench_resilience,
            **kwargs,
        )
        front, best = report.results
        print(f"=== {benchmark} ===")
        print(
            f"  frontier: {len(front)} designs across {args.bins} delay bins"
        )
        print(f"  bips^3/w optimum: {render_design_point(best.points[0])}")
        print(
            f"    bips={best.bips[0]:.3f}  watts={best.watts[0]:.2f}  "
            f"efficiency={best.efficiency[0]:.4g}"
        )
        print(
            f"  throughput: {report.points_per_second:,.0f} points/s "
            f"({report.elapsed_seconds * 1e3:.0f} ms)"
        )
        if report.run_report is not None:
            print(f"  execution: {report.run_report.summary()}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .designspace import exploration_space, sampling_space
    from .workloads import BENCHMARK_NAMES

    scale = get_scale()
    print(f"repro {__version__}")
    print(f"sampling space:    {len(sampling_space()):,} designs")
    print(f"exploration space: {len(exploration_space()):,} designs")
    print(f"benchmarks:        {', '.join(BENCHMARK_NAMES)}")
    print(f"active scale:      {scale.name} (trace={scale.trace_length}, "
          f"train={scale.n_train}, val={scale.n_validation})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        parser.print_help()
        return 1
    try:
        return args.func(args)
    except ChunkFailure as error:
        # A chunk failed permanently or exhausted its retries; show what
        # completed (journaled chunks remain resumable) and the reason.
        if error.report is not None:
            print(f"error: {error.report.summary()}", file=sys.stderr)
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ArtifactError, ScaleError, SweepError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
