"""Import/call graph and reachability over module summaries.

:func:`build_index` folds a set of :class:`~.summaries.ModuleSummary`
objects into a :class:`DataflowIndex`: functions by qualified name, an
import graph, a conservative call graph, pool-worker entrypoints, and
the RNG-factory set the DET003 rule consumes.

Resolution is deliberately conservative.  A dotted target resolves when
it names a summarized function directly, names a class (mapped to its
``__init__``), or can be reached by walking the longest known-module
prefix and following that module's defs and import aliases — which is
what lets ``repro.workloads.get_profile`` resolve through a package
``__init__`` re-export to the defining module.  Method calls on
arbitrary objects, ``getattr`` dispatch, and lambdas stay unresolved;
the rules treat unresolved calls as opaque (no propagation), trading
recall for a near-zero false-positive rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .summaries import (
    ArgInfo,
    CallSite,
    FunctionSummary,
    ModuleSummary,
    RNG_CONSTRUCTORS,
)

#: How many alias/def hops ``resolve`` follows before giving up.
_MAX_RESOLVE_DEPTH = 8

#: Call targets whose callable argument becomes a pool-worker entrypoint.
#: ``ChunkTask(fn=...)`` (or second positional) is the resilience layer's
#: chunk descriptor; ``.submit(fn, ...)`` is the raw executor API;
#: ``Process(target=...)`` / ``Thread(target=...)`` (or second positional)
#: spawn the distributed workers, whose targets run outside the driver
#: process just like pool workers do.
_TASK_WRAPPERS = {"ChunkTask"}
_SUBMIT_METHODS = {"submit"}
_PROCESS_WRAPPERS = {"Process", "Thread"}

#: Decorators that memoize the decorated function.
MEMO_DECORATORS = {
    "functools.lru_cache",
    "functools.cache",
    "lru_cache",
    "cache",
}

#: Method/callable names that register a build function for memoization
#: (``Trace.derived(key, build)`` caches ``build``'s result per key).
_MEMO_REGISTRARS = {"derived"}

#: Class-name suffixes whose ``update`` method must stay pure: sweep
#: reducers fold batches into accumulated state and are replayed on
#: resume, so an impure ``update`` double-applies mutations.
_REDUCER_SUFFIXES = ("Reducer",)


@dataclass(frozen=True)
class RngFactory:
    """A function that builds and returns an RNG seeded from a param."""

    qualname: str
    seed_param: str
    #: Whether an omitted/None seed flows into the constructor unseeded
    #: (the param's default is None and it feeds the seed slot).
    none_default: bool


@dataclass
class DataflowIndex:
    """The interprocedural view the project-scoped rules query."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: module -> imported modules (edges of the import graph).
    imports: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: caller qualname -> resolved callee qualnames.
    calls: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Functions handed to pool executors (ChunkTask fn / .submit).
    entrypoints: Tuple[str, ...] = ()
    #: RNG factories discovered by the seed-flow fixpoint.
    rng_factories: Dict[str, RngFactory] = field(default_factory=dict)
    #: Functions registered as memoized builders (``.derived`` args).
    memo_registered: Tuple[str, ...] = ()

    # -- lookups -----------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionSummary]:
        return self.functions.get(qualname)

    def module_of(self, qualname: str) -> Optional[ModuleSummary]:
        """The summary of the module defining ``qualname``."""
        name = qualname
        while name:
            if name in self.modules:
                return self.modules[name]
            if "." not in name:
                return None
            name = name.rsplit(".", 1)[0]
        return None

    def resolve(self, dotted: str) -> Optional[str]:
        """Resolve a dotted name to a summarized function's qualname."""
        seen: Set[str] = set()
        name = dotted
        for _ in range(_MAX_RESOLVE_DEPTH):
            if name in seen:
                return None
            seen.add(name)
            if name in self.functions:
                return name
            # A class resolves to its constructor when summarized.
            init = f"{name}.__init__"
            if init in self.functions:
                return init
            redirected = self._follow_defs(name)
            if redirected is None or redirected == name:
                return None
            name = redirected
        return None

    def _follow_defs(self, dotted: str) -> Optional[str]:
        """One hop through the longest known-module prefix's defs/aliases."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            head = parts[cut]
            rest = ".".join(parts[cut + 1:])
            if head in mod.defs:
                base = mod.defs[head]
            elif head in mod.aliases:
                base = mod.aliases[head]
            else:
                return None
            return f"{base}.{rest}" if rest else base
        return None

    # -- reachability ------------------------------------------------------

    def reachable_from(
        self, entrypoints: Optional[Tuple[str, ...]] = None
    ) -> Dict[str, str]:
        """BFS over the call graph from ``entrypoints``.

        Returns ``{reachable qualname: originating entrypoint}`` — the
        representative entrypoint is the first (in sorted entrypoint
        order) whose BFS wave reached the function, which gives rule
        messages a stable, meaningful anchor.
        """
        if entrypoints is None:
            entrypoints = self.entrypoints
        origin: Dict[str, str] = {}
        queue: deque = deque()
        for entry in sorted(entrypoints):
            if entry in self.functions and entry not in origin:
                origin[entry] = entry
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for callee in self.calls.get(current, ()):
                if callee not in origin:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        """JSON-ready graph dump for ``repro analyze --graph``."""
        return {
            "modules": sorted(self.modules),
            "imports": {
                module: list(targets)
                for module, targets in sorted(self.imports.items())
                if targets
            },
            "calls": {
                caller: list(callees)
                for caller, callees in sorted(self.calls.items())
                if callees
            },
            "entrypoints": list(self.entrypoints),
            "rng_factories": {
                name: {
                    "seed_param": factory.seed_param,
                    "none_default": factory.none_default,
                }
                for name, factory in sorted(self.rng_factories.items())
            },
            "memo_registered": list(self.memo_registered),
        }


def _callable_args(site: CallSite) -> List[ArgInfo]:
    """Arguments of ``site`` that carry a function reference."""
    infos = [info for info in site.args if info.ref]
    infos += [info for _, info in site.kwargs if info.ref]
    return infos


def _entrypoint_refs(site: CallSite) -> List[str]:
    """Function refs handed to a pool wrapper at this call site."""
    last = site.target.rsplit(".", 1)[-1]
    refs: List[str] = []
    if last in _TASK_WRAPPERS:
        fn_info = site.kwarg("fn")
        if fn_info is None and len(site.args) >= 2:
            fn_info = site.args[1]
        if fn_info is not None and fn_info.ref:
            refs.append(fn_info.ref)
    elif last in _SUBMIT_METHODS:
        for info in site.args:
            if info.ref:
                refs.append(info.ref)
                break
    elif last in _PROCESS_WRAPPERS:
        # Process(target=fn) / Thread(target=fn); the second positional
        # slot is ``target`` in the stdlib signature (group, target, ...).
        fn_info = site.kwarg("target")
        if fn_info is None and len(site.args) >= 2:
            fn_info = site.args[1]
        if fn_info is not None and fn_info.ref:
            refs.append(fn_info.ref)
    return refs


def _find_rng_factories(
    index: DataflowIndex,
) -> Dict[str, RngFactory]:
    """Fixpoint over seed flow: direct constructors, then forwarders.

    Round 0 finds functions that build an RNG whose seed comes straight
    from a parameter and return it.  Subsequent rounds add functions that
    return a call into a known factory, passing one of their own
    parameters into the factory's seed slot — so ``forward_rng(seed)``
    chains resolve however deep they go (bounded by the fixpoint).
    """
    factories: Dict[str, RngFactory] = {}
    for qualname, fn in index.functions.items():
        for event in fn.rng:
            if not event.seed.startswith("param:"):
                continue
            if "return" not in event.escapes:
                continue
            param = event.seed.split(":", 1)[1]
            factories[qualname] = RngFactory(
                qualname=qualname,
                seed_param=param,
                none_default=param in fn.none_default_params,
            )
    changed = True
    while changed:
        changed = False
        for qualname, fn in index.functions.items():
            if qualname in factories:
                continue
            for site in fn.calls:
                if not site.returned:
                    continue
                resolved = index.resolve(site.target)
                if resolved is None or resolved not in factories:
                    continue
                inner = factories[resolved]
                seed_info = _seed_slot(site, index.functions[resolved], inner)
                if seed_info is None or seed_info.param is None:
                    continue
                factories[qualname] = RngFactory(
                    qualname=qualname,
                    seed_param=seed_info.param,
                    none_default=seed_info.param in fn.none_default_params,
                )
                changed = True
                break
    return factories


def _seed_slot(
    site: CallSite, callee: FunctionSummary, factory: RngFactory
) -> Optional[ArgInfo]:
    """The argument feeding ``factory``'s seed parameter at ``site``."""
    info = site.kwarg(factory.seed_param)
    if info is not None:
        return info
    try:
        position = callee.params.index(factory.seed_param)
    except ValueError:
        return None
    if position < len(site.args):
        return site.args[position]
    return None


def seed_argument(
    index: DataflowIndex, site: CallSite, factory: RngFactory
) -> Optional[ArgInfo]:
    """Public wrapper: what flows into ``factory``'s seed at ``site``.

    Returns None when the seed slot is not filled at all (the callee's
    default applies).
    """
    callee = index.functions.get(factory.qualname)
    if callee is None:
        return None
    return _seed_slot(site, callee, factory)


def build_index(summaries: List[ModuleSummary]) -> DataflowIndex:
    """Fold module summaries into the interprocedural index."""
    index = DataflowIndex()
    for summary in summaries:
        index.modules[summary.module] = summary
        index.imports[summary.module] = tuple(
            sorted(set(summary.imports) & {s.module for s in summaries})
        )
        for fn in summary.functions:
            index.functions[fn.qualname] = fn

    entrypoints: Set[str] = set()
    memo_registered: Set[str] = set()
    for summary in summaries:
        if summary.is_test:
            continue
        for fn in summary.functions:
            for site in fn.calls:
                for ref in _entrypoint_refs(site):
                    resolved = index.resolve(ref)
                    if resolved is not None:
                        entrypoints.add(resolved)
                last = site.target.rsplit(".", 1)[-1]
                if last in _MEMO_REGISTRARS:
                    for info in _callable_args(site):
                        resolved = index.resolve(info.ref)
                        if resolved is not None:
                            memo_registered.add(resolved)
    index.entrypoints = tuple(sorted(entrypoints))
    index.memo_registered = tuple(sorted(memo_registered))

    calls: Dict[str, List[str]] = {}
    for qualname, fn in index.functions.items():
        resolved_callees: List[str] = []
        for site in fn.calls:
            resolved = index.resolve(site.target)
            if resolved is not None and resolved != qualname:
                resolved_callees.append(resolved)
            # A function reference passed as an argument may be invoked
            # by the callee; treat hand-offs to *known* functions as
            # call edges so worker helpers stay reachable.
            for info in _callable_args(site):
                ref = index.resolve(info.ref)
                if ref is not None and ref != qualname:
                    resolved_callees.append(ref)
        calls[qualname] = tuple(dict.fromkeys(resolved_callees))
    index.calls = calls

    index.rng_factories = _find_rng_factories(index)
    return index


def is_memoized(index: DataflowIndex, fn: FunctionSummary) -> bool:
    """Whether ``fn`` sits behind a memoization boundary.

    True for ``functools.lru_cache``/``cache`` decorated functions, for
    functions registered as ``.derived`` build callables, and for the
    ``update`` method of reducer classes (replayed on resume).
    """
    for decorator in fn.decorators:
        if decorator in MEMO_DECORATORS:
            return True
        if decorator.rsplit(".", 1)[-1] in {"lru_cache", "cache"}:
            return True
    if fn.qualname in index.memo_registered:
        return True
    if fn.name == "update" and fn.class_name:
        if fn.class_name.endswith(_REDUCER_SUFFIXES):
            return True
        mod = index.module_of(fn.qualname)
        if mod is not None:
            cls = mod.classes.get(fn.class_name)
            if cls is not None and any(
                base.rsplit(".", 1)[-1].endswith(_REDUCER_SUFFIXES)
                for base in cls.bases
            ):
                return True
    return False
