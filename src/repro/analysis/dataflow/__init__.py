"""Interprocedural dataflow layer: summaries, call graph, reachability.

Public surface:

- :func:`summarize_module` — condense one parsed module into a
  JSON-round-trippable :class:`ModuleSummary`.
- :func:`build_index` — fold summaries into a :class:`DataflowIndex`
  (import graph, conservative call graph, pool-worker entrypoints,
  RNG factories, memoization registrations).
- :meth:`DataflowIndex.reachable_from` — BFS reachability with a
  representative entrypoint per reached function.
- :class:`SummaryCache` / :func:`cache_key` — the content-addressed
  per-file cache behind the incremental runner.
"""

from .cache import SummaryCache, cache_key
from .graph import (
    DataflowIndex,
    RngFactory,
    build_index,
    is_memoized,
    seed_argument,
)
from .summaries import (
    ArgInfo,
    CallSite,
    FunctionSummary,
    GlobalWrite,
    ModuleSummary,
    ParamMutation,
    RngEvent,
    RNG_CONSTRUCTORS,
    SUMMARY_SCHEMA_VERSION,
    summarize_module,
)

__all__ = [
    "ArgInfo",
    "CallSite",
    "DataflowIndex",
    "FunctionSummary",
    "GlobalWrite",
    "ModuleSummary",
    "ParamMutation",
    "RNG_CONSTRUCTORS",
    "RngEvent",
    "RngFactory",
    "SUMMARY_SCHEMA_VERSION",
    "SummaryCache",
    "build_index",
    "cache_key",
    "is_memoized",
    "seed_argument",
    "summarize_module",
]
