"""On-disk per-file summary cache for the incremental runner.

Each analyzed source file gets one JSON entry under the cache directory
(default ``.repro_cache/analysis/``), named by a sha256 over the schema
version, the file's repo-relative path, the selected module-rule ids,
and the file's content bytes.  Any of those changing — an edit, a rule
added or removed, a schema bump — changes the key, so stale entries are
simply never looked up again (``prune`` removes them opportunistically).

Entries store both the module's dataflow summary and the module-scoped
findings, so a warm run skips parsing entirely for unchanged files.
Loads are tolerant: a corrupt or unreadable entry behaves like a miss.
Writes go through a temp file + ``os.replace`` so parallel workers never
observe a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..findings import Finding
from .summaries import SUMMARY_SCHEMA_VERSION, ModuleSummary


def cache_key(
    relpath: str, content: bytes, rule_ids: Sequence[str]
) -> str:
    """Content-addressed key for one file's cache entry."""
    digest = hashlib.sha256()
    digest.update(f"v{SUMMARY_SCHEMA_VERSION}\n".encode())
    digest.update(relpath.encode())
    digest.update(b"\n")
    digest.update(",".join(sorted(rule_ids)).encode())
    digest.update(b"\n")
    digest.update(content)
    return digest.hexdigest()


class SummaryCache:
    """Content-keyed store of (summary, module findings) per file."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        #: Write/unlink failures — the cache degrades to a no-op rather
        #: than failing the analysis, but the count stays observable.
        self.io_errors = 0

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(
        self, key: str
    ) -> Optional[Tuple[ModuleSummary, List[Finding]]]:
        """The cached entry for ``key``, or None on any failure."""
        try:
            raw = self._entry_path(key).read_text(encoding="utf-8")
            payload = json.loads(raw)
            summary = ModuleSummary.from_dict(payload["summary"])
            findings = [
                Finding.from_dict(f) for f in payload.get("findings", [])
            ]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary, findings

    def store(
        self,
        key: str,
        summary: ModuleSummary,
        findings: Sequence[Finding],
    ) -> None:
        """Atomically persist one entry; IO failures are swallowed."""
        payload = {
            "summary": summary.to_dict(),
            "findings": [f.to_dict() for f in findings],
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, self._entry_path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    self.io_errors += 1
                raise
        except OSError:
            self.io_errors += 1

    def prune(self, live_keys: Sequence[str]) -> int:
        """Drop entries not in ``live_keys``; returns how many went."""
        live = {f"{key}.json" for key in live_keys}
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json") and name not in live:
                try:
                    os.unlink(self.directory / name)
                    removed += 1
                except OSError:
                    self.io_errors += 1
        return removed
