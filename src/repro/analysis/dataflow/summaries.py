"""Per-function dataflow summaries.

One :class:`ModuleSummary` condenses everything the interprocedural rules
need to know about a parsed module — without keeping its AST alive:
module-level mutable state, per-function global writes, parameter
mutations, RNG construction/escape events, and every call site with its
best-effort resolved target.  Summaries are plain data (``to_dict`` /
``from_dict`` round-trip through JSON), which is what makes the on-disk
summary cache and the parallel module phase possible: a worker process
or a warm cache entry ships the summary, never the tree.

Resolution here is *name-level and conservative*: a call is resolved
when its target chain starts at a module-level def, an import alias
(including relative imports, resolved to absolute names by the context),
a function-local def, or ``self`` (mapped to the enclosing class).
Calls on arbitrary objects stay unresolved and are carried with their
raw dotted text — the graph layer and the rules treat them as opaque.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..context import ModuleContext, dotted_name

#: Bump when the summary schema changes (invalidates cache entries).
SUMMARY_SCHEMA_VERSION = 1

#: RNG constructors whose seeding the determinism rules track.  The
#: module-local DET001/DET002 checks import this same set.
RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert",
    "add", "update", "setdefault", "remove", "discard", "clear",
    "pop", "popitem", "write",
}

#: Call targets (last component) that build mutable containers.
_CONTAINER_CALLS = {
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter",
}

#: Keyword names that carry a seed into an RNG constructor or factory.
_SEED_KWARGS = ("seed",)


def _is_mutable_literal(node: ast.expr) -> bool:
    """Whether an expression builds a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name and name.split(".")[-1] in _CONTAINER_CALLS:
            return True
    return False


def _is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _chain_root(node: ast.expr) -> Tuple[Optional[str], str]:
    """Root Name and attribute path of an Attribute/Subscript chain.

    ``block.bips[0]`` yields ``("block", "block.bips")``; subscripts are
    transparent (they index, the named container is what mutates).
    Returns ``(None, "")`` when the chain does not bottom out at a Name.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return node.id, ".".join(reversed(parts))
        else:
            return None, ""


@dataclass(frozen=True)
class ArgInfo:
    """What one call argument looks like, as far as names can tell."""

    is_none: bool = False
    #: The enclosing function's parameter passed bare, if any.
    param: Optional[str] = None
    #: Resolved dotted name when the argument is a function/class reference.
    ref: Optional[str] = None

    def to_dict(self) -> dict:
        return {"is_none": self.is_none, "param": self.param, "ref": self.ref}

    @classmethod
    def from_dict(cls, payload: dict) -> "ArgInfo":
        return cls(
            is_none=bool(payload.get("is_none", False)),
            param=payload.get("param"),
            ref=payload.get("ref"),
        )


@dataclass(frozen=True)
class CallSite:
    """One call made by a function, with argument shape."""

    target: str
    resolved: bool
    lineno: int
    args: Tuple[ArgInfo, ...] = ()
    kwargs: Tuple[Tuple[str, ArgInfo], ...] = ()
    #: True when the call's result is directly returned.
    returned: bool = False

    def kwarg(self, name: str) -> Optional[ArgInfo]:
        """The info for keyword argument ``name``, if passed."""
        for key, info in self.kwargs:
            if key == name:
                return info
        return None

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "resolved": self.resolved,
            "lineno": self.lineno,
            "args": [a.to_dict() for a in self.args],
            "kwargs": [[k, a.to_dict()] for k, a in self.kwargs],
            "returned": self.returned,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CallSite":
        return cls(
            target=str(payload["target"]),
            resolved=bool(payload["resolved"]),
            lineno=int(payload["lineno"]),
            args=tuple(ArgInfo.from_dict(a) for a in payload.get("args", [])),
            kwargs=tuple(
                (str(k), ArgInfo.from_dict(a))
                for k, a in payload.get("kwargs", [])
            ),
            returned=bool(payload.get("returned", False)),
        )


@dataclass(frozen=True)
class GlobalWrite:
    """One write to module-level (or class-level) state inside a function.

    ``kind`` is ``"rebind"`` (assignment under a ``global`` declaration),
    ``"augment"`` (augmented assignment under ``global``), or ``"mutate"``
    (in-place container mutation of a module- or class-level name).
    """

    name: str
    lineno: int
    kind: str

    def to_dict(self) -> dict:
        return {"name": self.name, "lineno": self.lineno, "kind": self.kind}

    @classmethod
    def from_dict(cls, payload: dict) -> "GlobalWrite":
        return cls(
            name=str(payload["name"]),
            lineno=int(payload["lineno"]),
            kind=str(payload["kind"]),
        )


@dataclass(frozen=True)
class ParamMutation:
    """One in-place mutation of a parameter inside a function."""

    name: str
    lineno: int
    how: str  # "attr" | "item" | "method:<name>"

    def to_dict(self) -> dict:
        return {"name": self.name, "lineno": self.lineno, "how": self.how}

    @classmethod
    def from_dict(cls, payload: dict) -> "ParamMutation":
        return cls(
            name=str(payload["name"]),
            lineno=int(payload["lineno"]),
            how=str(payload["how"]),
        )


@dataclass(frozen=True)
class RngEvent:
    """One RNG construction inside a function.

    ``seed`` classifies where the seed comes from: ``"none"`` (omitted or
    an explicit None), ``"param:<name>"`` (taken directly from a
    parameter), ``"literal"`` (a constant), or ``"expr"`` (anything
    else).  ``escapes`` lists how the constructed generator leaves the
    function: ``"return"``, ``"arg"`` (passed into a call), or
    ``"global:<name>"``.
    """

    lineno: int
    constructor: str
    seed: str
    escapes: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "lineno": self.lineno,
            "constructor": self.constructor,
            "seed": self.seed,
            "escapes": list(self.escapes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RngEvent":
        return cls(
            lineno=int(payload["lineno"]),
            constructor=str(payload["constructor"]),
            seed=str(payload["seed"]),
            escapes=tuple(payload.get("escapes", [])),
        )


@dataclass
class FunctionSummary:
    """What one function does, as the dataflow rules see it."""

    qualname: str
    name: str
    lineno: int
    params: Tuple[str, ...] = ()
    none_default_params: Tuple[str, ...] = ()
    class_name: str = ""
    decorators: Tuple[str, ...] = ()
    global_writes: Tuple[GlobalWrite, ...] = ()
    param_mutations: Tuple[ParamMutation, ...] = ()
    calls: Tuple[CallSite, ...] = ()
    rng: Tuple[RngEvent, ...] = ()

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "params": list(self.params),
            "none_default_params": list(self.none_default_params),
            "class_name": self.class_name,
            "decorators": list(self.decorators),
            "global_writes": [w.to_dict() for w in self.global_writes],
            "param_mutations": [m.to_dict() for m in self.param_mutations],
            "calls": [c.to_dict() for c in self.calls],
            "rng": [r.to_dict() for r in self.rng],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionSummary":
        return cls(
            qualname=str(payload["qualname"]),
            name=str(payload["name"]),
            lineno=int(payload["lineno"]),
            params=tuple(payload.get("params", [])),
            none_default_params=tuple(payload.get("none_default_params", [])),
            class_name=str(payload.get("class_name", "")),
            decorators=tuple(payload.get("decorators", [])),
            global_writes=tuple(
                GlobalWrite.from_dict(w)
                for w in payload.get("global_writes", [])
            ),
            param_mutations=tuple(
                ParamMutation.from_dict(m)
                for m in payload.get("param_mutations", [])
            ),
            calls=tuple(
                CallSite.from_dict(c) for c in payload.get("calls", [])
            ),
            rng=tuple(RngEvent.from_dict(r) for r in payload.get("rng", [])),
        )


@dataclass
class ClassSummary:
    """Bases and class-level mutable attributes of one class."""

    qualname: str
    bases: Tuple[str, ...] = ()
    mutable_attrs: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "bases": list(self.bases),
            "mutable_attrs": list(self.mutable_attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassSummary":
        return cls(
            qualname=str(payload["qualname"]),
            bases=tuple(payload.get("bases", [])),
            mutable_attrs=tuple(payload.get("mutable_attrs", [])),
        )


@dataclass
class ModuleSummary:
    """One module's condensed dataflow facts."""

    relpath: str
    module: str
    package: str
    is_test: bool
    imports: Tuple[str, ...] = ()
    #: Module-level name -> qualified name (functions and classes).
    defs: Dict[str, str] = field(default_factory=dict)
    #: Local import name -> absolute dotted target (from the context).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to mutable containers.
    mutable_globals: Tuple[str, ...] = ()
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    functions: Tuple[FunctionSummary, ...] = ()

    def to_dict(self) -> dict:
        return {
            "version": SUMMARY_SCHEMA_VERSION,
            "relpath": self.relpath,
            "module": self.module,
            "package": self.package,
            "is_test": self.is_test,
            "imports": list(self.imports),
            "defs": dict(self.defs),
            "aliases": dict(self.aliases),
            "mutable_globals": list(self.mutable_globals),
            "classes": {
                name: summary.to_dict()
                for name, summary in self.classes.items()
            },
            "functions": [f.to_dict() for f in self.functions],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleSummary":
        return cls(
            relpath=str(payload["relpath"]),
            module=str(payload["module"]),
            package=str(payload.get("package", "")),
            is_test=bool(payload.get("is_test", False)),
            imports=tuple(payload.get("imports", [])),
            defs=dict(payload.get("defs", {})),
            aliases=dict(payload.get("aliases", {})),
            mutable_globals=tuple(payload.get("mutable_globals", [])),
            classes={
                name: ClassSummary.from_dict(raw)
                for name, raw in payload.get("classes", {}).items()
            },
            functions=tuple(
                FunctionSummary.from_dict(f)
                for f in payload.get("functions", [])
            ),
        )


# -- construction --------------------------------------------------------------

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class _FunctionWalker:
    """Summarize one function body without descending into nested defs."""

    def __init__(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        qualname: str,
        class_name: str,
        module_summary: "ModuleSummary",
        local_defs: Dict[str, str],
    ):
        self.ctx = ctx
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self.mod = module_summary
        self.local_defs = local_defs
        self.params = _param_names(node.args)
        self.none_defaults = _none_default_params(node.args)
        self.globals_declared: set = set()
        self.locals: set = set(self.params)
        self.global_writes: List[GlobalWrite] = []
        self.param_mutations: List[ParamMutation] = []
        self.calls: List[CallSite] = []
        self.rng_events: Dict[int, RngEvent] = {}  # id(call-node) -> event
        #: Local names bound to RNG constructor results.
        self.rng_names: Dict[str, int] = {}  # name -> id(call-node)

    # -- name resolution ---------------------------------------------------

    def resolve_ref(self, expr: ast.expr) -> Tuple[str, bool]:
        """Best-effort dotted resolution of a Name/Attribute chain."""
        dotted = dotted_name(expr)
        if not dotted:
            return "", False
        head, _, rest = dotted.partition(".")
        if head == "self" and self.class_name:
            if rest and "." not in rest:
                return f"{self.mod.module}.{self.class_name}.{rest}", True
            return dotted, False
        if head in self.local_defs:
            base = self.local_defs[head]
        elif head in self.mod.defs and head not in self.locals:
            base = self.mod.defs[head]
        elif head in self.mod.aliases and head not in self.locals:
            base = self.mod.aliases[head]
        else:
            return dotted, False
        return (f"{base}.{rest}" if rest else base), True

    def _is_module_level(self, name: str) -> bool:
        """Whether ``name`` refers to module state (not shadowed locally)."""
        if name in self.locals or name in self.globals_declared:
            return False
        return (
            name in self.mod.mutable_globals
            or name in self.mod.defs
        )

    # -- collection passes -------------------------------------------------

    def collect_locals(self) -> None:
        """Pre-pass: parameter/assignment names and ``global`` decls."""
        for child in _walk_shallow(self.node):
            if isinstance(child, ast.Global):
                self.globals_declared.update(child.names)
            elif isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id not in self.globals_declared:
                            self.locals.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for element in ast.walk(target):
                            if isinstance(element, ast.Name):
                                self.locals.add(element.id)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                for element in ast.walk(child.target):
                    if isinstance(element, ast.Name):
                        self.locals.add(element.id)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        for element in ast.walk(item.optional_vars):
                            if isinstance(element, ast.Name):
                                self.locals.add(element.id)
            elif isinstance(child, ast.comprehension):
                for element in ast.walk(child.target):
                    if isinstance(element, ast.Name):
                        self.locals.add(element.id)
        # ``global X`` names are never locals, whatever the above saw.
        self.locals -= self.globals_declared

    def walk(self) -> None:
        """Main pass: writes, mutations, calls, RNG events.

        Calls are handled first so that RNG events exist before the
        second pass tracks how their results flow (an ``Assign`` or
        ``Return`` node is the *parent* of the call expression, so a
        single document-order pass would see it too early).
        """
        shallow = list(_walk_shallow(self.node))
        for child in shallow:
            if isinstance(child, ast.Call):
                self._handle_call(child)
        for child in shallow:
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    self._handle_write(target, child.value, child.lineno,
                                       kind="rebind")
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                self._handle_write(child.target, child.value, child.lineno,
                                   kind="rebind")
            elif isinstance(child, ast.AugAssign):
                self._handle_write(child.target, child.value, child.lineno,
                                   kind="augment")
            elif isinstance(child, ast.Return) and child.value is not None:
                self._handle_return(child.value)
        for child in shallow:
            # A local bound to an RNG generator and passed into a call
            # escapes as an argument (needs rng_names from pass two).
            if isinstance(child, ast.Call):
                for arg in child.args:
                    if isinstance(arg, ast.Name) and arg.id in self.rng_names:
                        self._add_escape(self.rng_names[arg.id], "arg")

    def _handle_write(
        self, target: ast.expr, value: ast.expr, lineno: int, kind: str
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.global_writes.append(
                    GlobalWrite(name=target.id, lineno=lineno, kind=kind)
                )
            elif isinstance(value, ast.Call) and kind == "rebind":
                # Track RNG generators bound to locals for escape analysis.
                event_id = id(value)
                if event_id in self.rng_events:
                    self.rng_names[target.id] = event_id
            return
        # Attribute / subscript writes mutate their root object.
        root, path = _chain_root(target)
        if root is None:
            return
        how = "item" if isinstance(target, ast.Subscript) else "attr"
        if root in self.params:
            self.param_mutations.append(
                ParamMutation(name=root, lineno=lineno, how=how)
            )
        elif self._is_module_level(root):
            self.global_writes.append(
                GlobalWrite(name=path, lineno=lineno, kind="mutate")
            )
        elif root in self.globals_declared:
            self.global_writes.append(
                GlobalWrite(name=path, lineno=lineno, kind="mutate")
            )

    def _handle_call(self, node: ast.Call) -> None:
        target, resolved = self.resolve_ref(node.func)
        if not target:
            target = "<dynamic>"
        # In-place mutation through a method call on a param or global.
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in _MUTATING_METHODS:
                root, path = _chain_root(node.func.value)
                if root is not None:
                    if root in self.params:
                        self.param_mutations.append(
                            ParamMutation(
                                name=root,
                                lineno=node.lineno,
                                how=f"method:{method}",
                            )
                        )
                    elif self._is_module_level(root) or (
                        root in self.globals_declared
                    ):
                        self.global_writes.append(
                            GlobalWrite(
                                name=path, lineno=node.lineno, kind="mutate"
                            )
                        )
                    else:
                        self._class_attr_mutation(node, root, path)
        args = tuple(self._arg_info(arg) for arg in node.args)
        kwargs = tuple(
            (kw.arg, self._arg_info(kw.value))
            for kw in node.keywords
            if kw.arg is not None
        )
        self.calls.append(
            CallSite(
                target=target,
                resolved=resolved,
                lineno=node.lineno,
                args=args,
                kwargs=kwargs,
            )
        )
        if resolved and target in RNG_CONSTRUCTORS:
            self.rng_events[id(node)] = RngEvent(
                lineno=node.lineno,
                constructor=target,
                seed=self._classify_seed(node),
            )

    def _class_attr_mutation(self, node: ast.Call, root: str, path: str):
        """``Cls.registry.append(...)`` on a module-level class attr."""
        cls = self.mod.classes.get(root)
        if cls is None or root in self.locals:
            return
        parts = path.split(".")
        if len(parts) >= 2 and parts[1] in cls.mutable_attrs:
            self.global_writes.append(
                GlobalWrite(name=path, lineno=node.lineno, kind="mutate")
            )

    def _classify_seed(self, node: ast.Call) -> str:
        seed_expr: Optional[ast.expr] = None
        if node.args:
            seed_expr = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg in _SEED_KWARGS:
                    seed_expr = kw.value
                    break
        if seed_expr is None or _is_none(seed_expr):
            return "none"
        if isinstance(seed_expr, ast.Name) and seed_expr.id in self.params:
            return f"param:{seed_expr.id}"
        if isinstance(seed_expr, ast.Constant):
            return "literal"
        return "expr"

    def _handle_return(self, value: ast.expr) -> None:
        if isinstance(value, ast.Call):
            # Mark the most recent matching call site as returned.
            for index in range(len(self.calls) - 1, -1, -1):
                if self.calls[index].lineno == value.lineno:
                    site = self.calls[index]
                    self.calls[index] = CallSite(
                        target=site.target,
                        resolved=site.resolved,
                        lineno=site.lineno,
                        args=site.args,
                        kwargs=site.kwargs,
                        returned=True,
                    )
                    break
            if id(value) in self.rng_events:
                self._add_escape(id(value), "return")
        elif isinstance(value, ast.Name) and value.id in self.rng_names:
            self._add_escape(self.rng_names[value.id], "return")

    def _add_escape(self, event_id: int, escape: str) -> None:
        event = self.rng_events.get(event_id)
        if event is not None and escape not in event.escapes:
            self.rng_events[event_id] = RngEvent(
                lineno=event.lineno,
                constructor=event.constructor,
                seed=event.seed,
                escapes=event.escapes + (escape,),
            )

    def _arg_info(self, expr: ast.expr) -> ArgInfo:
        if _is_none(expr):
            return ArgInfo(is_none=True)
        if isinstance(expr, ast.Name) and expr.id in self.params:
            return ArgInfo(param=expr.id)
        if isinstance(expr, (ast.Name, ast.Attribute)):
            ref, resolved = self.resolve_ref(expr)
            if resolved:
                return ArgInfo(ref=ref)
        return ArgInfo()

    def summary(self) -> FunctionSummary:
        decorators = []
        for decorator in getattr(self.node, "decorator_list", []):
            expr = decorator.func if isinstance(decorator, ast.Call) else decorator
            name, resolved = self.resolve_ref(expr)
            if name:
                decorators.append(name)
        # RNG names assigned to a ``global``-declared name escape globally.
        for child in _walk_shallow(self.node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in self.globals_declared
                        and isinstance(child.value, ast.Name)
                        and child.value.id in self.rng_names
                    ):
                        self._add_escape(
                            self.rng_names[child.value.id],
                            f"global:{target.id}",
                        )
        return FunctionSummary(
            qualname=self.qualname,
            name=getattr(self.node, "name", "<lambda>"),
            lineno=self.node.lineno,
            params=tuple(self.params),
            none_default_params=tuple(self.none_defaults),
            class_name=self.class_name,
            decorators=tuple(decorators),
            global_writes=tuple(self.global_writes),
            param_mutations=tuple(self.param_mutations),
            calls=tuple(self.calls),
            rng=tuple(
                self.rng_events[key] for key in sorted(
                    self.rng_events, key=lambda k: self.rng_events[k].lineno
                )
            ),
        )


def _walk_shallow(node: ast.AST):
    """Walk a function body in document order, skipping nested defs.

    Document order matters: escape tracking relies on an ``Assign``
    binding an RNG local being seen before the ``Return`` that reads it.
    """
    stack = list(reversed(list(ast.iter_child_nodes(node))))
    while stack:
        child = stack.pop()
        if isinstance(child, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
            continue
        yield child
        stack.extend(reversed(list(ast.iter_child_nodes(child))))


def _param_names(args: ast.arguments) -> List[str]:
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names += [a.arg for a in args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _none_default_params(args: ast.arguments) -> List[str]:
    """Parameters whose default value is the literal None."""
    result: List[str] = []
    positional = list(getattr(args, "posonlyargs", [])) + list(args.args)
    defaults = list(args.defaults)
    for arg, default in zip(positional[len(positional) - len(defaults):],
                            defaults):
        if _is_none(default):
            result.append(arg.arg)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None and _is_none(default):
            result.append(arg.arg)
    return result


def _summarize_functions(
    ctx: ModuleContext,
    node: ast.AST,
    prefix: str,
    class_name: str,
    module_summary: ModuleSummary,
) -> List[FunctionSummary]:
    """Summaries for a def and (recursively) its named nested defs."""
    qualname = f"{prefix}.{node.name}"
    nested = [
        child for child in ast.walk(node)
        if isinstance(child, _FUNC_NODES) and child is not node
        and _is_direct_nested(node, child)
    ]
    local_defs = {child.name: f"{qualname}.{child.name}" for child in nested}
    walker = _FunctionWalker(
        ctx, node, qualname, class_name, module_summary, local_defs
    )
    walker.collect_locals()
    walker.walk()
    summaries = [walker.summary()]
    for child in nested:
        summaries.extend(
            _summarize_functions(ctx, child, qualname, class_name,
                                 module_summary)
        )
    return summaries


def _is_direct_nested(parent: ast.AST, child: ast.AST) -> bool:
    """Whether ``child`` is nested in ``parent`` with no def in between."""
    for intermediate in ast.walk(parent):
        if intermediate is parent or not isinstance(
            intermediate, _FUNC_NODES + (ast.ClassDef,)
        ):
            continue
        if intermediate is child:
            continue
        if any(node is child for node in ast.walk(intermediate)):
            return False
    return True


def summarize_module(ctx: ModuleContext) -> ModuleSummary:
    """Build the dataflow summary of one parsed module."""
    summary = ModuleSummary(
        relpath=ctx.relpath,
        module=ctx.module,
        package=ctx.package,
        is_test=ctx.is_test,
        aliases=dict(ctx.aliases),
    )
    imports: set = set()
    for target in ctx.aliases.values():
        imports.add(target.rsplit(".", 1)[0] if "." in target else target)
    mutable_globals: List[str] = []
    for node in ctx.tree.body:
        if isinstance(node, _FUNC_NODES) or isinstance(node, ast.ClassDef):
            summary.defs[node.name] = f"{ctx.module}.{node.name}"
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and _is_mutable_literal(
                    node.value
                ):
                    mutable_globals.append(target.id)
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.value is not None
                and _is_mutable_literal(node.value)
            ):
                mutable_globals.append(node.target.id)
    summary.mutable_globals = tuple(dict.fromkeys(mutable_globals))
    summary.imports = tuple(sorted(imports))

    functions: List[FunctionSummary] = []
    for node in ctx.tree.body:
        if isinstance(node, _FUNC_NODES):
            functions.extend(
                _summarize_functions(ctx, node, ctx.module, "", summary)
            )
        elif isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                name, _ = _resolve_module_ref(ctx, base)
                if name:
                    bases.append(name)
            attrs = []
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name) and _is_mutable_literal(
                            item.value
                        ):
                            attrs.append(target.id)
                elif isinstance(item, ast.AnnAssign):
                    if (
                        isinstance(item.target, ast.Name)
                        and item.value is not None
                        and _is_mutable_literal(item.value)
                    ):
                        attrs.append(item.target.id)
            summary.classes[node.name] = ClassSummary(
                qualname=f"{ctx.module}.{node.name}",
                bases=tuple(bases),
                mutable_attrs=tuple(dict.fromkeys(attrs)),
            )
            for item in node.body:
                if isinstance(item, _FUNC_NODES):
                    functions.extend(
                        _summarize_functions(
                            ctx,
                            item,
                            f"{ctx.module}.{node.name}",
                            node.name,
                            summary,
                        )
                    )
    summary.functions = tuple(functions)
    return summary


def _resolve_module_ref(ctx: ModuleContext, expr: ast.expr):
    """Module-scope resolution (no function locals to consider)."""
    dotted = dotted_name(expr)
    if not dotted:
        return "", False
    head, _, rest = dotted.partition(".")
    if head in ctx.aliases:
        base = ctx.aliases[head]
        return (f"{base}.{rest}" if rest else base), True
    return dotted, False
