"""Findings: what a rule reports and how findings are ordered.

A :class:`Finding` pins one defect to a ``path:line:col`` location with a
rule id, a severity and a human-readable message.  The ``context`` field
carries the stripped source line, which doubles as the stable fingerprint
used by the baseline file (line numbers drift; source lines rarely do).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class Severity(enum.IntEnum):
    """Ordered severities; higher values are worse."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in reports and JSON output."""
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        """Parse a severity from its lower-case label."""
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {label!r}; "
                f"choices are {[s.label for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    col: int = 0
    context: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering: by file, then location, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        """``path:line:col`` string for reports."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache, workers)."""
        return cls(
            rule=str(payload["rule"]),
            severity=Severity.from_label(str(payload["severity"])),
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload.get("col", 0)),
            message=str(payload["message"]),
            context=str(payload.get("context", "")),
        )


@dataclass
class RuleStats:
    """Per-rule tally used by the text reporter's summary."""

    count: int = 0
    files: set = field(default_factory=set)

    def add(self, finding: Finding) -> None:
        """Fold one finding into the tally."""
        self.count += 1
        self.files.add(finding.path)
