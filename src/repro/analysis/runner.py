"""Analysis driver: collect files, run rules, apply the baseline.

:func:`analyze_paths` is the single entry point used by the CLI, the
pytest gate and CI.  It parses every ``.py`` file under the given paths,
runs module-scoped rules per file and project-scoped rules once over the
whole tree, then filters the findings through the baseline.

Two scaling features sit behind the same entry point:

- **Summary cache** (``cache_dir``): per-file module findings and the
  dataflow summary are stored keyed by a sha256 over the file's content,
  its relpath, the module-rule set, and the summary schema version.  On
  a warm cache, unchanged files skip module-rule execution and
  summarization entirely (the driver still parses, because
  project-scoped rules walk the trees).
- **Parallel module phase** (``jobs``): cache-miss files are farmed to a
  ``ProcessPoolExecutor``; workers re-parse, run the module rules,
  summarize, populate the cache, and ship plain dicts back.  Findings
  are bit-identical to a serial run — the phase is embarrassingly
  parallel and the project phase always runs in the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineEntry
from .context import ModuleContext, ProjectContext, build_module_context
from .dataflow import (
    DataflowIndex,
    ModuleSummary,
    SummaryCache,
    build_index,
    cache_key,
    summarize_module,
)
from .findings import Finding, Severity
from .registry import Rule, select_rules

#: Rule id attached to files that fail to parse.
PARSE_RULE_ID = "PARSE"

#: Default cache location, relative to the analysis root.
CACHE_SUBDIR = Path(".repro_cache") / "analysis"

_SKIP_DIRS = {"__pycache__", ".git", ".repro_cache", "build", "dist"}


class UsageError(ValueError):
    """A caller mistake (bad path argument) — CLI exits 2, not 1."""


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list.

    Directories are walked recursively for ``*.py``; an explicit file
    argument that is not Python raises :class:`UsageError` (silently
    analyzing zero files hides typos like ``repro analyze notes.md``).
    """
    seen: Dict[Path, None] = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not any(
                    part in _SKIP_DIRS or part.startswith(".")
                    for part in candidate.relative_to(path).parts
                )
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise UsageError(
                f"not a Python file or directory: {path} "
                "(explicit file arguments must end in .py)"
            )
        for candidate in candidates:
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    root: Path
    files_analyzed: int
    rule_ids: List[str]
    findings: List[Finding]
    suppressed: List[Tuple[Finding, BaselineEntry]] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    #: Files whose module phase was served from the summary cache.
    cache_hits: int = 0

    def counts(self) -> Dict[str, int]:
        """Finding tally by severity label."""
        tally = {severity.label: 0 for severity in Severity}
        for finding in self.findings:
            tally[finding.severity.label] += 1
        return tally

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean.

        Non-strict: fail only on error-severity findings.  Strict: fail on
        any finding and on stale baseline entries.
        """
        if strict:
            return 1 if (self.findings or self.stale_baseline) else 0
        has_errors = any(
            finding.severity >= Severity.ERROR for finding in self.findings
        )
        return 1 if has_errors else 0


def _parse_failure(path: Path, root: Path, message: str) -> Finding:
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return Finding(
        rule=PARSE_RULE_ID,
        severity=Severity.ERROR,
        path=relpath,
        line=1,
        message=message,
    )


def _module_findings(ctx: ModuleContext, rules: Sequence[Rule]) -> List[Finding]:
    """All module-scoped findings for one context."""
    found: List[Finding] = []
    for rule in rules:
        if rule.exempt_tests and ctx.is_test:
            continue
        found.extend(rule.check_module(ctx))
    return found


def _module_phase_worker(payload: Tuple[str, str, Tuple[str, ...], Optional[str]]):
    """Process-pool worker: module rules + summary for one file.

    Re-parses the file (ASTs don't pickle), runs the module-scoped rules,
    summarizes, writes the cache entry, and returns plain dicts.  Returns
    ``None`` when the file fails to parse — the driver already recorded
    the authoritative PARSE finding from its own parse.
    """
    path_str, root_str, rule_ids, cache_dir = payload
    ctx, error = build_module_context(Path(path_str), Path(root_str))
    if ctx is None:
        return path_str, None
    rules = [
        rule for rule in select_rules(rule_ids) if rule.scope == "module"
    ]
    findings = _module_findings(ctx, rules)
    summary = summarize_module(ctx)
    if cache_dir is not None:
        cache = SummaryCache(Path(cache_dir))
        key = cache_key(ctx.relpath, ctx.source.encode("utf-8"), rule_ids)
        cache.store(key, summary, findings)
    return path_str, {
        "findings": [f.to_dict() for f in findings],
        "summary": summary.to_dict(),
    }


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
) -> AnalysisReport:
    """Run the selected rules over ``paths`` and apply ``baseline``.

    ``jobs`` parallelizes the module-rule+summary phase; ``cache_dir``
    enables the content-addressed summary cache (opt-in: library callers
    and fixture-rooted test runs should not sprout cache directories).
    """
    root = Path(root) if root is not None else Path.cwd()
    selected: List[Rule] = select_rules(rules)
    module_rules = [rule for rule in selected if rule.scope == "module"]
    module_rule_ids = tuple(sorted(rule.id for rule in module_rules))
    files = collect_files(paths)

    cache = SummaryCache(Path(cache_dir)) if cache_dir is not None else None

    contexts: List[ModuleContext] = []
    raw_findings: List[Finding] = []
    for path in files:
        ctx, error = build_module_context(path, root)
        if ctx is None:
            raw_findings.append(_parse_failure(path, root, error or "unreadable"))
            continue
        contexts.append(ctx)

    # Module phase: cache lookups first, then compute misses (parallel
    # when jobs > 1).  Summaries are collected for the project phase.
    summaries: Dict[str, ModuleSummary] = {}
    misses: List[ModuleContext] = []
    cache_hits = 0
    for ctx in contexts:
        if cache is not None:
            key = cache_key(
                ctx.relpath, ctx.source.encode("utf-8"), module_rule_ids
            )
            entry = cache.load(key)
            if entry is not None:
                summary, findings = entry
                summaries[ctx.relpath] = summary
                raw_findings.extend(findings)
                cache_hits += 1
                continue
        misses.append(ctx)

    if misses and jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        payloads = [
            (
                str(ctx.path),
                str(root),
                module_rule_ids,
                str(cache.directory) if cache is not None else None,
            )
            for ctx in misses
        ]
        by_path = {str(ctx.path): ctx for ctx in misses}
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for path_str, result in pool.map(_module_phase_worker, payloads):
                ctx = by_path[path_str]
                if result is None:
                    # Worker could not parse what the driver could — fall
                    # back to computing in-process.
                    raw_findings.extend(_module_findings(ctx, module_rules))
                    summaries[ctx.relpath] = summarize_module(ctx)
                    continue
                raw_findings.extend(
                    Finding.from_dict(f) for f in result["findings"]
                )
                summaries[ctx.relpath] = ModuleSummary.from_dict(
                    result["summary"]
                )
    else:
        for ctx in misses:
            findings = _module_findings(ctx, module_rules)
            summary = summarize_module(ctx)
            raw_findings.extend(findings)
            summaries[ctx.relpath] = summary
            if cache is not None:
                key = cache_key(
                    ctx.relpath, ctx.source.encode("utf-8"), module_rule_ids
                )
                cache.store(key, summary, findings)

    project = ProjectContext(
        root=root,
        modules=contexts,
        summaries=[summaries[ctx.relpath] for ctx in contexts],
    )
    for rule in selected:
        if rule.scope == "project":
            raw_findings.extend(rule.check_project(project))

    raw_findings.sort(key=Finding.sort_key)
    baseline = baseline or Baseline.empty()
    active, suppressed, stale = baseline.partition(
        raw_findings, ran_rules=[rule.id for rule in selected] + [PARSE_RULE_ID]
    )
    return AnalysisReport(
        root=root,
        files_analyzed=len(files),
        rule_ids=[rule.id for rule in selected],
        findings=active,
        suppressed=suppressed,
        stale_baseline=stale,
        cache_hits=cache_hits,
    )


def dataflow_index(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
) -> DataflowIndex:
    """Build just the interprocedural index (``repro analyze --graph``).

    Shares the summary cache with :func:`analyze_paths` when the cached
    entry's rule set matches the full module-rule set (the CLI default).
    """
    root = Path(root) if root is not None else Path.cwd()
    module_rule_ids = tuple(
        sorted(rule.id for rule in select_rules(None) if rule.scope == "module")
    )
    cache = SummaryCache(Path(cache_dir)) if cache_dir is not None else None
    summaries: List[ModuleSummary] = []
    for path in collect_files(paths):
        ctx, _error = build_module_context(path, root)
        if ctx is None:
            continue
        if cache is not None:
            key = cache_key(
                ctx.relpath, ctx.source.encode("utf-8"), module_rule_ids
            )
            entry = cache.load(key)
            if entry is not None:
                summaries.append(entry[0])
                continue
        summaries.append(summarize_module(ctx))
    return build_index(summaries)
