"""Analysis driver: collect files, run rules, apply the baseline.

:func:`analyze_paths` is the single entry point used by the CLI, the
pytest gate and CI.  It parses every ``.py`` file under the given paths,
runs module-scoped rules per file and project-scoped rules once, then
filters the findings through the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineEntry
from .context import ModuleContext, ProjectContext, build_module_context
from .findings import Finding, Severity
from .registry import Rule, select_rules

#: Rule id attached to files that fail to parse.
PARSE_RULE_ID = "PARSE"

_SKIP_DIRS = {"__pycache__", ".git", ".repro_cache", "build", "dist"}


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Dict[Path, None] = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not any(
                    part in _SKIP_DIRS or part.startswith(".")
                    for part in candidate.relative_to(path).parts
                )
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    root: Path
    files_analyzed: int
    rule_ids: List[str]
    findings: List[Finding]
    suppressed: List[Tuple[Finding, BaselineEntry]] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        """Finding tally by severity label."""
        tally = {severity.label: 0 for severity in Severity}
        for finding in self.findings:
            tally[finding.severity.label] += 1
        return tally

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean.

        Non-strict: fail only on error-severity findings.  Strict: fail on
        any finding and on stale baseline entries.
        """
        if strict:
            return 1 if (self.findings or self.stale_baseline) else 0
        has_errors = any(
            finding.severity >= Severity.ERROR for finding in self.findings
        )
        return 1 if has_errors else 0


def _parse_failure(path: Path, root: Path, message: str) -> Finding:
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return Finding(
        rule=PARSE_RULE_ID,
        severity=Severity.ERROR,
        path=relpath,
        line=1,
        message=message,
    )


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisReport:
    """Run the selected rules over ``paths`` and apply ``baseline``."""
    root = Path(root) if root is not None else Path.cwd()
    selected: List[Rule] = select_rules(rules)
    files = collect_files(paths)

    contexts: List[ModuleContext] = []
    raw_findings: List[Finding] = []
    for path in files:
        ctx, error = build_module_context(path, root)
        if ctx is None:
            raw_findings.append(_parse_failure(path, root, error or "unreadable"))
            continue
        contexts.append(ctx)

    project = ProjectContext(root=root, modules=contexts)
    for rule in selected:
        if rule.scope == "project":
            raw_findings.extend(rule.check_project(project))
            continue
        for ctx in contexts:
            if rule.exempt_tests and ctx.is_test:
                continue
            raw_findings.extend(rule.check_module(ctx))

    raw_findings.sort(key=Finding.sort_key)
    baseline = baseline or Baseline.empty()
    active, suppressed, stale = baseline.partition(
        raw_findings, ran_rules=[rule.id for rule in selected] + [PARSE_RULE_ID]
    )
    return AnalysisReport(
        root=root,
        files_analyzed=len(files),
        rule_ids=[rule.id for rule in selected],
        findings=active,
        suppressed=suppressed,
        stale_baseline=stale,
    )
