"""Baseline suppression file.

A baseline entry records one *accepted* finding — rule id, path and the
stripped source line it fired on — plus a mandatory human reason.  The
source-line fingerprint (rather than a line number) keeps entries valid
as unrelated edits move code around.  Entries that no longer match any
finding are reported as *stale* so the file cannot rot silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from .findings import Finding


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


def paths_match(left: str, right: str) -> bool:
    """Suffix-tolerant path comparison (cwd-independent matching)."""
    if left == right:
        return True
    return left.endswith("/" + right) or right.endswith("/" + left)


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: where it is and why it is acceptable."""

    rule: str
    path: str
    context: str
    reason: str
    line: int = 0  # informational only; matching uses the context line

    def matches(self, finding: Finding) -> bool:
        """Whether this entry suppresses ``finding``."""
        if self.rule != finding.rule:
            return False
        if not paths_match(self.path, finding.path):
            return False
        return not self.context or self.context == finding.context

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "context": self.context,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """An ordered collection of suppression entries."""

    entries: List[BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        """A baseline that suppresses nothing."""
        return cls(entries=[])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls.empty()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise BaselineError(f"cannot read baseline {path}: {error}") from error
        raw_entries = payload.get("entries", [])
        if not isinstance(raw_entries, list):
            raise BaselineError(f"{path}: 'entries' must be a list")
        entries = []
        for raw in raw_entries:
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]),
                        context=str(raw.get("context", "")),
                        reason=str(raw.get("reason", "")),
                        line=int(raw.get("line", 0)),
                    )
                )
            except (KeyError, TypeError, ValueError) as error:
                raise BaselineError(
                    f"{path}: malformed baseline entry {raw!r}"
                ) from error
        return cls(entries=entries)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], reason: str = "TODO: justify"
    ) -> "Baseline":
        """Baseline accepting every given finding (``--write-baseline``)."""
        entries = [
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                context=finding.context,
                reason=reason,
                line=finding.line,
            )
            for finding in sorted(findings, key=Finding.sort_key)
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        """Write the baseline as pretty JSON."""
        payload = {
            "version": 1,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(
        self,
        findings: Iterable[Finding],
        ran_rules: Optional[Iterable[str]] = None,
    ) -> Tuple[
        List[Finding], List[Tuple[Finding, BaselineEntry]], List[BaselineEntry]
    ]:
        """Split findings into (active, suppressed, stale-entries).

        Entries for rules outside ``ran_rules`` (when given) are neither
        matched nor stale — a rule that did not run cannot age them out.
        Each entry suppresses at most one finding: two findings sharing a
        stripped source line need two entries, so a duplicated violation
        cannot hide behind a single accepted one.
        """
        active: List[Finding] = []
        suppressed: List[Tuple[Finding, BaselineEntry]] = []
        used = [False] * len(self.entries)
        for finding in findings:
            match: Optional[int] = None
            for index, entry in enumerate(self.entries):
                if used[index]:
                    continue
                if entry.matches(finding):
                    match = index
                    break
            if match is None:
                active.append(finding)
            else:
                used[match] = True
                suppressed.append((finding, self.entries[match]))
        considered = None if ran_rules is None else set(ran_rules)
        stale = [
            entry
            for entry, was_used in zip(self.entries, used)
            if not was_used
            and (considered is None or entry.rule in considered)
        ]
        return active, suppressed, stale
