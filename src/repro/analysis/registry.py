"""Rule base class and registry.

Rules self-register via the :func:`register` decorator.  A rule is either
module-scoped (``check_module`` runs once per file) or project-scoped
(``check_project`` runs once over the whole analyzed tree — the
cross-layer contract checks need both sides of a contract in view).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Type

from .context import ModuleContext, ProjectContext
from .findings import Finding, Severity


class Rule:
    """One static-analysis check.

    Subclasses set the class attributes and override one of the two
    ``check_*`` hooks depending on :attr:`scope`.
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    scope: str = "module"  # "module" | "project"
    description: str = ""
    #: Skip this rule for test code (tests may legitimately poke globals).
    exempt_tests: bool = False

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed module (module-scoped rules)."""
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield findings over the whole tree (project-scoped rules)."""
        return iter(())

    def finding(
        self,
        ctx: ModuleContext,
        line: int,
        message: str,
        col: int = 0,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Construct a finding anchored in ``ctx`` with its fingerprint."""
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
            context=ctx.source_line(line),
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    rule = rule_class()
    if not rule.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id (rule modules auto-import)."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id."""
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def select_rules(rule_ids: Optional[Iterable[str]]) -> List[Rule]:
    """Rules named by ``rule_ids`` (or all rules when None/empty)."""
    if not rule_ids:
        return all_rules()
    return [get_rule(rule_id) for rule_id in rule_ids]


def _ensure_loaded() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from . import rules  # noqa: F401  (import populates the registry)
