"""Rule implementations, grouped by family.

Importing this package registers every rule:

- ``DET*``  determinism (global RNG state, unseeded generators, RNG escape)
- ``NUM*``  numerical safety (float equality, division, log/sqrt domains)
- ``LAY*``  package layering (the repro import DAG)
- ``CON*``  cross-layer contracts (design space <-> simulator <-> models)
- ``HYG*``  error hygiene (bare/silent excepts, mutable defaults)
- ``OBS*``  observability (harness timing must go through repro.obs)
- ``PERF*`` performance (batchable per-point simulation loops)
- ``RACE*`` concurrency (module state written on pool-worker call paths)
- ``PURE*`` purity (memoized functions with side effects)
"""

from . import (
    concurrency,
    contracts,
    determinism,
    hygiene,
    layering,
    numeric,
    observability,
    performance,
    purity,
)

__all__ = [
    "concurrency",
    "contracts",
    "determinism",
    "hygiene",
    "layering",
    "numeric",
    "observability",
    "performance",
    "purity",
]
