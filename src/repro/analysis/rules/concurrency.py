"""Concurrency rules (RACE) — pool-worker writes to module state.

Campaign and sweep chunks execute in ``ProcessPoolExecutor`` workers
(``run_chunks`` in the resilience layer), and the distributed backend
spawns long-lived workers via ``multiprocessing.Process``.  A worker
that writes module-level state writes its *own process's* copy: the
write never reaches the driver, is silently re-applied on retry, and
merges in whatever order resume replays chunks.  These rules walk the
dataflow call graph from every discovered worker entrypoint
(``ChunkTask`` ``fn`` callables, ``.submit`` targets, and
``Process``/``Thread`` ``target`` callables) and flag module-state
writes anywhere on a reachable path — including helpers the worker
calls in other modules, which module-local rules cannot see.
"""

from __future__ import annotations

from typing import Iterator

from ..context import ProjectContext
from ..findings import Finding, Severity
from ..registry import Rule, register

_KIND_VERBS = {
    "rebind": "rebound",
    "augment": "updated in place (augmented assignment)",
    "mutate": "mutated in place",
}


def _race_findings(rule: Rule, project: ProjectContext, kinds) -> Iterator[Finding]:
    """Shared walk: writes of the given kinds on worker-reachable paths."""
    index = project.dataflow()
    origin = index.reachable_from()
    for qualname in sorted(origin):
        fn = index.function(qualname)
        mod = index.module_of(qualname)
        if fn is None or mod is None or mod.is_test:
            continue
        ctx = project.context_for(mod.module)
        if ctx is None:
            continue
        for write in fn.global_writes:
            if write.kind not in kinds:
                continue
            entry = origin[qualname]
            via = "" if entry == qualname else f" (reached via {entry})"
            yield rule.finding(
                ctx,
                write.lineno,
                f"module-level state '{write.name}' "
                f"{_KIND_VERBS[write.kind]} in {qualname}, which runs in "
                f"pool workers{via} — worker writes are process-local and "
                "are lost, re-applied on retry, or merged "
                "nondeterministically on resume",
            )


@register
class WorkerGlobalRebind(Rule):
    """RACE001: global rebinding on a pool-worker call path."""

    id = "RACE001"
    name = "worker-global-rebind"
    severity = Severity.ERROR
    scope = "project"
    exempt_tests = True
    description = (
        "A function reachable from a pool-worker entrypoint rebinds or"
        " augments module-level state (global declaration) — the write is"
        " confined to the worker process and breaks replay determinism."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag rebind/augment writes reachable from pool entrypoints."""
        return _race_findings(self, project, ("rebind", "augment"))


@register
class WorkerContainerMutation(Rule):
    """RACE002: module-level container mutated on a pool-worker path."""

    id = "RACE002"
    name = "worker-container-mutation"
    severity = Severity.WARNING
    scope = "project"
    exempt_tests = True
    description = (
        "A function reachable from a pool-worker entrypoint mutates a"
        " module-level container (list/dict/set or class-level registry)"
        " in place — accumulated state diverges between driver and"
        " workers and merges nondeterministically."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag in-place container mutations reachable from entrypoints."""
        return _race_findings(self, project, ("mutate",))
