"""Cross-layer contract rules (CON).

Three layers must agree on the design-parameter vocabulary:

- ``designspace`` *defines* parameters (``Parameter(name=..., derived=...)``),
- ``simulator/config.py`` *consumes* them (``settings["name"]`` lookups),
- ``regression`` model specs *reference* them (``SplineTerm("name")`` ...).

Train/eval skew between these layers is silent: a renamed parameter or a
forgotten consumer changes results without any exception.  These
whole-program rules walk all three surfaces and flag dead parameters
(defined, never consumed), phantom parameters (consumed, never defined)
and unknown model predictors.  Each rule runs only when both sides of its
contract are present in the analyzed tree, so single-package runs stay
quiet.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..context import ModuleContext, ProjectContext
from ..findings import Finding, Severity
from ..registry import Rule, register

#: Term constructors whose positional string args name design parameters.
_TERM_CALLS = {"SplineTerm", "LinearTerm", "InteractionTerm"}


def _call_name(node: ast.Call) -> str:
    """Last dotted component of a call target."""
    target = node.func
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


@dataclass(frozen=True)
class _Site:
    """A named reference at a location."""

    name: str
    ctx: ModuleContext
    line: int


def defined_parameters(project: ProjectContext) -> Dict[str, _Site]:
    """Primary + derived parameter names defined in ``designspace``."""
    defined: Dict[str, _Site] = {}
    for ctx in project.iter_package("designspace"):
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _call_name(node) == "Parameter"):
                continue
            for keyword in node.keywords:
                value = keyword.value
                if keyword.arg == "name" and isinstance(value, ast.Constant):
                    if isinstance(value.value, str):
                        defined.setdefault(
                            value.value, _Site(value.value, ctx, value.lineno)
                        )
                elif keyword.arg == "derived" and isinstance(value, ast.Dict):
                    for key in value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            defined.setdefault(
                                key.value, _Site(key.value, ctx, key.lineno)
                            )
    return defined


def consumed_settings(config: ModuleContext) -> List[_Site]:
    """Parameter names the machine-config layer reads from ``settings``."""
    consumed: List[_Site] = []

    def is_settings(node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == "settings"

    for node in ast.walk(config.tree):
        if isinstance(node, ast.Subscript) and is_settings(node.value):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                consumed.append(_Site(index.value, config, node.lineno))
        elif isinstance(node, ast.Compare) and len(node.ops) == 1:
            if isinstance(node.ops[0], (ast.In, ast.NotIn)):
                literal, container = node.left, node.comparators[0]
                if (
                    is_settings(container)
                    and isinstance(literal, ast.Constant)
                    and isinstance(literal.value, str)
                ):
                    consumed.append(_Site(literal.value, config, node.lineno))
        elif isinstance(node, ast.Call):
            target = node.func
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "get"
                and is_settings(target.value)
                and node.args
            ):
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    consumed.append(_Site(first.value, config, node.lineno))
    return consumed


def predictor_references(project: ProjectContext) -> List[_Site]:
    """Parameter names referenced by model terms in ``regression``/``studies``."""
    references: List[_Site] = []
    for package in ("regression", "studies"):
        for ctx in project.iter_package(package):
            for node in ast.walk(ctx.tree):
                if not (
                    isinstance(node, ast.Call)
                    and _call_name(node) in _TERM_CALLS
                ):
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        references.append(_Site(arg.value, ctx, arg.lineno))
    return references


def _contract_surfaces(
    project: ProjectContext,
) -> Tuple[Dict[str, _Site], List[_Site]]:
    """(defined parameters, consumed settings); empty when a side is absent."""
    defined = defined_parameters(project)
    config = project.find("simulator/config.py")
    if not defined or config is None:
        return {}, []
    return defined, consumed_settings(config)


@register
class DeadParameter(Rule):
    """CON001: parameter defined but never consumed by the simulator config."""

    id = "CON001"
    name = "dead-parameter"
    severity = Severity.ERROR
    scope = "project"
    description = (
        "Design parameter defined in designspace (Parameter name/derived)"
        " that simulator/config.py never reads from its settings — the"
        " parameter silently has no effect on simulated results."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag defined parameter names absent from config consumption."""
        defined, consumed = _contract_surfaces(project)
        if not defined or not consumed:
            return
        consumed_names = {site.name for site in consumed}
        for name, site in sorted(defined.items()):
            if name not in consumed_names:
                yield self.finding(
                    site.ctx,
                    site.line,
                    f"parameter {name!r} is defined here but never consumed "
                    "by simulator/config.py",
                )


@register
class PhantomParameter(Rule):
    """CON002: config consumes a parameter nothing defines."""

    id = "CON002"
    name = "phantom-parameter"
    severity = Severity.ERROR
    scope = "project"
    description = (
        "simulator/config.py reads a settings key that no designspace"
        " Parameter (primary or derived) defines — the branch is dead or"
        " the definition was renamed without updating the consumer."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag consumed settings keys with no matching definition."""
        defined, consumed = _contract_surfaces(project)
        if not defined or not consumed:
            return
        for site in consumed:
            if site.name not in defined:
                yield self.finding(
                    site.ctx,
                    site.line,
                    f"settings key {site.name!r} is consumed here but no "
                    "designspace Parameter defines it",
                )


@register
class UnknownPredictor(Rule):
    """CON003: model term references an unknown design parameter."""

    id = "CON003"
    name = "unknown-predictor"
    severity = Severity.ERROR
    scope = "project"
    description = (
        "A SplineTerm/LinearTerm/InteractionTerm names a predictor that"
        " no designspace Parameter defines — the model spec and the"
        " design-space encoding have drifted apart."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag term predictor names absent from the design space."""
        defined = defined_parameters(project)
        if not defined:
            return
        for site in predictor_references(project):
            if site.name not in defined:
                yield self.finding(
                    site.ctx,
                    site.line,
                    f"model term references predictor {site.name!r}, which "
                    "no designspace Parameter defines",
                )
