"""Layering rule (LAY).

The repo's packages form a DAG (see
:data:`repro.analysis.context.PACKAGE_RANKS`): ``metrics`` and
``analysis`` import nothing else from ``repro``; ``designspace``,
``workloads``, ``power`` and ``cluster`` sit above them; then
``simulator``, ``regression``, ``baselines``/``harness`` and finally
``studies``.  A package may only import packages of strictly lower rank.

Only *import-time* imports are checked: function-scoped lazy imports and
``if TYPE_CHECKING:`` blocks are the sanctioned escape hatches for the
known annotation/reporting cycles (``power`` <-> ``simulator``,
``harness`` -> ``experiments``) and are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..context import PACKAGE_RANKS, ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register


def _is_type_checking(test: ast.expr) -> bool:
    """Whether an ``if`` test is (typing.)TYPE_CHECKING."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _import_time_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Import statements executed at module import time.

    Recurses through module-level ``if``/``try``/class bodies but not
    into functions, and skips ``if TYPE_CHECKING:`` branches.
    """
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, ast.If):
            if not _is_type_checking(node.test):
                stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)
        elif isinstance(node, ast.ClassDef):
            stack.extend(node.body)


def _target_modules(node: ast.stmt, ctx: ModuleContext) -> List[str]:
    """Dotted module targets of one import statement."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    assert isinstance(node, ast.ImportFrom)
    if node.level == 0:
        if not node.module:
            return []
        # ``from repro import studies``: the imported names may themselves
        # be packages, so consider both the module and its attributes.
        return [node.module] + [
            f"{node.module}.{alias.name}" for alias in node.names
        ]
    parts = ctx.module.split(".")
    # ``module_name`` drops the ``__init__`` component, so inside a package
    # ``__init__.py`` a level-1 import already resolves against the package
    # itself: strip one component fewer than the level says.
    level = node.level - (1 if ctx.path.name == "__init__.py" else 0)
    base_parts = parts[: len(parts) - level] if len(parts) >= level else []
    if node.module:
        return [".".join(base_parts + node.module.split("."))]
    # ``from .. import designspace`` — each alias is itself a module
    return [".".join(base_parts + [alias.name]) for alias in node.names]


def _target_package(target: str) -> Optional[Tuple[str, str]]:
    """(package, display name) when ``target`` is a ranked repro package."""
    parts = target.split(".")
    if "repro" in parts:
        index = parts.index("repro")
        if index + 1 < len(parts) and parts[index + 1] in PACKAGE_RANKS:
            return parts[index + 1], target
        return None
    if parts and parts[0] in PACKAGE_RANKS:
        return parts[0], target
    return None


@register
class LayeringViolation(Rule):
    """LAY001: import against the package DAG."""

    id = "LAY001"
    name = "layering-violation"
    severity = Severity.ERROR
    description = (
        "Import-time import of a repro package at the same or a higher"
        " layer (e.g. simulator importing studies) — the package DAG runs"
        " metrics/analysis < designspace/workloads/power/cluster <"
        " simulator < regression < baselines/harness < studies."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag upward or sibling imports executed at import time."""
        importer_rank = PACKAGE_RANKS.get(ctx.package)
        if importer_rank is None:
            return  # top-level glue (cli, experiments, __main__) is exempt
        for node in _import_time_imports(ctx.tree):
            flagged = set()
            for target in _target_modules(node, ctx):
                resolved = _target_package(target)
                if resolved is None:
                    continue
                package, display = resolved
                if package == ctx.package or package in flagged:
                    continue
                flagged.add(package)
                target_rank = PACKAGE_RANKS[package]
                if target_rank < importer_rank:
                    continue
                direction = "higher" if target_rank > importer_rank else "same"
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"{ctx.package} (layer {importer_rank}) imports "
                    f"{display} (layer {target_rank}, {direction}-ranked); "
                    "invert the dependency or move it behind a "
                    "function-scoped import",
                    col=node.col_offset,
                )
