"""Numerical-safety rules (NUM).

The models transform responses with ``sqrt(bips)`` and ``log(watts)`` and
normalize encodings by parameter spans — so float comparisons, divisions
by collection sizes and transcendental domains are all load-bearing here.
These rules are guard-sensitive: a division or ``log`` whose operand is
checked anywhere in the enclosing function (``if``/``assert``/comparison/
clamp call/``np.errstate``) is accepted.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..context import ModuleContext, root_names
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..scopes import ScopeIndex

#: log/sqrt style calls with restricted domains (log1p and hypot excluded
#: on purpose: they are usually chosen *for* their safety).
_DOMAIN_CALLS = {
    "math.log", "math.log2", "math.log10", "math.sqrt",
    "numpy.log", "numpy.log2", "numpy.log10", "numpy.sqrt",
}

#: Wrappers inside a domain-call argument that establish the domain.
_SAFE_WRAPPERS = {"abs", "max", "maximum", "clip", "exp", "square", "fmax"}

_DIV_OPS = (ast.Div, ast.FloorDiv, ast.Mod)


def _is_float_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_floaty(node: ast.expr, ctx: ModuleContext) -> bool:
    """Expressions that are float-valued on their face."""
    if _is_float_literal(node):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand, ctx)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            return True
        resolved = ctx.resolve(node.func)
        if resolved and resolved.startswith("math."):
            return True
    return False


def _len_or_sum_arg(node: ast.expr) -> Optional[ast.Call]:
    """The call node when ``node`` is a direct ``len(...)``/``sum(...)``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("len", "sum")
    ):
        return node
    return None


def _candidate_names(node: ast.expr, ctx: ModuleContext) -> List[str]:
    """Names under ``node`` that are not import aliases (``np`` etc.)."""
    return [name for name in root_names(node) if name not in ctx.aliases]


@register
class FloatEquality(Rule):
    """NUM001: exact equality between float expressions."""

    id = "NUM001"
    name = "float-equality"
    severity = Severity.WARNING
    description = (
        "Bare ==/!= where an operand is visibly float-valued (float"
        " literal, division, math.* call) — exact float comparison is"
        " brittle; compare against a tolerance (math.isclose/np.isclose)."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag ``==``/``!=`` comparisons with float-valued operands."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(_is_floaty(operand, ctx) for operand in operands):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "exact float equality; use math.isclose/np.isclose "
                        "or an explicit tolerance",
                        col=node.col_offset,
                    )
                    break


@register
class UnguardedDivision(Rule):
    """NUM002: division by a collection size with no emptiness guard."""

    id = "NUM002"
    name = "unguarded-division"
    severity = Severity.WARNING
    description = (
        "Division by len(...)/sum(...) (directly or via a local bound to"
        " one) with no guard on the operand anywhere in the enclosing"
        " function — empty inputs raise ZeroDivisionError or yield NaN."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag ``x / len(y)`` style divisions lacking a visible guard."""
        index = ScopeIndex(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, _DIV_OPS)):
                continue
            scope = index.scope_of(node)
            denominator = node.right
            call = _len_or_sum_arg(denominator)
            via: Optional[str] = None
            if call is None and isinstance(denominator, ast.Name):
                assigned = scope.assigned_value(denominator.id)
                if assigned is not None:
                    call = _len_or_sum_arg(assigned)
                    via = denominator.id
            if call is None:
                continue
            checked = ([via] if via else []) + _candidate_names(call, ctx)
            if any(scope.is_guarded(name) for name in checked):
                continue
            label = f"{call.func.id}(...)"  # type: ignore[union-attr]
            source = f"{via} = {label}" if via else label
            yield self.finding(
                ctx,
                node.lineno,
                f"division by {source} without a guard against an empty "
                "input (ZeroDivisionError)",
                col=node.col_offset,
            )


@register
class UnguardedDomainCall(Rule):
    """NUM003: log/sqrt on an unguarded argument."""

    id = "NUM003"
    name = "unguarded-log-sqrt"
    severity = Severity.WARNING
    description = (
        "math/numpy log or sqrt whose argument is neither a positive"
        " constant, wrapped in a domain-establishing call (abs/max/clip/"
        "exp), nor checked in the enclosing function — the sqrt-BIPS and"
        " log-power transforms make domain errors a real failure mode."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag domain-restricted calls with unvetted arguments."""
        index = ScopeIndex(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in _DOMAIN_CALLS or not node.args:
                continue
            argument = node.args[0]
            if self._safe_argument(argument):
                continue
            names = _candidate_names(argument, ctx)
            if not names:
                continue  # constant-ish expression (np.pi etc.)
            scope = index.scope_of(node)
            if any(scope.is_guarded(name) for name in names):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                f"{resolved}() argument is never checked against its "
                "domain in this function",
                col=node.col_offset,
            )

    @staticmethod
    def _safe_argument(node: ast.expr) -> bool:
        """Whether the argument establishes its own domain syntactically."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and node.value > 0
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            for side in (node.left, node.right):
                value = getattr(side, "value", None)
                if isinstance(value, (int, float)) and value > 0:
                    return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
            exponent = getattr(node.right, "value", None)
            if isinstance(exponent, int) and exponent % 2 == 0:
                return True
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                target = inner.func
                last = (
                    target.attr
                    if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name) else ""
                )
                if last in _SAFE_WRAPPERS:
                    return True
        return False
