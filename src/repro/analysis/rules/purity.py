"""Purity rules (PURE) — memoized functions must not have side effects.

Three memoization boundaries exist in this codebase: ``functools``
caches, ``Trace.derived`` build callables (computed once per key, then
served from the trace's cache), and sweep reducers' ``update`` methods
(replayed from checkpoints on resume).  A function behind any of them
that mutates its arguments or module state produces different program
states depending on whether the cache was warm — the classic
heisenbug that breaks bitwise replay.
"""

from __future__ import annotations

from typing import Iterator

from ..context import ProjectContext
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..dataflow import is_memoized


@register
class ImpureMemoizedFunction(Rule):
    """PURE001: memoized function mutates arguments or globals."""

    id = "PURE001"
    name = "impure-memoized-function"
    severity = Severity.WARNING
    scope = "project"
    exempt_tests = True
    description = (
        "A function behind a memoization boundary (functools cache,"
        " Trace.derived build callable, reducer update) mutates an"
        " argument or module-level state — its side effects depend on"
        " cache warmth and break replay determinism."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag argument/global mutations inside memoized functions."""
        index = project.dataflow()
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            mod = index.module_of(qualname)
            if mod is None or mod.is_test:
                continue
            if not is_memoized(index, fn):
                continue
            ctx = project.context_for(mod.module)
            if ctx is None:
                continue
            for mutation in fn.param_mutations:
                if mutation.name in ("self", "cls"):
                    continue
                yield self.finding(
                    ctx,
                    mutation.lineno,
                    f"memoized function {qualname} mutates its argument "
                    f"'{mutation.name}' — the mutation only happens on "
                    "cache misses",
                )
            for write in fn.global_writes:
                yield self.finding(
                    ctx,
                    write.lineno,
                    f"memoized function {qualname} writes module-level "
                    f"state '{write.name}' — the write only happens on "
                    "cache misses",
                )
