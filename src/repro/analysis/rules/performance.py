"""Performance rules (PERF).

The batched timing kernel (:func:`repro.simulator.batch.run_pipeline_batch`,
surfaced as ``Simulator.simulate_batch``) replays a trace once for a whole
block of configs, so a per-point ``simulate_point``/``simulate`` loop in
harness or study code pays the per-instruction python overhead once per
design instead of once per block — typically a 3-6x slowdown at realistic
block sizes.  Intentional scalar paths (the serial campaign reference that
the batch kernel is checked against) are carried in the analysis baseline
with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register

#: Scalar per-point simulation entry points.  ``simulate_batch`` and
#: ``simulate_many`` are the batched replacements and never flagged.
_SCALAR_SIMULATE = {"simulate", "simulate_point"}

#: AST nodes whose lexical body repeats per element.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


class _LoopedCallScanner(ast.NodeVisitor):
    """Collect scalar-simulate calls lexically nested inside a loop."""

    def __init__(self) -> None:
        self._depth = 0
        self.hits: List[ast.Call] = []

    def visit(self, node: ast.AST) -> None:
        looping = isinstance(node, _LOOP_NODES)
        if looping:
            self._depth += 1
        if (
            self._depth
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCALAR_SIMULATE
        ):
            self.hits.append(node)
        self.generic_visit(node)
        if looping:
            self._depth -= 1


@register
class ScalarSimulateInLoop(Rule):
    """PERF001: per-point simulation loop where the batch kernel applies."""

    id = "PERF001"
    name = "scalar-simulate-in-loop"
    severity = Severity.WARNING
    exempt_tests = True
    description = (
        "Per-point simulate()/simulate_point() call inside a loop in"
        " harness or study code — Simulator.simulate_batch replays the"
        " trace once per block of configs with bit-identical results;"
        " baseline intentional scalar reference paths with a reason."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag loop-nested scalar simulate calls in harness/studies."""
        if ctx.package not in ("harness", "studies"):
            return
        scanner = _LoopedCallScanner()
        scanner.visit(ctx.tree)
        for node in scanner.hits:
            yield self.finding(
                ctx,
                node.lineno,
                f"per-point {node.func.attr}() inside a loop; batch the"
                " block through Simulator.simulate_batch (or"
                " StudyContext.simulate_many) — results are bit-identical"
                " and the trace is replayed once per block",
                col=node.col_offset,
            )
