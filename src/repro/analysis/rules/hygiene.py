"""Error-hygiene rules (HYG).

Swallowed exceptions turn model-fidelity bugs into silently wrong tables;
mutable default arguments leak state across calls — the classic way a
"deterministic" pipeline becomes order-dependent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register

_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "defaultdict", "OrderedDict"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


@register
class BareExcept(Rule):
    """HYG001: ``except:`` with no exception type."""

    id = "HYG001"
    name = "bare-except"
    severity = Severity.ERROR
    description = (
        "Bare except: catches SystemExit/KeyboardInterrupt and masks real"
        " failures — name the exception types you mean to handle."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag handlers with no exception type."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    "bare except: — name the exception types to handle",
                    col=node.col_offset,
                )


@register
class SilentExcept(Rule):
    """HYG002: handler that swallows the exception with ``pass``."""

    id = "HYG002"
    name = "silent-except"
    severity = Severity.WARNING
    description = (
        "except-body is a lone pass/... — the failure vanishes without a"
        " trace; at minimum record why ignoring it is safe."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag handlers whose body is only ``pass`` or ``...``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if len(node.body) != 1:
                continue
            only = node.body[0]
            swallowed = isinstance(only, ast.Pass) or (
                isinstance(only, ast.Expr)
                and isinstance(only.value, ast.Constant)
                and only.value.value is Ellipsis
            )
            if swallowed:
                yield self.finding(
                    ctx,
                    node.lineno,
                    "exception swallowed by a pass-only handler",
                    col=node.col_offset,
                )


@register
class MutableDefault(Rule):
    """HYG003: mutable default argument."""

    id = "HYG003"
    name = "mutable-default"
    severity = Severity.WARNING
    description = (
        "Default argument is a mutable object (list/dict/set literal or"
        " constructor) shared across calls — default to None and create"
        " the object inside the function."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag list/dict/set defaults on function signatures."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default.lineno,
                        f"mutable default argument in {node.name}(); use "
                        "None and construct per call",
                        col=default.col_offset,
                    )
