"""Observability rules (OBS).

The harness layer reports every duration through :mod:`repro.obs` — spans
for structure, ``Stopwatch`` for raw wall/CPU pairs shipped across process
boundaries.  A bare ``time.perf_counter()`` call in harness code produces a
number invisible to ``repro trace summary`` and the merged metrics
snapshot, so the timing silently falls out of the observability story.
Scheduling clocks (``time.monotonic`` for deadlines, ``time.sleep`` for
backoff) are not measurements and stay exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register

#: Measurement clocks that bypass the observability layer when called
#: directly.  ``time.monotonic`` is deliberately absent: resilience uses
#: it for deadlines, which are scheduling, not measurement.
_RAW_CLOCKS = {"time.perf_counter", "time.process_time"}


@register
class RawClockInHarness(Rule):
    """OBS001: harness timing that bypasses repro.obs."""

    id = "OBS001"
    name = "raw-clock-in-harness"
    severity = Severity.WARNING
    exempt_tests = True
    description = (
        "Direct time.perf_counter()/time.process_time() call in harness"
        " code — durations measured outside repro.obs never reach traces"
        " or metrics; use obs.tracing.Stopwatch or a span instead."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag raw measurement-clock calls in ``repro.harness`` modules."""
        if ctx.package != "harness":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _RAW_CLOCKS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"raw clock {resolved}() in harness code; time with "
                    "repro.obs (Stopwatch or a span) so the duration "
                    "reaches traces and metrics",
                    col=node.col_offset,
                )
