"""Determinism rules (DET).

The reproduction's artifacts (Table 2, Figure 3, ...) must be identical
across runs: every stochastic component threads an explicitly seeded
``numpy.random.Generator``.  These rules flag the two ways that contract
silently erodes — touching the process-global RNG state, and constructing
generators without a seed.  Test code is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext, ProjectContext
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..dataflow import RNG_CONSTRUCTORS, seed_argument

#: ``random.*`` functions that read or mutate the module-global state.
_STDLIB_STATE = {
    "seed", "getstate", "setstate", "getrandbits", "randbytes",
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate",
}

#: Legacy ``numpy.random.*`` functions backed by the global RandomState.
_NUMPY_STATE = {
    "seed", "get_state", "set_state", "rand", "randn", "randint",
    "random", "random_sample", "random_integers", "ranf", "sample",
    "bytes", "choice", "shuffle", "permutation", "beta", "binomial",
    "chisquare", "dirichlet", "exponential", "gamma", "geometric",
    "gumbel", "laplace", "logistic", "lognormal", "multinomial",
    "normal", "pareto", "poisson", "power", "rayleigh",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_normal", "standard_t", "triangular", "uniform",
    "vonmises", "wald", "weibull", "zipf",
}

_GLOBAL_STATE = (
    {f"random.{name}" for name in _STDLIB_STATE}
    | {f"numpy.random.{name}" for name in _NUMPY_STATE}
)

#: RNG constructors that accept (and here must receive) a seed.  The
#: canonical set lives in the dataflow layer so the interprocedural
#: escape analysis (DET003) and the local check (DET002) agree.
_RNG_CONSTRUCTORS = RNG_CONSTRUCTORS


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class GlobalRandomState(Rule):
    """DET001: use of process-global RNG state."""

    id = "DET001"
    name = "global-random-state"
    severity = Severity.ERROR
    exempt_tests = True
    description = (
        "Call into the process-global RNG (random.* / legacy numpy.random.*)"
        " — global state breaks run-to-run reproducibility; thread an"
        " explicitly seeded numpy.random.Generator instead."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag calls resolving to global-state RNG functions."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _GLOBAL_STATE:
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"global RNG state via {resolved}(); use an explicitly "
                    "seeded numpy.random.Generator",
                    col=node.col_offset,
                )


@register
class UnseededGenerator(Rule):
    """DET002: RNG constructed without an explicit seed."""

    id = "DET002"
    name = "unseeded-generator"
    severity = Severity.ERROR
    exempt_tests = True
    description = (
        "RNG constructor called without a seed argument (or with an"
        " explicit None) — every generator outside test code must be"
        " seeded so sampling is reproducible."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag seedless ``default_rng()`` / ``RandomState()`` / ``Random()``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in _RNG_CONSTRUCTORS:
                continue
            if node.args and not _is_none(node.args[0]):
                continue
            seed_kwargs = [k for k in node.keywords if k.arg == "seed"]
            if seed_kwargs and not _is_none(seed_kwargs[0].value):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                f"{resolved}() constructed without an explicit seed",
                col=node.col_offset,
            )


@register
class UnseededRngEscape(Rule):
    """DET003: a factory-built RNG escapes unseeded into non-test code."""

    id = "DET003"
    name = "unseeded-rng-escape"
    severity = Severity.ERROR
    scope = "project"
    exempt_tests = True
    description = (
        "Call into an RNG factory (a function that builds and returns a"
        " generator seeded from a parameter) without an effective seed —"
        " omitted with a None default, or an explicit None — so an"
        " unseeded generator escapes into simulation/harness code."
        " Closes the interprocedural blind spot of DET001/DET002."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag factory call sites whose seed slot resolves to None."""
        index = project.dataflow()
        for module in sorted(index.modules):
            mod = index.modules[module]
            if mod.is_test:
                continue
            ctx = project.context_for(module)
            if ctx is None:
                continue
            for fn in mod.functions:
                for site in fn.calls:
                    resolved = index.resolve(site.target)
                    if resolved is None:
                        continue
                    factory = index.rng_factories.get(resolved)
                    if factory is None or factory.qualname == fn.qualname:
                        continue
                    info = seed_argument(index, site, factory)
                    if info is None:
                        if not factory.none_default:
                            continue
                        how = (
                            f"seed omitted and {factory.qualname}'s "
                            f"'{factory.seed_param}' defaults to None"
                        )
                    elif info.is_none:
                        how = f"explicit None '{factory.seed_param}'"
                    else:
                        continue
                    yield self.finding(
                        ctx,
                        site.lineno,
                        f"unseeded RNG escapes from factory "
                        f"{factory.qualname} into {fn.qualname}: {how}",
                    )
