"""Repo-specific static analysis (``repro analyze``).

An AST-based checker enforcing the properties the reproduction's validity
rests on: determinism (no global RNG state, no unseeded generators),
numerical safety (float equality, division and log/sqrt domains), the
package-layering DAG, the designspace <-> simulator <-> regression
parameter contracts, and error hygiene.  See ``docs/ANALYSIS.md`` for the
rule catalogue and the baseline workflow.

Typical use::

    from pathlib import Path
    from repro.analysis import Baseline, analyze_paths, render_text

    report = analyze_paths([Path("src")], baseline=Baseline.load(
        Path("analysis-baseline.json")))
    print(render_text(report))
    raise SystemExit(report.exit_code(strict=True))
"""

from .baseline import Baseline, BaselineEntry, BaselineError
from .context import PACKAGE_RANKS, ModuleContext, ProjectContext
from .dataflow import (
    DataflowIndex,
    ModuleSummary,
    SummaryCache,
    build_index,
    summarize_module,
)
from .findings import Finding, Severity
from .registry import Rule, all_rules, get_rule, register, select_rules
from .report import render_json, render_text
from .runner import (
    CACHE_SUBDIR,
    AnalysisReport,
    UsageError,
    analyze_paths,
    collect_files,
    dataflow_index,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "CACHE_SUBDIR",
    "DataflowIndex",
    "Finding",
    "ModuleContext",
    "ModuleSummary",
    "PACKAGE_RANKS",
    "ProjectContext",
    "Rule",
    "Severity",
    "SummaryCache",
    "UsageError",
    "all_rules",
    "analyze_paths",
    "build_index",
    "collect_files",
    "dataflow_index",
    "get_rule",
    "register",
    "render_json",
    "render_text",
    "select_rules",
    "summarize_module",
]
