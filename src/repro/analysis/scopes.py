"""Function-scope indexing shared by the numerical-safety rules.

The NUM rules are guard-sensitive: ``a / n`` is fine when the enclosing
function checks ``n`` first, and ``np.log(y)`` is fine after a domain
check on ``y``.  This module builds, per function (plus one synthetic
module-level scope), the set of names that appear in any guard position —
``if``/``while``/``assert``/comprehension conditions, comparisons,
clamping calls such as ``max``/``np.clip`` — together with a map of
simple local assignments, so rules can answer "was this name checked
anywhere in this scope?" without flow analysis.  Guards are inherited by
nested functions (a closure may rely on its enclosing function's checks).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .context import root_names

#: Call names (last dotted component) whose arguments count as guarded —
#: clamping or domain-restricting operations.
_CLAMP_CALLS = {
    "max", "min", "abs", "maximum", "minimum", "clip",
    "where", "nan_to_num", "fmax", "fmin",
}

#: Call-name prefixes (underscores stripped) treated as validators: passing
#: a name into ``_check(...)``/``validate_...(...)`` counts as guarding it.
_VALIDATOR_PREFIXES = ("check", "validate", "require", "ensure", "assert")


def _is_validator_name(name: str) -> bool:
    """Whether a call name looks like a validation helper."""
    return name.lstrip("_").startswith(_VALIDATOR_PREFIXES)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class Scope:
    """One function (or the module body) and what it guards/assigns."""

    node: ast.AST
    parent: Optional["Scope"] = None
    guarded: set = field(default_factory=set)
    assignments: Dict[str, ast.expr] = field(default_factory=dict)
    #: True when the scope catches ZeroDivisionError/ValueError itself.
    handles_domain_errors: bool = False

    def is_guarded(self, name: str) -> bool:
        """Whether ``name`` is checked in this scope or an enclosing one."""
        scope: Optional[Scope] = self
        while scope is not None:
            if scope.handles_domain_errors or name in scope.guarded:
                return True
            scope = scope.parent
        return False

    def assigned_value(self, name: str) -> Optional[ast.expr]:
        """Last simple ``name = value`` assignment visible in this scope."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.assignments:
                return scope.assignments[name]
            scope = scope.parent
        return None


class ScopeIndex:
    """Scopes of one module, with a node -> nearest-scope mapping."""

    def __init__(self, tree: ast.Module):
        self.scopes: List[Scope] = []
        self._scope_of: Dict[int, Scope] = {}
        module_scope = Scope(tree)
        self.scopes.append(module_scope)
        self._visit_body(tree, module_scope)

    def scope_of(self, node: ast.AST) -> Scope:
        """Nearest enclosing function scope for a visited node."""
        return self._scope_of[id(node)]

    # -- construction ------------------------------------------------------

    def _visit_body(self, node: ast.AST, scope: Scope) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, scope)

    def _visit(self, node: ast.AST, scope: Scope) -> None:
        if isinstance(node, _FUNCTION_NODES):
            inner = Scope(node, parent=scope)
            self.scopes.append(inner)
            self._scope_of[id(node)] = scope
            self._visit_body(node, inner)
            return
        self._scope_of[id(node)] = scope
        self._collect_guards(node, scope)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.expr):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    scope.assignments[target.id] = node.value
        self._visit_body(node, scope)

    def _collect_guards(self, node: ast.AST, scope: Scope) -> None:
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            scope.guarded.update(root_names(node.test))
        elif isinstance(node, ast.Assert):
            scope.guarded.update(root_names(node.test))
        elif isinstance(node, ast.comprehension):
            for condition in node.ifs:
                scope.guarded.update(root_names(condition))
        elif isinstance(node, ast.Compare):
            scope.guarded.update(root_names(node))
        elif isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            scope.guarded.update(root_names(node))
        elif isinstance(node, ast.Call):
            target = node.func
            last = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else ""
            )
            if last in _CLAMP_CALLS or _is_validator_name(last):
                for arg in node.args:
                    scope.guarded.update(root_names(arg))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                call = item.context_expr
                if isinstance(call, ast.Call):
                    target = call.func
                    last = (
                        target.attr
                        if isinstance(target, ast.Attribute)
                        else target.id if isinstance(target, ast.Name) else ""
                    )
                    if last == "errstate":
                        scope.handles_domain_errors = True
        elif isinstance(node, ast.ExceptHandler) and node.type is not None:
            caught = {
                name
                for expr in ast.walk(node.type)
                if isinstance(expr, ast.Name)
                for name in [expr.id]
            }
            if caught & {"ZeroDivisionError", "FloatingPointError", "ArithmeticError"}:
                scope.handles_domain_errors = True
