"""Text and JSON reporters for analysis results."""

from __future__ import annotations

import json

from .findings import RuleStats, Severity
from .runner import AnalysisReport


def render_text(report: AnalysisReport, show_context: bool = True) -> str:
    """Human-readable listing: one ``path:line:col`` block per finding."""
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} "
            f"{finding.severity.label}: {finding.message}"
        )
        if show_context and finding.context:
            lines.append(f"    {finding.context}")
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.rule} at {entry.path} "
            f"({entry.reason or 'no reason recorded'})"
        )
    lines.append(_summary_line(report))
    return "\n".join(lines)


def _summary_line(report: AnalysisReport) -> str:
    counts = report.counts()
    total = len(report.findings)
    if total == 0:
        parts = [f"0 findings in {report.files_analyzed} files"]
    else:
        by_severity = ", ".join(
            f"{counts[severity.label]} {severity.label}"
            for severity in sorted(Severity, reverse=True)
            if counts[severity.label]
        )
        per_rule: dict = {}
        for finding in report.findings:
            per_rule.setdefault(finding.rule, RuleStats()).add(finding)
        worst = ", ".join(
            f"{rule}x{stats.count}" for rule, stats in sorted(per_rule.items())
        )
        parts = [
            f"{total} findings ({by_severity}) in "
            f"{report.files_analyzed} files [{worst}]"
        ]
    if report.suppressed:
        parts.append(f"{len(report.suppressed)} suppressed by baseline")
    if report.stale_baseline:
        parts.append(f"{len(report.stale_baseline)} stale baseline entries")
    return "; ".join(parts)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable JSON document for the whole run."""
    payload = {
        "version": 1,
        "root": str(report.root),
        "files_analyzed": report.files_analyzed,
        "rules": report.rule_ids,
        "summary": report.counts(),
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [
            dict(finding.to_dict(), reason=entry.reason)
            for finding, entry in report.suppressed
        ],
        "stale_baseline": [entry.to_dict() for entry in report.stale_baseline],
    }
    return json.dumps(payload, indent=2)
