"""Per-module and whole-project analysis contexts.

A :class:`ModuleContext` wraps one parsed source file: its AST, source
lines, best-effort dotted module name, the ``repro`` package it belongs to
(for layering checks) and an import-alias table that lets rules resolve
``np.random.seed`` back to ``numpy.random.seed`` regardless of how numpy
was imported.  A :class:`ProjectContext` is the collection of module
contexts handed to whole-program rules (the cross-layer contract checks).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: Packages of ``repro`` ordered into layers; a module may only import
#: packages of strictly lower rank (``cli``/``experiments``/``__main__``
#: are top-level glue and exempt).  ``analysis``, ``metrics`` and ``obs``
#: sit at the bottom: they import nothing else from ``repro``.
PACKAGE_RANKS: Dict[str, int] = {
    "metrics": 0,
    "analysis": 0,
    "obs": 0,
    "designspace": 1,
    "workloads": 1,
    "power": 1,
    "cluster": 1,
    "simulator": 2,
    "regression": 3,
    "baselines": 4,
    "harness": 4,
    "studies": 5,
}

#: Path fragments that mark a file as test code (rules such as the
#: determinism family are relaxed there).
_TEST_MARKERS = ("tests", "test", "conftest")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_names(node: ast.AST) -> List[str]:
    """All Name identifiers appearing anywhere under ``node``."""
    return [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]


def _relative_base(module: str, is_package: bool, level: int) -> Optional[str]:
    """The absolute package a relative import of ``level`` anchors at.

    For a plain module ``a.b.c``, level 1 resolves against ``a.b`` and
    level 2 against ``a``; for a package ``__init__`` the module itself is
    the first anchor.  Returns None when the import climbs past the top.
    """
    parts = module.split(".") if module else []
    anchor = parts if is_package else parts[:-1]
    drop = level - 1
    if drop > len(anchor) or not anchor[: len(anchor) - drop]:
        return None
    return ".".join(anchor[: len(anchor) - drop])


def _collect_aliases(
    tree: ast.AST, module: str = "", is_package: bool = False
) -> Dict[str, str]:
    """Map local names to the dotted import target they refer to.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from numpy import
    random as r`` yields ``{"r": "numpy.random"}``.  Relative imports are
    resolved against ``module`` (the importer's dotted name) into absolute
    targets — ``from ..obs.metrics import x`` inside ``repro.harness.y``
    yields ``{"x": "repro.obs.metrics.x"}`` — which is what lets the
    dataflow call graph follow intra-repo calls.  Star imports bind no
    usable local name and are skipped.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module
            else:
                base = _relative_base(module, is_package, node.level)
                if base is None:
                    continue
                if node.module:
                    base = f"{base}.{node.module}"
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}"
    return aliases


@dataclass
class ModuleContext:
    """One parsed source file plus the metadata rules need."""

    path: Path
    relpath: str
    module: str
    package: str
    source: str
    lines: List[str]
    tree: ast.Module
    is_test: bool
    aliases: Dict[str, str] = field(default_factory=dict)

    def source_line(self, lineno: int) -> str:
        """Stripped source text of 1-based ``lineno`` (baseline fingerprint)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain through the import aliases.

        Returns the canonical dotted name (``numpy.random.seed``) or None
        when the chain's root is not an imported name — which also keeps a
        local variable that happens to be called ``random`` from tripping
        the determinism rules.
        """
        name = dotted_name(node)
        if not name:
            return None
        head, _, rest = name.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base


def package_of(relpath: str) -> str:
    """The ranked ``repro`` package a path belongs to, or ``""``.

    Looks for a known package name among the path's directory components,
    so both ``src/repro/simulator/config.py`` and a test fixture laid out
    as ``fixtures/layering/simulator/bad.py`` resolve to ``simulator``.
    """
    parts = Path(relpath).parts[:-1]
    if "repro" in parts:
        after = parts[parts.index("repro") + 1:]
        return after[0] if after and after[0] in PACKAGE_RANKS else ""
    for part in parts:
        if part in PACKAGE_RANKS:
            return part
    return ""


def module_name(relpath: str) -> str:
    """Best-effort dotted module name for a repo-relative path."""
    path = Path(relpath)
    parts = list(path.parts)
    parts[-1] = path.stem
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def is_test_path(relpath: str) -> bool:
    """Whether a path is test code (fixtures and benchmarks excluded)."""
    parts = Path(relpath).parts
    stem = Path(relpath).stem
    if "fixtures" in parts:
        return False
    if stem.startswith("test_") or stem in ("conftest",):
        return True
    return any(part in _TEST_MARKERS for part in parts[:-1])


def build_module_context(
    path: Path, root: Path
) -> Tuple[Optional[ModuleContext], Optional[str]]:
    """Parse ``path`` into a context; returns ``(ctx, error_message)``."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return None, f"unreadable: {error}"
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, f"syntax error: {error.msg} (line {error.lineno})"
    module = module_name(relpath)
    ctx = ModuleContext(
        path=path,
        relpath=relpath,
        module=module,
        package=package_of(relpath),
        source=source,
        lines=source.splitlines(),
        tree=tree,
        is_test=is_test_path(relpath),
        aliases=_collect_aliases(
            tree, module=module, is_package=Path(relpath).stem == "__init__"
        ),
    )
    return ctx, None


@dataclass
class ProjectContext:
    """All module contexts of one analysis run.

    ``summaries`` optionally carries precomputed per-module dataflow
    summaries (the runner supplies them, cache- and worker-sourced);
    :meth:`dataflow` builds them on demand otherwise, so project rules can
    always ask for the interprocedural index.
    """

    root: Path
    modules: List[ModuleContext]
    summaries: Optional[List] = None
    _dataflow: Optional[object] = field(default=None, init=False, repr=False)

    def iter_package(self, package: str) -> Iterator[ModuleContext]:
        """Modules belonging to one ranked ``repro`` package."""
        for ctx in self.modules:
            if ctx.package == package:
                yield ctx

    def find(self, suffix: str) -> Optional[ModuleContext]:
        """First module whose relpath ends with ``suffix``."""
        for ctx in self.modules:
            if ctx.relpath.endswith(suffix):
                return ctx
        return None

    def context_for(self, module: str) -> Optional[ModuleContext]:
        """The module context with dotted name ``module``, if analyzed."""
        for ctx in self.modules:
            if ctx.module == module:
                return ctx
        return None

    def dataflow(self):
        """The memoized interprocedural :class:`~.dataflow.DataflowIndex`.

        Built from ``summaries`` when the runner provided them, otherwise
        summarized fresh from the parsed module contexts.
        """
        if self._dataflow is None:
            from .dataflow import build_index, summarize_module

            summaries = self.summaries
            if summaries is None:
                summaries = [summarize_module(ctx) for ctx in self.modules]
            self._dataflow = build_index(summaries)
        return self._dataflow
