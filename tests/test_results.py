"""Tests for simulation result containers."""

import pytest

from repro.simulator import ActivityCounts, SimulationResult


def make_result(**overrides):
    kwargs = dict(
        benchmark="toy",
        cycles=1000,
        instructions=800,
        frequency_ghz=2.0,
        counts=ActivityCounts(instructions=800, cycles=1000),
        ref_instructions=1.6e9,
    )
    kwargs.update(overrides)
    return SimulationResult(**kwargs)


class TestDerivedMetrics:
    def test_ipc(self):
        assert make_result().ipc == pytest.approx(0.8)

    def test_bips(self):
        assert make_result().bips == pytest.approx(1.6)

    def test_delay_seconds(self):
        assert make_result().delay_seconds == pytest.approx(1.0)

    def test_bips3_per_watt(self):
        result = make_result()
        result.watts = 40.0
        assert result.bips3_per_watt == pytest.approx(1.6**3 / 40.0)

    def test_bips3_requires_power(self):
        with pytest.raises(ValueError, match="PowerModel"):
            make_result().bips3_per_watt


class TestValidation:
    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            make_result(cycles=0)

    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            make_result(instructions=0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            make_result(frequency_ghz=0.0)


class TestActivityCounts:
    def test_activity_per_cycle(self):
        counts = ActivityCounts(cycles=100)
        assert counts.activity(50) == 0.5

    def test_activity_with_no_cycles(self):
        assert ActivityCounts().activity(5) == 0.0

    def test_rates(self):
        counts = ActivityCounts(
            cycles=10, branches=10, mispredicts=2,
            dl1_accesses=20, dl1_misses=5,
            il1_accesses=10, il1_misses=1,
            l2_accesses=6, l2_misses=3,
        )
        assert counts.mispredict_rate == 0.2
        assert counts.dl1_miss_rate == 0.25
        assert counts.il1_miss_rate == 0.1
        assert counts.l2_miss_rate == 0.5

    def test_rates_default_zero(self):
        counts = ActivityCounts()
        assert counts.mispredict_rate == 0.0
        assert counts.dl1_miss_rate == 0.0

    def test_as_dict_round_trips_fields(self):
        counts = ActivityCounts(loads=3, stores=2)
        payload = counts.as_dict()
        assert payload["loads"] == 3
        assert payload["stores"] == 2
        assert set(payload) == set(ActivityCounts.__dataclass_fields__)


class TestSerialization:
    def test_as_dict(self):
        result = make_result()
        result.watts = 30.0
        payload = result.as_dict()
        assert payload["benchmark"] == "toy"
        assert payload["bips"] == pytest.approx(1.6)
        assert payload["watts"] == 30.0
        assert "counts" in payload
