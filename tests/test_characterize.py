"""Tests for workload characterization."""

import numpy as np
import pytest

from repro.workloads import (
    branch_predictability,
    characterize,
    dataflow_ilp,
    footprint_growth,
    generate_trace,
    get_profile,
    instruction_miss_rate_curve,
    miss_rate_curve,
)
from repro.workloads.trace import NO_DATA, NO_FETCH, OP_INT, Trace


def chain_trace(n=64, distance=1):
    """Synthetic trace of pure int ops in a single dependence chain."""
    src1 = np.zeros(n, dtype=np.int32)
    src1[distance:] = distance
    return Trace(
        name="chain",
        op=np.full(n, OP_INT, dtype=np.uint8),
        src1=src1,
        src2=np.zeros(n, dtype=np.int32),
        mem_block=np.full(n, -1, dtype=np.int64),
        data_reuse=np.full(n, NO_DATA, dtype=np.int64),
        iblock=np.zeros(n, dtype=np.int32),
        instr_reuse=np.concatenate(
            [[1], np.full(n - 1, NO_FETCH)]
        ).astype(np.int64),
        taken=np.zeros(n, dtype=bool),
        branch_site=np.full(n, -1, dtype=np.int32),
    )


class TestDataflowILP:
    def test_serial_chain_has_unit_ilp(self):
        assert dataflow_ilp(chain_trace(distance=1)) == pytest.approx(1.0)

    def test_distance_k_chain_has_ilp_k(self):
        assert dataflow_ilp(chain_trace(n=64, distance=4)) == pytest.approx(
            4.0, rel=0.1
        )

    def test_independent_ops_have_ilp_n(self):
        trace = chain_trace(n=32, distance=1)
        trace.src1[:] = 0  # no dependences at all
        assert dataflow_ilp(trace) == pytest.approx(32.0)

    def test_window_cannot_increase_ilp_much(self):
        trace = generate_trace(get_profile("mesa"), 4000, seed=1)
        infinite = dataflow_ilp(trace)
        windowed = dataflow_ilp(trace, window=64)
        assert windowed <= infinite * 1.05

    def test_high_ilp_benchmark_beats_low(self):
        mesa = generate_trace(get_profile("mesa"), 4000, seed=1)
        mcf = generate_trace(get_profile("mcf"), 4000, seed=1)
        assert dataflow_ilp(mesa) > dataflow_ilp(mcf)


class TestPredictability:
    def test_no_branches_is_perfect(self):
        assert branch_predictability(chain_trace()) == 1.0

    def test_predictable_benchmark_beats_branchy(self):
        mesa = generate_trace(get_profile("mesa"), 8000, seed=1)
        gcc = generate_trace(get_profile("gcc"), 8000, seed=1)
        assert branch_predictability(mesa) > branch_predictability(gcc)


class TestMissCurves:
    def test_monotone_non_increasing(self):
        trace = generate_trace(get_profile("twolf"), 8000, seed=1)
        curve = miss_rate_curve(trace)
        values = [curve[c] for c in sorted(curve)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_no_memory_ops_gives_zero(self):
        curve = miss_rate_curve(chain_trace())
        assert all(v == 0.0 for v in curve.values())

    def test_instruction_curve_monotone(self):
        trace = generate_trace(get_profile("jbb"), 8000, seed=1)
        curve = instruction_miss_rate_curve(trace)
        values = [curve[c] for c in sorted(curve)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_mcf_missier_than_gzip(self):
        mcf = miss_rate_curve(generate_trace(get_profile("mcf"), 8000, seed=1))
        gzip = miss_rate_curve(generate_trace(get_profile("gzip"), 8000, seed=1))
        assert mcf[16384] > gzip[16384]


class TestFootprint:
    def test_growth_monotone(self):
        trace = generate_trace(get_profile("gcc"), 8000, seed=1)
        growth = footprint_growth(trace, checkpoints=8)
        sizes = [blocks for _, blocks in growth]
        assert sizes == sorted(sizes)
        assert sizes[-1] == trace.data_footprint()

    def test_requires_checkpoints(self):
        with pytest.raises(ValueError):
            footprint_growth(chain_trace(), checkpoints=0)


class TestCharacterize:
    def test_full_character(self):
        trace = generate_trace(get_profile("ammp"), 6000, seed=1)
        character = characterize(trace)
        assert character.benchmark == "ammp"
        assert character.instructions == 6000
        assert character.ilp_infinite >= character.ilp_window_64 * 0.95
        assert 0.5 <= character.branch_predictability <= 1.0
        assert character.footprint_blocks > 0

    def test_memory_boundedness_orders_suite(self):
        mcf = characterize(generate_trace(get_profile("mcf"), 8000, seed=1))
        gzip = characterize(generate_trace(get_profile("gzip"), 8000, seed=1))
        assert mcf.memory_boundedness() > gzip.memory_boundedness()
