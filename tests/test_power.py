"""Tests for the CACTI and PowerTimer-style power models."""

import pytest
from hypothesis import given, strategies as st

from repro.power import PowerModel, cacti, scaling, structures
from repro.power.cacti import CactiError
from repro.simulator import Simulator, baseline_config
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def baseline_result():
    trace = generate_trace(get_profile("gzip"), 1500, seed=2)
    return Simulator().simulate(trace, baseline_config())


class TestCacti:
    def test_access_time_grows_with_size(self):
        assert cacti.access_time_ns(256) > cacti.access_time_ns(8)

    def test_access_time_grows_with_assoc(self):
        assert cacti.access_time_ns(32, 8) > cacti.access_time_ns(32, 1)

    def test_energy_grows_with_size(self):
        assert cacti.access_energy_nj(2048) > cacti.access_energy_nj(32)

    def test_leakage_near_linear(self):
        ratio = cacti.leakage_w(4096) / cacti.leakage_w(1024)
        assert 3.0 < ratio < 4.2

    def test_area_linear(self):
        assert cacti.area_mm2(64) == pytest.approx(2 * cacti.area_mm2(32))

    def test_rejects_non_positive_size(self):
        with pytest.raises(CactiError):
            cacti.access_time_ns(0)

    def test_rejects_bad_assoc(self):
        with pytest.raises(CactiError):
            cacti.access_energy_nj(32, 0)

    @given(st.floats(1, 8192))
    def test_quantities_positive(self, size_kb):
        assert cacti.access_time_ns(size_kb) > 0
        assert cacti.access_energy_nj(size_kb) > 0
        assert cacti.leakage_w(size_kb) > 0


class TestScaling:
    def test_width_scale_reference_is_unity(self):
        assert scaling.width_scale(4, scaling.PORTED_EXPONENT) == 1.0

    def test_width_scale_superlinear_growth(self):
        assert scaling.width_scale(8, 1.25) > 2.0  # more than linear-in-log

    def test_width_scale_rejects_zero(self):
        with pytest.raises(ValueError):
            scaling.width_scale(0, 1.0)

    def test_latch_count_grows_with_depth(self):
        assert scaling.latch_count(12, 4) > scaling.latch_count(30, 4)

    def test_latch_count_grows_with_width(self):
        assert scaling.latch_count(18, 8) > scaling.latch_count(18, 2)


class TestStructurePowers:
    def test_all_components_positive(self, baseline_result):
        breakdown = PowerModel().breakdown(baseline_config(), baseline_result.counts)
        for name, watts in breakdown.components.items():
            assert watts > 0, name

    def test_total_is_sum(self, baseline_result):
        breakdown = PowerModel().breakdown(baseline_config(), baseline_result.counts)
        assert breakdown.total == pytest.approx(sum(breakdown.components.values()))

    def test_fraction(self, baseline_result):
        breakdown = PowerModel().breakdown(baseline_config(), baseline_result.counts)
        total = sum(breakdown.fraction(name) for name in breakdown.components)
        assert total == pytest.approx(1.0)

    def test_clock_power_depth_sensitivity(self):
        deep = structures.clock_power(baseline_config().with_overrides(depth_fo4=12.0))
        shallow = structures.clock_power(
            baseline_config().with_overrides(depth_fo4=30.0)
        )
        assert deep > 2 * shallow

    def test_regfile_power_grows_with_width(self, baseline_result):
        narrow = structures.regfile_power(
            baseline_config().with_overrides(width=2), baseline_result.counts
        )
        wide = structures.regfile_power(
            baseline_config().with_overrides(width=8), baseline_result.counts
        )
        assert wide > narrow

    def test_cache_power_grows_with_l2(self, baseline_result):
        small = structures.cache_power(
            baseline_config().with_overrides(l2_mb=0.25), baseline_result.counts
        )
        large = structures.cache_power(
            baseline_config().with_overrides(l2_mb=4.0), baseline_result.counts
        )
        assert large > small

    def test_wrong_path_energy_charged(self, baseline_result):
        """Mispredicts waste frontend energy, more so on deep pipelines."""
        import dataclasses

        counts_clean = dataclasses.replace(baseline_result.counts, mispredicts=0)
        counts_dirty = dataclasses.replace(
            baseline_result.counts, mispredicts=baseline_result.counts.branches
        )
        shallow = baseline_config().with_overrides(depth_fo4=30.0)
        deep = baseline_config().with_overrides(depth_fo4=12.0)
        clean_deep = structures.frontend_power(deep, counts_clean)
        dirty_deep = structures.frontend_power(deep, counts_dirty)
        clean_shallow = structures.frontend_power(shallow, counts_clean)
        dirty_shallow = structures.frontend_power(shallow, counts_dirty)
        assert dirty_deep > clean_deep
        # deep pipelines flush more wasted work per mispredict
        assert (dirty_deep / clean_deep) > (dirty_shallow / clean_shallow)

    def test_issue_queue_power_grows_with_entries(self, baseline_result):
        small = structures.issue_queue_power(
            baseline_config().with_overrides(fx_resv=10, fp_resv=5, br_resv=6),
            baseline_result.counts,
        )
        large = structures.issue_queue_power(
            baseline_config().with_overrides(fx_resv=28, fp_resv=14, br_resv=15),
            baseline_result.counts,
        )
        assert large > small


class TestPowerModel:
    def test_baseline_in_plausible_band(self, baseline_result):
        # the POWER4-like baseline should land in the tens of watts
        assert 15.0 < baseline_result.watts < 90.0

    def test_scale_hook(self, baseline_result):
        scaled = PowerModel(scale=2.0).breakdown(
            baseline_config(), baseline_result.counts
        )
        unit = PowerModel().breakdown(baseline_config(), baseline_result.counts)
        assert scaled.total == pytest.approx(2.0 * unit.total)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            PowerModel(scale=0.0)

    def test_evaluate_attaches_breakdown(self, baseline_result):
        assert set(baseline_result.power_breakdown) == {
            "clock", "frontend", "regfile", "issue_queues", "lsq",
            "functional_units", "caches", "base_leakage",
        }

    def test_power_range_across_space_extremes(self):
        trace = generate_trace(get_profile("mesa"), 1500, seed=2)
        simulator = Simulator()
        big = simulator.simulate(
            trace,
            baseline_config().with_overrides(
                depth_fo4=12.0, width=8, functional_units=4,
                gpr_phys=130, fpr_phys=112, spr_phys=96,
                ls_queue=45, store_queue=42,
                il1_kb=256.0, dl1_kb=128.0, l2_mb=4.0,
            ),
        )
        small = simulator.simulate(
            trace,
            baseline_config().with_overrides(
                depth_fo4=30.0, width=2, functional_units=1,
                gpr_phys=40, fpr_phys=40, spr_phys=42,
                ls_queue=15, store_queue=14,
                il1_kb=16.0, dl1_kb=8.0, l2_mb=0.25,
            ),
        )
        assert big.watts > 4 * small.watts  # the paper's wide dynamic range
