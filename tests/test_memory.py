"""Tests for the stack-distance and functional memory models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator import (
    FunctionalMemory,
    StackDistanceMemory,
    associativity_factor,
    baseline_config,
    build_hierarchy,
)


class TestAssociativityFactor:
    def test_direct_mapped_half(self):
        assert associativity_factor(1) == pytest.approx(0.5)

    def test_monotone_in_ways(self):
        factors = [associativity_factor(a) for a in (1, 2, 4, 8, 16)]
        assert factors == sorted(factors)

    def test_approaches_one(self):
        assert associativity_factor(16) > 0.99

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            associativity_factor(0)


class TestStackDistanceMemory:
    def test_short_reuse_hits_l1(self):
        memory = StackDistanceMemory(baseline_config())
        assert memory.data_access(0, reuse=1) == "l1"

    def test_medium_reuse_hits_l2(self):
        memory = StackDistanceMemory(baseline_config())
        assert memory.data_access(0, reuse=4000) == "l2"

    def test_long_reuse_goes_to_memory(self):
        memory = StackDistanceMemory(baseline_config())
        assert memory.data_access(0, reuse=1 << 30) == "mem"

    def test_instruction_path(self):
        memory = StackDistanceMemory(baseline_config())
        assert memory.instr_access(0, reuse=4) == "l1"
        assert memory.instr_access(0, reuse=1 << 30) == "mem"

    def test_counts_consistency(self):
        memory = StackDistanceMemory(baseline_config())
        for reuse in (1, 4000, 1 << 30, 2, 1 << 30):
            memory.data_access(0, reuse)
        counts = memory.counts()
        assert counts["dl1_accesses"] == 5
        assert counts["dl1_misses"] == 3
        assert counts["l2_accesses"] == 3
        assert counts["l2_misses"] == 2
        assert counts["memory_accesses"] == 2

    def test_effective_capacity_includes_associativity(self):
        config = baseline_config()  # dl1: 32KB 2-way
        memory = StackDistanceMemory(config)
        assert memory.dl1_effective == pytest.approx(32 * 8 * 0.75)

    def test_l2_shares(self):
        config = baseline_config()
        memory = StackDistanceMemory(config)
        assert memory.l2_data_effective > memory.l2_instr_effective

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 1 << 25))
    def test_bigger_cache_is_never_worse(self, reuse):
        small = StackDistanceMemory(baseline_config().with_overrides(dl1_kb=8.0))
        large = StackDistanceMemory(baseline_config().with_overrides(dl1_kb=128.0))
        order = {"l1": 0, "l2": 1, "mem": 2}
        assert order[large.data_access(0, reuse)] <= order[small.data_access(0, reuse)]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 1 << 25), st.integers(1, 1 << 25))
    def test_shorter_reuse_is_never_worse(self, a, b):
        memory = StackDistanceMemory(baseline_config())
        short, long = sorted((a, b))
        order = {"l1": 0, "l2": 1, "mem": 2}
        assert order[memory.data_access(0, short)] <= order[memory.data_access(0, long)]


class TestFunctionalMemory:
    def test_wraps_hierarchy(self):
        memory = FunctionalMemory(build_hierarchy(16, 8, 0.25))
        assert memory.data_access(1, reuse=0) == "mem"
        assert memory.data_access(1, reuse=0) == "l1"

    def test_ignores_reuse_argument(self):
        memory = FunctionalMemory(build_hierarchy(16, 8, 0.25))
        memory.data_access(1, reuse=1 << 40)
        assert memory.data_access(1, reuse=1 << 40) == "l1"

    def test_counts_shape_matches_stack_model(self):
        functional = FunctionalMemory(build_hierarchy(16, 8, 0.25))
        stack = StackDistanceMemory(baseline_config())
        functional.data_access(1, 0)
        stack.data_access(1, 0)
        assert set(functional.counts()) == set(stack.counts())

    def test_instruction_side(self):
        memory = FunctionalMemory(build_hierarchy(16, 8, 0.25))
        assert memory.instr_access(3, reuse=0) == "mem"
        assert memory.instr_access(3, reuse=0) == "l1"
        assert memory.counts()["il1_accesses"] == 2
