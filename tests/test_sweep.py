"""Tests for the blockwise sweep engine (repro.harness.sweep).

The engine's contract is *partition independence*: any block size, any
worker count, and any source backing (mixed-radix enumeration or an
explicit point list) must reduce to the same results as a monolithic
whole-table pass.
"""

import numpy as np
import pytest

from repro.designspace import DesignEncoder
from repro.designspace.parameters import ParameterError
from repro.harness.sweep import (
    CollectReducer,
    GroupedMetricReducer,
    ParetoFrontierReducer,
    PointSweepSource,
    SpaceSweepSource,
    SweepError,
    TopKReducer,
    discretized_frontier,
    pareto_indices,
    predict_source,
    run_sweep,
    strict_pareto_mask,
)


@pytest.fixture(scope="module")
def predictor(ctx):
    return ctx.predictor("gzip")


@pytest.fixture(scope="module")
def exploration(ctx):
    return ctx.exploration_points()


class TestSources:
    def test_space_source_matches_point_at(self, ctx):
        space = ctx.exploration_space
        source = SpaceSweepSource(space)
        encoder = DesignEncoder(space)
        positions = [0, 1, 7, len(space) // 2, len(space) - 1]
        for pos in positions:
            point = source.point_at(pos)
            assert point == space.point_at(pos)
            features = source.feature_block(pos, pos + 1)
            expected = encoder.encode_point(point)
            got = np.array([features[name][0] for name in space.names])
            assert np.array_equal(got, expected)

    def test_space_source_subset_and_slice(self, ctx):
        space = ctx.exploration_space
        indices = np.array([5, 17, 101, 999], dtype=np.int64)
        source = SpaceSweepSource(space, indices)
        assert len(source) == 4
        assert source.point_at(2) == space.point_at(101)
        sliced = source.slice(1, 3)
        assert len(sliced) == 2
        assert sliced.point_at(0) == space.point_at(17)

    def test_space_source_rejects_bad_indices(self, ctx):
        space = ctx.exploration_space
        with pytest.raises(SweepError):
            SpaceSweepSource(space, np.array([len(space)]))
        with pytest.raises(SweepError):
            SpaceSweepSource(space, np.array([-1]))

    def test_point_source_encoding_matches_encoder(self, ctx, exploration):
        space = ctx.exploration_space
        points = exploration[:64]
        source = PointSweepSource(space, points)
        expected = DesignEncoder(space).encode(points)
        features = source.feature_block(0, len(points))
        got = np.column_stack([features[name] for name in space.names])
        assert np.array_equal(got, expected)

    def test_point_source_rejects_off_grid(self, ctx):
        space = ctx.exploration_space
        bad = space.point_at(0).replace(depth=13)  # 13 FO4 is not a level
        source = PointSweepSource(space, [bad])
        with pytest.raises(ParameterError):
            source.feature_block(0, 1)

    def test_sources_agree(self, ctx, predictor):
        space = ctx.exploration_space
        indices = np.arange(0, len(space), len(space) // 200, dtype=np.int64)
        by_index = SpaceSweepSource(space, indices)
        by_list = PointSweepSource(
            space, [space.point_at(int(i)) for i in indices]
        )
        bips_a, watts_a = predict_source(predictor, by_index, block_size=64)
        bips_b, watts_b = predict_source(predictor, by_list, block_size=64)
        assert np.array_equal(bips_a, bips_b)
        assert np.array_equal(watts_a, watts_b)


class TestBlockwisePrediction:
    def test_matches_predict_points(self, ctx, exploration):
        """Blockwise == whole-table: same values, bit for bit, when the
        block decomposition matches (one monolithic block)."""
        table = ctx.predict_points("gzip", exploration)
        source = PointSweepSource(ctx.exploration_space, exploration)
        bips, watts = predict_source(
            ctx.predictor("gzip"), source, block_size=len(exploration)
        )
        assert np.array_equal(bips, table.bips)
        assert np.array_equal(watts, table.watts)

    def test_block_size_invariance(self, ctx, predictor, exploration):
        """Any block size reproduces the same reductions: identical
        frontier indices and argmax, values equal to float tolerance."""
        source = PointSweepSource(ctx.exploration_space, exploration)
        baseline = None
        for block_size in (len(exploration), 256, 101, 7):
            report = run_sweep(
                predictor,
                source,
                [ParetoFrontierReducer(bins=50), TopKReducer()],
                block_size=block_size,
            )
            front, best = report.results
            if baseline is None:
                baseline = (front, best)
                continue
            assert np.array_equal(front.indices, baseline[0].indices)
            assert best.indices[0] == baseline[1].indices[0]
            np.testing.assert_allclose(
                front.delay, baseline[0].delay, rtol=1e-12
            )
            np.testing.assert_allclose(
                best.values, baseline[1].values, rtol=1e-12
            )

    def test_parallel_matches_serial(self, ctx, predictor, exploration):
        """Two workers, chunk-aligned blocks: bit-identical reductions."""
        source = PointSweepSource(ctx.exploration_space, exploration)
        reducers = lambda: [  # noqa: E731 - test-local factory
            ParetoFrontierReducer(bins=50),
            TopKReducer(metric="efficiency", k=3),
            CollectReducer(metrics=("bips", "watts")),
        ]
        serial = run_sweep(predictor, source, reducers(), block_size=100)
        parallel = run_sweep(
            predictor, source, reducers(), block_size=100, workers=2
        )
        s_front, s_top, s_all = serial.results
        p_front, p_top, p_all = parallel.results
        assert np.array_equal(s_front.indices, p_front.indices)
        assert np.array_equal(s_front.delay, p_front.delay)
        assert np.array_equal(s_top.indices, p_top.indices)
        assert np.array_equal(s_top.values, p_top.values)
        assert np.array_equal(s_all.metric("bips"), p_all.metric("bips"))
        assert np.array_equal(s_all.metric("watts"), p_all.metric("watts"))

    def test_progress_stream(self, ctx, predictor, exploration):
        source = PointSweepSource(ctx.exploration_space, exploration)
        calls = []
        run_sweep(
            predictor,
            source,
            [TopKReducer()],
            block_size=256,
            progress=lambda *args: calls.append(args),
        )
        assert calls[0][0] == "gzip"
        assert calls[-1][1] == len(exploration)
        done = [c[1] for c in calls]
        assert done == sorted(done)

    def test_rejects_bad_config(self, ctx, predictor, exploration):
        source = PointSweepSource(ctx.exploration_space, exploration[:8])
        with pytest.raises(SweepError):
            run_sweep(predictor, source, [], block_size=0)
        with pytest.raises(SweepError):
            run_sweep(predictor, source, [], workers=0)


class TestReducers:
    def test_frontier_reducer_matches_whole_table(self, ctx, exploration):
        table = ctx.predict_points("gzip", exploration)
        expected = discretized_frontier(table.delay, table.watts, bins=50)
        result = ctx.sweep_exploration(
            "gzip", [ParetoFrontierReducer(bins=50)], block_size=128
        )[0]
        assert np.array_equal(np.sort(result.indices), np.sort(expected))

    def test_topk_matches_argmax(self, ctx, exploration):
        table = ctx.predict_points("gzip", exploration)
        best = ctx.sweep_exploration(
            "gzip", [TopKReducer(metric="efficiency", k=1)], block_size=128
        )[0]
        assert best.indices[0] == int(table.efficiency.argmax())
        assert best.points[0] == table.points[int(table.efficiency.argmax())]

    def test_topk_first_occurrence_tie_break(self, ctx, predictor):
        """Duplicated points tie exactly; argmax keeps the first."""
        space = ctx.exploration_space
        point = space.point_at(42)
        source = PointSweepSource(space, [point] * 10)
        best = run_sweep(
            predictor, source, [TopKReducer(k=1)], block_size=3
        ).results[0]
        assert best.indices[0] == 0

    def test_grouped_matches_masked_table(self, ctx):
        table = ctx.predict_per_depth("gzip")
        grouped = ctx.sweep_per_depth(
            "gzip", [GroupedMetricReducer("depth", "efficiency")],
            block_size=64,
        )[0]
        depths = np.array([p["depth"] for p in table.points], dtype=float)
        for level in grouped.levels():
            mask = depths == level
            np.testing.assert_allclose(
                grouped.values[level], table.efficiency[mask], rtol=1e-12
            )
            local = np.flatnonzero(mask)
            best_local = int(local[table.efficiency[mask].argmax()])
            assert grouped.argmax_indices[level] == best_local
            assert grouped.argmax_points[level] == table.points[best_local]

    def test_collect_matches_table(self, ctx, exploration):
        table = ctx.predict_points("gzip", exploration)
        collected = ctx.sweep_exploration(
            "gzip",
            [CollectReducer(metrics=("bips", "delay"), columns=("depth",))],
            block_size=173,
        )[0]
        np.testing.assert_allclose(
            collected.metric("bips"), table.bips, rtol=1e-12
        )
        np.testing.assert_allclose(
            collected.metric("delay"), table.delay, rtol=1e-12
        )
        expected_depth = np.array(
            [p["depth"] for p in table.points], dtype=float
        )
        assert np.array_equal(collected.column("depth"), expected_depth)

    def test_reducer_results_memoized(self, ctx):
        a = ctx.sweep_exploration("gzip", [ParetoFrontierReducer(bins=50)])[0]
        b = ctx.sweep_exploration("gzip", [ParetoFrontierReducer(bins=50)])[0]
        assert a is b  # cached finalized result, not a re-run


class TestFrontierMath:
    def test_strict_pareto_mask_keeps_ties(self):
        delay = np.array([1.0, 1.0, 2.0, 3.0])
        power = np.array([5.0, 5.0, 5.0, 4.0])
        mask = strict_pareto_mask(delay, power)
        # both delay=1 ties survive; delay=2/power=5 is only weakly
        # dominated (equal power) and survives; delay=3 improves power.
        assert mask.tolist() == [True, True, True, True]
        mask2 = strict_pareto_mask(
            np.array([1.0, 2.0]), np.array([1.0, 2.0])
        )
        assert mask2.tolist() == [True, False]

    def test_pareto_reexports_preserved(self):
        from repro.studies.pareto import discretized_frontier as df
        from repro.studies.pareto import pareto_indices as pi

        assert df is discretized_frontier
        assert pi is pareto_indices


class TestStudyContextIntegration:
    def test_exploration_sweep_indices_align_with_table(self, ctx):
        """Sweep positions index predict_exploration rows."""
        table = ctx.predict_exploration("gzip")
        front = ctx.sweep_exploration(
            "gzip", [ParetoFrontierReducer(bins=50)]
        )[0]
        for idx, point in zip(front.indices, front.points):
            assert table.points[int(idx)] == point

    def test_trace_built_once_per_benchmark(self, test_scale, simulator):
        """StudyContext.simulate must not rebuild the trace per call."""
        from repro.studies import StudyContext

        fresh = StudyContext(scale=test_scale, simulator=simulator,
                             benchmarks=["gzip"])
        calls = []
        original = simulator.trace_for

        def spying_trace_for(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        simulator.trace_for = spying_trace_for
        try:
            baseline = fresh.baseline
            for _ in range(4):
                fresh.simulate("gzip", baseline)
        finally:
            simulator.trace_for = original
        assert len(calls) == 1
