"""Tests for voltage scaling and bips^3/w invariance (footnote 2)."""

import pytest

from repro.power import (
    PowerModel,
    VoltageError,
    invariance_study,
    scale_operating_point,
    split_power,
)
from repro.simulator import Simulator, baseline_config
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def result():
    trace = generate_trace(get_profile("gzip"), 1500, seed=2)
    return Simulator().simulate(trace, baseline_config())


class TestSplitPower:
    def test_parts_sum_to_total(self, result):
        parts = split_power(baseline_config(), result)
        assert parts["dynamic"] + parts["static"] == pytest.approx(parts["total"])
        assert parts["total"] == pytest.approx(result.watts)

    def test_both_parts_positive(self, result):
        parts = split_power(baseline_config(), result)
        assert parts["dynamic"] > 0
        assert parts["static"] > 0

    def test_static_grows_with_l2(self, result):
        small = split_power(baseline_config().with_overrides(l2_mb=0.25), result)
        large = split_power(baseline_config().with_overrides(l2_mb=4.0), result)
        assert large["static"] > small["static"]

    def test_respects_power_model_scale(self, result):
        parts = split_power(baseline_config(), result, PowerModel(scale=2.0))
        assert parts["static"] == pytest.approx(
            2.0 * split_power(baseline_config(), result)["static"]
        )


class TestOperatingPoint:
    def test_unity_scale_is_identity(self, result):
        point = scale_operating_point(baseline_config(), result, 1.0)
        assert point.bips == pytest.approx(result.bips)
        assert point.watts == pytest.approx(result.watts)

    def test_bips_scales_linearly(self, result):
        point = scale_operating_point(baseline_config(), result, 1.2)
        assert point.bips == pytest.approx(1.2 * result.bips)

    def test_dynamic_power_scales_cubically(self, result):
        base = scale_operating_point(baseline_config(), result, 1.0)
        scaled = scale_operating_point(baseline_config(), result, 1.2)
        assert scaled.dynamic_watts == pytest.approx(1.2**3 * base.dynamic_watts)
        assert scaled.static_watts == pytest.approx(1.2 * base.static_watts)

    def test_rejects_non_positive_scale(self, result):
        with pytest.raises(VoltageError):
            scale_operating_point(baseline_config(), result, 0.0)


class TestInvariance:
    def test_bips3w_far_more_invariant_than_bipsw(self, result):
        study = invariance_study(baseline_config(), result)
        # bips^3/w holds within ~30% across a ±20% voltage swing while
        # bips/w moves by ~75%.  (With our ~30% static-power share the
        # effective power-voltage exponent is ~2.4, so bips^2/w can edge
        # out bips^3/w — the cubic rule assumes dynamic-dominated power.)
        assert study.spreads["bips3_per_watt"] < 1.35
        assert study.spreads["bips_per_watt"] > 1.5
        assert study.spreads["bips3_per_watt"] < study.spreads["bips_per_watt"] - 0.3

    def test_exact_invariance_without_leakage(self, result):
        """With zero static power the metric is exactly invariant."""
        from repro.power import voltage as voltage_module

        parts = split_power(baseline_config(), result)

        class NoLeakagePoint:
            pass

        # construct points manually with static forced to zero
        points = [
            voltage_module.OperatingPoint(
                voltage_scale=k,
                bips=result.bips * k,
                watts=parts["total"] * k**3,
                dynamic_watts=parts["total"] * k**3,
                static_watts=0.0,
            )
            for k in (0.8, 1.0, 1.25)
        ]
        values = [p.bips3_per_watt for p in points]
        assert max(values) == pytest.approx(min(values))

    def test_study_rejects_empty_sweep(self, result):
        with pytest.raises(VoltageError):
            invariance_study(baseline_config(), result, voltage_scales=())

    def test_points_align_with_scales(self, result):
        study = invariance_study(
            baseline_config(), result, voltage_scales=(0.9, 1.1)
        )
        assert [p.voltage_scale for p in study.points] == [0.9, 1.1]
