"""Tests for the Trace container and its validation."""

import numpy as np
import pytest

from repro.workloads import Trace, TraceError, generate_trace, get_profile
from repro.workloads.trace import NO_DATA, NO_FETCH, OP_INT, OP_LOAD


def make_trace(**overrides):
    n = 4
    kwargs = dict(
        name="toy",
        op=np.array([OP_INT, OP_LOAD, OP_INT, OP_INT], dtype=np.uint8),
        src1=np.array([0, 1, 1, 2], dtype=np.int32),
        src2=np.zeros(n, dtype=np.int32),
        mem_block=np.array([-1, 7, -1, -1], dtype=np.int64),
        data_reuse=np.array([NO_DATA, 5, NO_DATA, NO_DATA], dtype=np.int64),
        iblock=np.zeros(n, dtype=np.int32),
        instr_reuse=np.array([3, NO_FETCH, NO_FETCH, NO_FETCH], dtype=np.int64),
        taken=np.zeros(n, dtype=bool),
        branch_site=np.full(n, -1, dtype=np.int32),
    )
    kwargs.update(overrides)
    return Trace(**kwargs)


class TestValidation:
    def test_valid_trace(self):
        assert len(make_trace()) == 4

    def test_rejects_empty(self):
        with pytest.raises(TraceError, match="empty"):
            make_trace(
                op=np.empty(0, dtype=np.uint8),
                src1=np.empty(0, dtype=np.int32),
                src2=np.empty(0, dtype=np.int32),
                mem_block=np.empty(0, dtype=np.int64),
                data_reuse=np.empty(0, dtype=np.int64),
                iblock=np.empty(0, dtype=np.int32),
                instr_reuse=np.empty(0, dtype=np.int64),
                taken=np.empty(0, dtype=bool),
                branch_site=np.empty(0, dtype=np.int32),
            )

    def test_rejects_length_mismatch(self):
        with pytest.raises(TraceError, match="src1"):
            make_trace(src1=np.zeros(3, dtype=np.int32))

    def test_rejects_unknown_op_codes(self):
        with pytest.raises(TraceError, match="op"):
            make_trace(op=np.array([0, 1, 2, 99], dtype=np.uint8))

    def test_rejects_dependence_before_start(self):
        with pytest.raises(TraceError, match="before trace start"):
            make_trace(src1=np.array([1, 0, 0, 0], dtype=np.int32))

    def test_rejects_negative_dependence(self):
        with pytest.raises(TraceError, match="negative"):
            make_trace(src1=np.array([0, -1, 0, 0], dtype=np.int32))

    def test_rejects_memory_op_without_block(self):
        with pytest.raises(TraceError, match="block"):
            make_trace(mem_block=np.array([-1, -1, -1, -1], dtype=np.int64))

    def test_rejects_memory_op_without_reuse(self):
        with pytest.raises(TraceError, match="reuse"):
            make_trace(
                data_reuse=np.array(
                    [NO_DATA, NO_DATA, NO_DATA, NO_DATA], dtype=np.int64
                )
            )

    def test_rejects_reuse_on_non_memory_op(self):
        with pytest.raises(TraceError, match="non-memory"):
            make_trace(
                data_reuse=np.array([4, 5, NO_DATA, NO_DATA], dtype=np.int64)
            )

    def test_rejects_non_positive_ref_instructions(self):
        with pytest.raises(TraceError, match="ref_instructions"):
            make_trace(ref_instructions=0.0)


class TestSummaries:
    def test_mix_fractions(self):
        trace = make_trace()
        mix = trace.mix()
        assert mix["int"] == pytest.approx(0.75)
        assert mix["load"] == pytest.approx(0.25)

    def test_counts(self):
        trace = make_trace()
        assert trace.load_count() == 1
        assert trace.store_count() == 0
        assert trace.branch_count() == 0

    def test_footprints(self):
        trace = make_trace()
        assert trace.data_footprint() == 1
        assert trace.instruction_footprint() == 1

    def test_fetch_events(self):
        assert make_trace().fetch_events() == 1

    def test_taken_rate_no_branches(self):
        assert make_trace().taken_rate() == 0.0

    def test_summary_keys(self):
        summary = generate_trace(get_profile("gzip"), 500, seed=1).summary()
        assert summary["instructions"] == 500
        assert "mix_int" in summary
        assert "taken_rate" in summary
