"""Tests for campaign persistence and caching."""

import json

import numpy as np
import pytest

from repro.harness import (
    ArtifactError,
    cached_campaign,
    get_scale,
    load_campaign,
    run_campaign,
    save_campaign,
)
from repro.harness.artifacts import CACHE_VERSION, _campaign_key, cache_dir
from repro.designspace import sampling_space
from repro.simulator import Simulator


@pytest.fixture(scope="module")
def tiny_scale():
    return get_scale("ci").with_overrides(
        name="artifact-test", trace_length=600, n_train=12, n_validation=4
    )


@pytest.fixture(scope="module")
def campaign(tiny_scale):
    return run_campaign(Simulator(), scale=tiny_scale, benchmarks=["gzip"])


class TestRoundTrip:
    def test_save_load_equality(self, campaign, tiny_scale, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        loaded = load_campaign(path, campaign.space, tiny_scale)
        assert loaded.train_points == campaign.train_points
        assert loaded.validation_points == campaign.validation_points
        for split in ("train", "validation"):
            original = getattr(campaign, split)["gzip"].metrics
            restored = getattr(loaded, split)["gzip"].metrics
            assert np.allclose(original["bips"], restored["bips"])
            assert np.allclose(original["watts"], restored["watts"])

    def test_load_rejects_corrupt_file(self, campaign, tiny_scale, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(ArtifactError):
            load_campaign(path, campaign.space, tiny_scale)

    def test_load_rejects_version_mismatch(self, campaign, tiny_scale, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_VERSION - 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="version"):
            load_campaign(path, campaign.space, tiny_scale)

    def test_load_missing_file(self, campaign, tiny_scale, tmp_path):
        with pytest.raises(ArtifactError):
            load_campaign(tmp_path / "absent.json", campaign.space, tiny_scale)


class TestKeying:
    def test_key_stable(self, tiny_scale):
        space = sampling_space()
        a = _campaign_key(tiny_scale, space, ("gzip",), "stack")
        b = _campaign_key(tiny_scale, space, ("gzip",), "stack")
        assert a == b

    def test_key_changes_with_scale(self, tiny_scale):
        space = sampling_space()
        other = tiny_scale.with_overrides(n_train=13)
        assert _campaign_key(tiny_scale, space, ("gzip",), "stack") != _campaign_key(
            other, space, ("gzip",), "stack"
        )

    def test_key_changes_with_benchmarks(self, tiny_scale):
        space = sampling_space()
        assert _campaign_key(tiny_scale, space, ("gzip",), "stack") != _campaign_key(
            tiny_scale, space, ("gzip", "mcf"), "stack"
        )

    def test_key_changes_with_memory_mode(self, tiny_scale):
        space = sampling_space()
        assert _campaign_key(tiny_scale, space, ("gzip",), "stack") != _campaign_key(
            tiny_scale, space, ("gzip",), "functional"
        )


class TestCachedCampaign:
    def test_second_call_skips_simulation(self, tiny_scale):
        scale = tiny_scale.with_overrides(name="cache-test", n_train=10)

        first = cached_campaign(Simulator(), scale=scale, benchmarks=["gzip"])
        # a simulator that would explode if actually used
        class ExplodingSimulator(Simulator):
            def simulate(self, *args, **kwargs):
                raise AssertionError("cache miss: simulation re-ran")

        second = cached_campaign(
            ExplodingSimulator(), scale=scale, benchmarks=["gzip"]
        )
        assert second.train_points == first.train_points

    def test_refresh_forces_rerun(self, tiny_scale):
        scale = tiny_scale.with_overrides(name="refresh-test", n_train=8)
        cached_campaign(Simulator(), scale=scale, benchmarks=["gzip"])
        fresh = cached_campaign(
            Simulator(), scale=scale, benchmarks=["gzip"], refresh=True
        )
        assert len(fresh.train_points) == 8

    def test_cache_file_created(self, tiny_scale):
        scale = tiny_scale.with_overrides(name="file-test", n_train=6)
        cached_campaign(Simulator(), scale=scale, benchmarks=["gzip"])
        files = list(cache_dir().glob("campaign-file-test-*.json"))
        assert files

    def test_corrupt_cache_regenerates(self, tiny_scale):
        scale = tiny_scale.with_overrides(name="corrupt-test", n_train=6)
        cached_campaign(Simulator(), scale=scale, benchmarks=["gzip"])
        for path in cache_dir().glob("campaign-corrupt-test-*.json"):
            path.write_text("garbage")
        campaign = cached_campaign(Simulator(), scale=scale, benchmarks=["gzip"])
        assert len(campaign.train_points) == 6

    def test_corrupt_cache_quarantined_with_warning(self, tiny_scale, caplog):
        scale = tiny_scale.with_overrides(name="quarantine-test", n_train=6)
        cached_campaign(Simulator(), scale=scale, benchmarks=["gzip"])
        (path,) = cache_dir().glob("campaign-quarantine-test-*.json")
        original = path.read_text()
        path.write_text(original[: len(original) // 2])  # truncated write

        with caplog.at_level("WARNING"):
            campaign = cached_campaign(
                Simulator(), scale=scale, benchmarks=["gzip"]
            )
        assert len(campaign.train_points) == 6
        quarantined = list(
            cache_dir().glob("campaign-quarantine-test-*.json.corrupt")
        )
        assert quarantined, "bad artifact was not quarantined"
        assert any("quarantined" in r.message for r in caplog.records)
        # the regenerated artifact is valid again
        assert path.exists()
        load_campaign(path, sampling_space(), scale)


class TestMalformedPayloads:
    def _write(self, tmp_path, mutate, campaign):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        payload = json.loads(path.read_text())
        mutate(payload)
        path.write_text(json.dumps(payload))
        return path

    def test_missing_train_points_key(self, campaign, tiny_scale, tmp_path):
        path = self._write(
            tmp_path, lambda p: p.pop("train_points"), campaign
        )
        with pytest.raises(ArtifactError, match="train_points"):
            load_campaign(path, campaign.space, tiny_scale)

    def test_missing_metrics_key(self, campaign, tiny_scale, tmp_path):
        path = self._write(tmp_path, lambda p: p.pop("metrics"), campaign)
        with pytest.raises(ArtifactError, match="metrics"):
            load_campaign(path, campaign.space, tiny_scale)

    def test_missing_benchmark_in_metrics(self, campaign, tiny_scale, tmp_path):
        path = self._write(
            tmp_path,
            lambda p: p["metrics"]["train"].pop("gzip"),
            campaign,
        )
        with pytest.raises(ArtifactError, match="gzip"):
            load_campaign(path, campaign.space, tiny_scale)

    def test_metrics_wrong_type(self, campaign, tiny_scale, tmp_path):
        # a scalar where the split table should be: TypeError territory
        def mutate(p):
            p["metrics"]["train"] = 42

        path = self._write(tmp_path, mutate, campaign)
        with pytest.raises(ArtifactError, match="malformed"):
            load_campaign(path, campaign.space, tiny_scale)

    def test_non_numeric_metric_column(self, campaign, tiny_scale, tmp_path):
        def mutate(p):
            p["metrics"]["train"]["gzip"]["bips"] = ["not", "numbers"]

        path = self._write(tmp_path, mutate, campaign)
        with pytest.raises(ArtifactError, match="bips"):
            load_campaign(path, campaign.space, tiny_scale)

    def test_truncated_metric_column(self, campaign, tiny_scale, tmp_path):
        def mutate(p):
            p["metrics"]["train"]["gzip"]["watts"] = p["metrics"]["train"][
                "gzip"
            ]["watts"][:-1]

        path = self._write(tmp_path, mutate, campaign)
        with pytest.raises(ArtifactError, match="watts"):
            load_campaign(path, campaign.space, tiny_scale)

    def test_non_object_payload(self, campaign, tiny_scale, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ArtifactError, match="JSON object"):
            load_campaign(path, campaign.space, tiny_scale)


class TestCrashSafeSave:
    def test_interrupted_save_preserves_existing_artifact(
        self, campaign, tiny_scale, tmp_path, monkeypatch
    ):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        good = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(
            "repro.harness.artifacts.os.replace", exploding_replace
        )
        with pytest.raises(OSError):
            save_campaign(campaign, path)
        monkeypatch.undo()

        # the existing artifact is untouched and no temp litter remains
        assert path.read_text() == good
        assert list(tmp_path.glob("*.tmp")) == []
        load_campaign(path, campaign.space, tiny_scale)
