"""Tests for model terms and design-matrix assembly."""

import numpy as np
import pytest

from repro.regression import (
    InteractionTerm,
    LinearTerm,
    SplineTerm,
    TermError,
    bind_terms,
    design_matrix,
)


@pytest.fixture
def data():
    rng = np.random.default_rng(1)
    return {
        "depth": rng.choice([12.0, 15.0, 18.0, 21.0, 24.0, 27.0, 30.0], 200),
        "width": rng.choice([1.0, 2.0, 3.0], 200),  # log2-encoded 2/4/8
        "l2": rng.choice([-2.0, -1.0, 0.0, 1.0, 2.0], 200),
    }


class TestLinearTerm:
    def test_single_column(self, data):
        bound = LinearTerm("depth").bind(data)
        columns = bound.design_columns(data)
        assert columns.shape == (200, 1)
        assert (columns[:, 0] == data["depth"]).all()

    def test_column_name(self, data):
        assert LinearTerm("depth").bind(data).column_names == ("depth",)

    def test_missing_predictor(self, data):
        with pytest.raises(TermError, match="available"):
            LinearTerm("bogus").bind(data)

    def test_predictors_property(self):
        assert LinearTerm("depth").predictors == ("depth",)


class TestSplineTerm:
    def test_four_knot_columns(self, data):
        bound = SplineTerm("depth", knots=4).bind(data)
        assert bound.design_columns(data).shape == (200, 3)
        assert bound.column_names == ("depth", "depth'", "depth''")

    def test_binding_freezes_knots(self, data):
        bound = SplineTerm("depth", knots=4).bind(data)
        other = {k: v[:10] for k, v in data.items()}
        first = bound.design_columns(other)
        again = bound.design_columns(other)
        assert (first == again).all()

    def test_falls_back_to_linear_on_constant(self, data):
        constant = dict(data, depth=np.full(200, 18.0))
        bound = SplineTerm("depth", knots=4).bind(constant)
        assert bound.column_names == ("depth",)

    def test_three_level_predictor_gets_spline(self, data):
        bound = SplineTerm("width", knots=3).bind(data)
        assert len(bound.column_names) == 2

    def test_rejects_too_few_knots(self):
        with pytest.raises(TermError):
            SplineTerm("depth", knots=2)


class TestInteractionTerm:
    def test_linear_product(self, data):
        bound = InteractionTerm("depth", "l2").bind(data)
        columns = bound.design_columns(data)
        assert columns.shape == (200, 1)
        assert columns[:, 0] == pytest.approx(data["depth"] * data["l2"])

    def test_column_name(self, data):
        assert InteractionTerm("depth", "l2").bind(data).column_names == ("depth*l2",)

    def test_spline_interaction_columns(self, data):
        bound = InteractionTerm("depth", "l2", order="spline", knots=3).bind(data)
        columns = bound.design_columns(data)
        assert columns.shape[1] == 2  # rcs(depth,3) x l2
        assert bound.column_names == ("depth*l2", "depth'*l2")

    def test_spline_interaction_falls_back(self, data):
        constant = dict(data, depth=np.full(200, 18.0))
        bound = InteractionTerm("depth", "l2", order="spline").bind(constant)
        assert bound.column_names == ("depth*l2",)

    def test_rejects_self_interaction(self):
        with pytest.raises(TermError):
            InteractionTerm("depth", "depth")

    def test_rejects_unknown_order(self):
        with pytest.raises(TermError):
            InteractionTerm("depth", "l2", order="cubic")

    def test_predictors_property(self):
        assert InteractionTerm("a", "b").predictors == ("a", "b")


class TestAssembly:
    def test_bind_terms_names(self, data):
        bound, names = bind_terms(
            [SplineTerm("depth", knots=3), LinearTerm("l2")], data
        )
        assert names == ("depth", "depth'", "l2")

    def test_duplicate_columns_rejected(self, data):
        with pytest.raises(TermError, match="duplicate"):
            bind_terms([LinearTerm("depth"), LinearTerm("depth")], data)

    def test_design_matrix_has_intercept(self, data):
        bound, _ = bind_terms([LinearTerm("depth")], data)
        matrix = design_matrix(bound, data)
        assert matrix.shape == (200, 2)
        assert (matrix[:, 0] == 1.0).all()

    def test_design_matrix_needs_terms(self, data):
        with pytest.raises(TermError):
            design_matrix([], data)
