"""Tests for the FO4 depth / frequency / stage-count model."""

import pytest
from hypothesis import given, strategies as st

from repro.simulator import frequency
from repro.simulator.frequency import FrequencyError


class TestClock:
    def test_cycle_time_linear_in_fo4(self):
        assert frequency.cycle_time_ps(12) == pytest.approx(480.0)
        assert frequency.cycle_time_ps(30) == pytest.approx(1200.0)

    def test_baseline_is_power4_class(self):
        # 19 FO4 at 40 ps/FO4 -> ~1.3 GHz, the POWER4 neighbourhood
        assert frequency.frequency_ghz(19) == pytest.approx(1.32, abs=0.02)

    def test_deeper_pipeline_is_faster(self):
        assert frequency.frequency_ghz(12) > frequency.frequency_ghz(30)

    def test_rejects_depth_at_or_below_overhead(self):
        with pytest.raises(FrequencyError):
            frequency.cycle_time_ps(3.0)
        with pytest.raises(FrequencyError):
            frequency.frequency_ghz(2.0)


class TestStages:
    def test_frontend_stage_counts(self):
        # 120 FO4 of logic over (depth - 3) usable FO4 per stage
        assert frequency.frontend_stages(12) == 14
        assert frequency.frontend_stages(30) == 5

    def test_total_stages(self):
        assert frequency.total_stages(12) == 27
        assert frequency.total_stages(30) == 9

    def test_deeper_means_more_stages(self):
        depths = (12, 15, 18, 21, 24, 27, 30)
        stages = [frequency.total_stages(d) for d in depths]
        assert stages == sorted(stages, reverse=True)

    def test_at_least_one_stage(self):
        assert frequency.stages_for_logic(1.0, 36) == 1

    @given(st.floats(5, 36), st.floats(1, 500))
    def test_stage_count_covers_logic(self, depth, logic):
        stages = frequency.stages_for_logic(logic, depth)
        usable = depth - frequency.LATCH_OVERHEAD_FO4
        assert stages * usable >= logic - 1e-9


class TestLatencies:
    def test_latency_cycles_quantizes_up(self):
        assert frequency.latency_cycles(125, 30) == 5
        assert frequency.latency_cycles(125, 12) == 11

    def test_latency_minimum(self):
        assert frequency.latency_cycles(1, 30) == 1
        assert frequency.latency_cycles(1, 30, minimum=2) == 2

    def test_ns_to_cycles_scales_with_frequency(self):
        at_12 = frequency.ns_to_cycles(60.0, 12)
        at_30 = frequency.ns_to_cycles(60.0, 30)
        assert at_12 > at_30
        assert at_12 == 125  # 60ns / 0.48ns
        assert at_30 == 50

    @given(st.floats(5, 36), st.floats(0.1, 100))
    def test_ns_to_cycles_covers_latency(self, depth, ns):
        cycles = frequency.ns_to_cycles(ns, depth)
        period_ns = frequency.cycle_time_ps(depth) / 1000.0
        assert cycles * period_ns >= ns - 1e-9
