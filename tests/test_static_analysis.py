"""The static-analysis gate: ``src/`` must stay clean.

This is the enforcement point wired into CI: every rule runs over the
whole ``src/`` tree and any non-baselined finding fails the build.  New
violations must either be fixed or explicitly justified with a reason
string in ``analysis-baseline.json``.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths, render_text

REPO = Path(__file__).resolve().parents[1]
BASELINE = REPO / "analysis-baseline.json"


def _run():
    return analyze_paths(
        [REPO / "src"], root=REPO, baseline=Baseline.load(BASELINE)
    )


def test_src_tree_has_no_findings():
    report = _run()
    assert report.findings == [], "\n" + render_text(report)


def test_baseline_has_no_stale_entries():
    report = _run()
    stale = [f"{e.rule} {e.path}" for e in report.stale_baseline]
    assert stale == [], f"stale baseline entries: {stale}"


def test_baseline_entries_all_carry_reasons():
    baseline = Baseline.load(BASELINE)
    for entry in baseline.entries:
        assert entry.reason and "TODO" not in entry.reason, (
            f"baseline entry {entry.rule} at {entry.path} needs a real "
            "reason string"
        )


def test_gate_catches_an_injected_violation(tmp_path):
    """End-to-end: a fresh violation in a src-like tree fails the gate."""
    bad = tmp_path / "src" / "repro" / "metrics" / "sneaky.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""Doc."""\n\nimport numpy as np\n\nnp.random.seed(0)\n')
    report = analyze_paths([tmp_path / "src"], root=tmp_path)
    assert [f.rule for f in report.findings] == ["DET001"]
    assert report.exit_code() == 1
