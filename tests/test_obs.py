"""Tests for repro.obs: tracing, metrics, profiling, and summaries.

The observability layer's contracts: spans round-trip through the
checksummed JSONL sink, the metrics registry snapshots/deltas/merges
without double counting (including across the resilience executor's
retries and journal resumes), and the renderers stay dependency-free.
"""

import json

import pytest

from repro.harness.resilience import (
    ChunkFailure,
    ChunkTask,
    Fault,
    FaultPlan,
    Journal,
    RetryPolicy,
    run_chunks,
)
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
    Stopwatch,
    TraceError,
    TraceSink,
    Tracer,
    build_span_tree,
    configure_tracing,
    disable_tracing,
    get_registry,
    get_tracer,
    isolated_registry,
    merge_snapshots,
    profile,
    read_trace,
    render_metrics,
    render_summary,
    render_tree,
    reset_registry,
    summarize_spans,
    traced,
    validate_record,
)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Each test gets a fresh registry and no trace sink."""
    reset_registry()
    disable_tracing()
    yield
    reset_registry()
    disable_tracing()


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        registry.increment("work.units", 3)
        registry.increment("work.units")
        assert registry.counter("work.units").value == 4
        with pytest.raises(MetricsError):
            registry.increment("work.units", -1)

    def test_labels_serialize_sorted_into_the_key(self):
        registry = MetricsRegistry()
        registry.increment("points", 2, split="train", benchmark="gzip")
        snap = registry.snapshot()
        assert snap["counters"] == {"points{benchmark=gzip,split=train}": 2}

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")
        with pytest.raises(MetricsError):
            registry.histogram("x")

    def test_histogram_le_bucket_semantics_and_overflow(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)  # equal to a bound -> that bound's bucket
        hist.observe(1.5)
        hist.observe(2.0)
        hist.observe(99.0)  # overflow
        assert hist.counts == [1, 2, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(103.5)
        assert hist.mean == pytest.approx(103.5 / 4)

    def test_histogram_rejects_non_increasing_bounds(self):
        with pytest.raises(MetricsError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(MetricsError):
            Histogram(buckets=())

    def test_histogram_bucket_mismatch_on_reuse(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricsError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_delta_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.increment("a", 5)
        registry.observe("h", 0.5)
        mark = registry.snapshot()
        registry.increment("a", 2)
        registry.increment("b")
        registry.observe("h", 0.7)
        registry.set_gauge("level", 4)
        delta = registry.delta(mark)
        assert delta["counters"] == {"a": 2, "b": 1}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == pytest.approx(0.7)
        assert delta["gauges"] == {"level": 4}

    def test_merge_adds_counters_and_maxes_gauges(self):
        one = MetricsRegistry()
        one.increment("n", 2)
        one.set_gauge("depth", 3)
        one.observe("h", 0.2)
        two = MetricsRegistry()
        two.increment("n", 5)
        two.set_gauge("depth", 1)
        two.observe("h", 0.4)
        merged = merge_snapshots(one.snapshot(), None, two.snapshot(), {})
        assert merged["counters"] == {"n": 7}
        assert merged["gauges"] == {"depth": 3}
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["sum"] == pytest.approx(0.6)

    def test_merge_order_does_not_matter(self):
        one = MetricsRegistry()
        one.increment("n", 2)
        one.set_gauge("g", 9)
        two = MetricsRegistry()
        two.increment("n", 3)
        two.set_gauge("g", 1)
        a, b = one.snapshot(), two.snapshot()
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_merge_rejects_mismatched_buckets(self):
        one = MetricsRegistry()
        one.histogram("h", buckets=(1.0,)).observe(0.5)
        two = MetricsRegistry()
        two.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(MetricsError):
            merge_snapshots(one.snapshot(), two.snapshot())

    def test_isolated_registry_swaps_and_restores(self):
        get_registry().increment("outer")
        with isolated_registry() as inner:
            get_registry().increment("inner")
            assert get_registry() is inner
            assert inner.snapshot()["counters"] == {"inner": 1}
        assert get_registry().snapshot()["counters"] == {"outer": 1}

    def test_default_buckets_strictly_increase(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


# -- tracing -----------------------------------------------------------------


class TestTracing:
    def test_round_trip_with_nesting_and_attrs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceSink(path))
        with tracer.span("outer", benchmark="gzip") as outer:
            with tracer.span("inner") as inner:
                inner.set_attr("points", 10)
            tracer.event("milestone", step=1)
        assert outer.wall_s >= inner.wall_s >= 0
        tracer.set_sink(None)

        records = read_trace(path, strict=True)
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["attrs"] == {"points": 10}
        assert by_name["outer"]["attrs"] == {"benchmark": "gzip"}
        assert by_name["milestone"]["kind"] == "event"
        assert by_name["milestone"]["parent"] == by_name["outer"]["id"]

    def test_error_status_recorded_on_raise(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceSink(path))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        tracer.set_sink(None)
        (record,) = read_trace(path, strict=True)
        assert record["status"] == "error"

    def test_measures_without_a_sink(self):
        tracer = Tracer()
        with tracer.span("unsunk") as span:
            pass
        assert span.wall_s >= 0
        assert not tracer.active

    def test_record_span_replays_worker_timings(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceSink(path))
        with tracer.span("driver"):
            tracer.record_span("worker.chunk", 1.5, cpu_s=1.2, chunk=3)
        tracer.set_sink(None)
        records = read_trace(path, strict=True)
        by_name = {r["name"]: r for r in records}
        worker = by_name["worker.chunk"]
        assert worker["wall_s"] == pytest.approx(1.5)
        assert worker["cpu_s"] == pytest.approx(1.2)
        assert worker["parent"] == by_name["driver"]["id"]
        assert worker["attrs"] == {"chunk": 3}

    def test_traced_decorator_and_module_configure(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(path)

        @traced(name="op.compute", tagged=True)
        def compute(x):
            return x * 2

        assert compute(21) == 42
        disable_tracing()
        (record,) = read_trace(path, strict=True)
        assert record["name"] == "op.compute"
        assert record["attrs"] == {"tagged": True}

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceSink(path))
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.set_sink(None)
        whole = path.read_bytes()
        path.write_bytes(whole[:-20])  # tear the last record mid-line
        # A torn tail is a normal crash artifact: tolerated even under
        # strict validation; everything before it is intact.
        assert [r["name"] for r in read_trace(path)] == ["a"]
        assert [r["name"] for r in read_trace(path, strict=True)] == ["a"]
        # But a torn line *followed by* more records is real corruption.
        with open(path, "ab") as handle:
            handle.write(b"\n")
        with pytest.raises(TraceError):
            read_trace(path, strict=True)

    def test_checksum_corruption_skipped_tolerantly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceSink(path))
        with tracer.span("keep"):
            pass
        with tracer.span("damage"):
            pass
        tracer.set_sink(None)
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"ok"', '"OK"')  # body no longer matches sha
        path.write_text("\n".join(lines) + "\n")
        records = read_trace(path)
        assert [r["name"] for r in records] == ["keep"]
        with pytest.raises(TraceError):
            read_trace(path, strict=True)

    def test_validate_record_rejects_bad_schema(self):
        with pytest.raises(TraceError):
            validate_record({"kind": "span", "name": "x"})  # missing fields
        with pytest.raises(TraceError):
            validate_record({"kind": "nonsense"})

    def test_sink_write_after_close_raises(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(TraceError):
            sink.write({"kind": "event", "name": "x", "id": "s1",
                        "parent": None, "t": 0.0, "attrs": {}})

    def test_span_tree_rebuild_and_self_time(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceSink(path))
        with tracer.span("root"):
            with tracer.span("child.slow"):
                pass
            with tracer.span("child.fast"):
                pass
        tracer.set_sink(None)
        (root,) = build_span_tree(read_trace(path, strict=True))
        assert root.name == "root"
        assert sorted(c.name for c in root.children) == [
            "child.fast", "child.slow",
        ]
        child_wall = sum(c.wall_s for c in root.children)
        assert root.self_wall_s() == pytest.approx(
            max(0.0, root.wall_s - child_wall)
        )

    def test_stopwatch_measures_both_clocks(self):
        with Stopwatch() as watch:
            sum(range(1000))
        assert watch.wall_s >= 0
        assert watch.cpu_s >= 0


# -- summaries ---------------------------------------------------------------


def _span(name, wall, cpu=0.0, sid="s1", parent=None):
    return {
        "kind": "span", "name": name, "id": sid, "parent": parent,
        "t0": 0.0, "wall_s": wall, "cpu_s": cpu, "status": "ok", "attrs": {},
    }


class TestSummaries:
    def test_p95_is_nearest_rank(self):
        records = [
            _span("op", wall, sid=f"s{i}")
            for i, wall in enumerate([float(w) for w in range(1, 101)])
        ]
        (stats,) = summarize_spans(records)
        assert stats.count == 100
        assert stats.p95_wall_s == 95.0
        assert stats.mean_wall_s == pytest.approx(50.5)

    def test_render_summary_orders_by_total_wall(self):
        records = [
            _span("slow", 2.0, sid="s1"),
            _span("fast", 0.5, sid="s2"),
        ]
        text = render_summary(records)
        assert text.index("slow") < text.index("fast")
        assert "2 spans, 0 events" in text

    def test_render_tree_marks_errors_and_elides(self):
        records = [_span("root", 10.0, sid="s0")]
        for i in range(8):
            records.append(_span(f"child{i}", 1.0, sid=f"s{i + 1}", parent="s0"))
        records[1]["status"] = "error"
        text = render_tree(records, max_children=6)
        assert "root" in text
        assert "[error]" in text
        assert "… 2 more" in text

    def test_render_metrics_handles_empty(self):
        assert "no metrics" in render_metrics(None)
        assert "no metrics" in render_metrics({})
        registry = MetricsRegistry()
        registry.increment("n", 3)
        registry.observe("h", 0.5)
        text = render_metrics(registry.snapshot())
        assert "n" in text and "h" in text


# -- profiling ---------------------------------------------------------------


class TestProfiling:
    def test_profile_attaches_stats_to_a_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(path)
        with profile("hotspot", top=5) as handle:
            sum(i * i for i in range(10000))
        disable_tracing()
        assert handle.report
        assert handle.top_functions(3)
        (record,) = read_trace(path, strict=True)
        assert record["name"] == "profile.hotspot"
        assert "profile" in record["attrs"]


# -- resilience integration --------------------------------------------------


def _counting_chunk(values):
    """Picklable workload that records into the (isolated) registry."""
    registry = get_registry()
    registry.increment("test.units", len(values))
    registry.observe("test.chunk.seconds", 0.01)
    return [v * 2 for v in values]


def _counting_tasks(n_chunks=4, chunk_len=3):
    return [
        ChunkTask(
            index=i,
            fn=_counting_chunk,
            args=([i * 10 + j for j in range(chunk_len)],),
            size=chunk_len,
            meta=("chunk", i),
        )
        for i in range(n_chunks)
    ]


class TestResilienceMetrics:
    def test_chunk_metrics_merge_into_report_not_driver(self):
        tasks = _counting_tasks(n_chunks=4, chunk_len=3)
        _, report = run_chunks(tasks)
        assert report.metrics["counters"]["test.units"] == 12
        assert report.metrics["histograms"]["test.chunk.seconds"]["count"] == 4
        # The driver registry stays clean: chunk metrics exist only in
        # the report (no double counting when the CLI merges both).
        assert "test.units" not in get_registry().snapshot()["counters"]

    def test_parallel_metrics_match_serial(self):
        tasks = _counting_tasks(n_chunks=6)
        _, serial = run_chunks(tasks)
        _, parallel = run_chunks(tasks, workers=2)
        assert parallel.metrics["counters"] == serial.metrics["counters"]

    def test_retried_attempt_metrics_counted_once(self):
        tasks = _counting_tasks(n_chunks=4, chunk_len=3)
        faults = FaultPlan([Fault(chunk=2, kind="corrupt", attempts=(1,))])

        def validate(task, payload):
            from repro.harness.resilience import CorruptResultError

            if len(payload) != task.size:
                raise CorruptResultError("truncated")

        _, report = run_chunks(tasks, faults=faults, validate=validate)
        assert report.retried == 1
        assert report.metrics["counters"]["test.units"] == 12

    def test_journal_resume_restores_metrics_exactly_once(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        tasks = _counting_tasks(n_chunks=5, chunk_len=3)
        faults = FaultPlan([Fault(chunk=3, kind="permanent")])
        with pytest.raises(ChunkFailure):
            run_chunks(
                tasks,
                journal=Journal.open(path, "fp"),
                faults=faults,
                policy=RetryPolicy(max_attempts=1),
            )
        _, report = run_chunks(tasks, journal=Journal.open(path, "fp"))
        assert report.resumed == 3
        assert report.metrics["counters"]["test.units"] == 15
        assert (
            report.metrics["histograms"]["test.chunk.seconds"]["count"] == 5
        )

    def test_journal_round_trips_metrics(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal.open(path, "fp")
        snap = {"version": 1, "counters": {"n": 2}, "gauges": {},
                "histograms": {}}
        journal.record(0, attempts=1, payload=[1], metrics=snap)
        journal.record(1, attempts=1, payload=[2])  # no metrics: omitted
        reopened = Journal.open(path, "fp")
        assert reopened.metrics == {0: snap}
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        chunk_bodies = [e["body"] for e in lines if e["body"].get("index") == 1]
        assert all("metrics" not in b for b in chunk_bodies)

    def test_sweep_report_carries_metrics(self, ctx):
        from repro.harness.sweep import (
            ParetoFrontierReducer,
            PointSweepSource,
            run_sweep,
        )

        points = ctx.exploration_points()[:200]
        source = PointSweepSource(ctx.exploration_space, points)
        report = run_sweep(
            ctx.predictor("gzip"), source, [ParetoFrontierReducer(bins=50)],
            block_size=64,
        )
        counters = report.metrics["counters"]
        assert counters["sweep.points"] == len(points)
        assert counters["sweep.blocks"] == -(-len(points) // 64)
        hist = report.metrics["histograms"]["sweep.predict_block.seconds"]
        assert hist["count"] == counters["sweep.blocks"]

    def test_overhead_within_budget_on_full_space(self, ctx, tmp_path):
        """Acceptance guard: tracing adds <= 10% to a full-space sweep.

        Best-of-3 per mode over the complete 262,500-point exploration
        space keeps the comparison robust to scheduler noise: the best
        time is what the machine can do, anything above it is interference.
        """
        import time as _time

        from repro.designspace import exploration_space
        from repro.harness.sweep import (
            ParetoFrontierReducer,
            SpaceSweepSource,
            run_sweep,
        )

        predictor = ctx.predictor("gzip")
        source = SpaceSweepSource(exploration_space())
        assert len(source) == 262_500

        def best_of(n, traced):
            times = []
            for i in range(n):
                if traced:
                    configure_tracing(tmp_path / f"overhead-{i}.jsonl")
                t0 = _time.perf_counter()
                run_sweep(
                    predictor, source, [ParetoFrontierReducer(bins=50)],
                    block_size=8192,
                )
                times.append(_time.perf_counter() - t0)
                if traced:
                    disable_tracing()
            return min(times)

        plain = best_of(3, traced=False)
        traced_time = best_of(3, traced=True)
        assert traced_time <= plain * 1.10, (
            f"tracing overhead {traced_time / plain - 1:.1%} exceeds 10% "
            f"(plain {plain:.3f}s, traced {traced_time:.3f}s)"
        )

    def test_resilience_run_span_written_when_tracing(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        configure_tracing(trace_path)
        run_chunks(_counting_tasks(n_chunks=3))
        disable_tracing()
        records = read_trace(trace_path, strict=True)
        names = [r["name"] for r in records]
        assert names.count("resilience.chunk") == 3
        run_span = next(r for r in records if r["name"] == "resilience.run")
        assert run_span["attrs"]["completed"] == 3
        chunk = next(r for r in records if r["name"] == "resilience.chunk")
        assert chunk["parent"] == run_span["id"]
