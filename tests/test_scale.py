"""Tests for scale presets."""

import pytest

from repro.harness import PRESETS, ScaleError, get_scale


class TestPresets:
    def test_three_presets(self):
        assert set(PRESETS) == {"ci", "default", "paper"}

    def test_paper_scale_matches_paper_counts(self):
        paper = PRESETS["paper"]
        assert paper.n_train == 1000      # Section 2.3
        assert paper.n_validation == 100  # Figure 1
        assert paper.exploration_limit is None  # exhaustive

    def test_ci_smaller_than_default(self):
        ci, default = PRESETS["ci"], PRESETS["default"]
        assert ci.n_train < default.n_train
        assert ci.trace_length < default.trace_length

    def test_get_scale_by_name(self):
        assert get_scale("ci").name == "ci"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert get_scale().name == "ci"

    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "default"

    def test_unknown_preset(self):
        with pytest.raises(ScaleError):
            get_scale("galactic")

    def test_with_overrides(self):
        scale = get_scale("ci").with_overrides(n_train=3)
        assert scale.n_train == 3
        assert scale.trace_length == PRESETS["ci"].trace_length

    def test_rejects_non_positive_knobs(self):
        with pytest.raises(ScaleError):
            get_scale("ci").with_overrides(n_train=0)

    def test_rejects_bad_exploration_limit(self):
        with pytest.raises(ScaleError):
            get_scale("ci").with_overrides(exploration_limit=0)

    def test_none_exploration_limit_allowed(self):
        scale = get_scale("ci").with_overrides(exploration_limit=None)
        assert scale.exploration_limit is None
