"""Tests for report generation."""

import pytest

from repro.harness.report import generate_report, write_report


class TestGenerateReport:
    def test_restricted_ids(self, ctx):
        text = generate_report(ctx, experiment_ids=["T1", "T3"])
        assert "## T1" in text
        assert "## T3" in text
        assert "## F1" not in text

    def test_header_mentions_scale_and_benchmarks(self, ctx):
        text = generate_report(ctx, experiment_ids=["T1"])
        assert f"`{ctx.scale.name}`" in text
        assert "ammp" in text

    def test_unknown_id_rejected(self, ctx):
        with pytest.raises(KeyError):
            generate_report(ctx, experiment_ids=["F99"])

    def test_custom_title(self, ctx):
        text = generate_report(ctx, experiment_ids=["T1"], title="My Report")
        assert text.startswith("# My Report")


class TestWriteReport:
    def test_writes_file(self, ctx, tmp_path):
        path = write_report(ctx, tmp_path / "sub" / "report.md", ["T1"])
        assert path.exists()
        assert "## T1" in path.read_text()


class TestCliReport:
    def test_report_command(self, ctx, tmp_path, capsys, monkeypatch):
        import repro.experiments as experiments
        from repro.cli import main

        monkeypatch.setattr(experiments, "_CONTEXTS", {ctx.scale.name: ctx})
        monkeypatch.setattr("repro.cli.get_scale", lambda name=None: ctx.scale)
        output = tmp_path / "r.md"
        assert main(["report", "--output", str(output), "--only", "T1"]) == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out

    def test_report_command_bad_id(self, ctx, tmp_path, capsys, monkeypatch):
        import repro.experiments as experiments
        from repro.cli import main

        monkeypatch.setattr(experiments, "_CONTEXTS", {ctx.scale.name: ctx})
        monkeypatch.setattr("repro.cli.get_scale", lambda name=None: ctx.scale)
        assert main(
            ["report", "--output", str(tmp_path / "r.md"), "--only", "NOPE"]
        ) == 2
