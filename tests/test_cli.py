"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main
import repro.experiments as experiments


def _triple_chunk(values):
    """Picklable chunk function for the workers-subcommand tests."""
    return [v * 3 for v in values]


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F9b" in out and "X3" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "375,000" in out
        assert "262,500" in out

    def test_unknown_experiment_id(self, capsys):
        assert main(["run", "F99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_scale_choices_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "T1", "--scale", "galactic"])


class TestRun:
    def test_run_t1_with_shared_context(self, ctx, capsys, monkeypatch):
        # reuse the session context instead of building a 'ci' one
        monkeypatch.setattr(experiments, "_CONTEXTS", {ctx.scale.name: ctx})
        monkeypatch.setenv("REPRO_SCALE", "ci")
        monkeypatch.setattr(
            "repro.cli.get_scale", lambda name=None: ctx.scale
        )
        assert main(["run", "T1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "375,000" in out

    def test_run_multiple_ids(self, ctx, capsys, monkeypatch):
        monkeypatch.setattr(experiments, "_CONTEXTS", {ctx.scale.name: ctx})
        monkeypatch.setattr(
            "repro.cli.get_scale", lambda name=None: ctx.scale
        )
        assert main(["run", "T1", "T3"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "T3" in out


class TestResilienceFlags:
    def test_run_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["run", "T1", "--resume", "--retries", "5",
             "--chunk-timeout", "2.5"]
        )
        assert args.resume is True
        assert args.retries == 5
        assert args.chunk_timeout == 2.5

    def test_sweep_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(["sweep", "--resume"])
        assert args.resume is True
        assert args.retries is None and args.chunk_timeout is None

    def test_no_flags_means_no_config(self):
        from repro.cli import _resilience_from_args

        args = build_parser().parse_args(["run", "T1"])
        assert _resilience_from_args(args) is None

    def test_flags_build_policy(self):
        from repro.cli import _resilience_from_args

        args = build_parser().parse_args(
            ["run", "T1", "--retries", "7", "--chunk-timeout", "1.5"]
        )
        config = _resilience_from_args(args)
        assert config.policy.max_attempts == 7
        assert config.policy.chunk_timeout == 1.5
        assert config.resume is False


class TestDistributedFlags:
    def test_parsers_accept_backend_and_run_dir(self):
        args = build_parser().parse_args(
            ["run", "F1", "--backend", "distributed",
             "--run-dir", "/tmp/coord", "--workers", "3"]
        )
        assert args.backend == "distributed"
        assert args.run_dir == "/tmp/coord"
        args = build_parser().parse_args(
            ["sweep", "--backend", "distributed"]
        )
        assert args.backend == "distributed"

    def test_backend_flag_builds_distributed_config(self):
        from repro.cli import _resilience_from_args

        args = build_parser().parse_args(
            ["run", "F1", "--backend", "distributed",
             "--run-dir", "/tmp/coord", "--workers", "3"]
        )
        config = _resilience_from_args(args)
        assert config.backend == "distributed"
        assert config.distributed.spawn == 3
        assert config.distributed.run_dir == Path("/tmp/coord")

    def test_default_backend_keeps_pool(self):
        from repro.cli import _resilience_from_args

        args = build_parser().parse_args(["run", "F1", "--retries", "2"])
        config = _resilience_from_args(args)
        assert config.backend == "pool"
        assert config.distributed is None

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "F1", "--backend", "carrier-pigeon"]
            )


class TestWorkersCommands:
    def _init_run(self, tmp_path):
        from repro.harness.distributed import WorkBundle, init_run_dir
        from repro.harness.resilience import (
            ChunkTask,
            DistributedConfig,
            fingerprint_payload,
        )

        run_dir = tmp_path / "coord"
        tasks = tuple(
            ChunkTask(
                index=i, fn=_triple_chunk, args=([i, i + 1],), size=2
            )
            for i in range(3)
        )
        fingerprint = fingerprint_payload({"kind": "cli-workers-test"})
        init_run_dir(
            run_dir,
            WorkBundle(fingerprint=fingerprint, tasks=tasks),
            DistributedConfig(run_dir=run_dir),
        )
        return run_dir

    def test_status_run_drain_round_trip(self, tmp_path, capsys):
        run_dir = self._init_run(tmp_path)
        assert main(["workers", "status", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "0/3 done" in out

        assert main(
            ["workers", "run", "--run-dir", str(run_dir), "--id", "cli-w"]
        ) == 0
        out = capsys.readouterr().out
        assert "cli-w" in out and "3 chunks completed" in out

        assert main(["workers", "status", "--run-dir", str(run_dir)]) == 0
        assert "3/3 done" in capsys.readouterr().out

        assert main(["workers", "drain", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert main(["workers", "status", "--run-dir", str(run_dir)]) == 0
        assert "draining:    yes" in capsys.readouterr().out

    def test_status_json(self, tmp_path, capsys):
        import json

        run_dir = self._init_run(tmp_path)
        assert main(
            ["workers", "status", "--run-dir", str(run_dir), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tasks"]["total"] == 3
        assert payload["drain"] is False

    def test_max_chunks_limits_foreground_worker(self, tmp_path, capsys):
        run_dir = self._init_run(tmp_path)
        assert main(
            ["workers", "run", "--run-dir", str(run_dir),
             "--id", "partial", "--max-chunks", "1"]
        ) == 0
        assert "1 chunks completed" in capsys.readouterr().out

    def test_missing_run_dir_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        for command in ("status", "drain", "run"):
            assert main(["workers", command, "--run-dir", missing]) == 2
            err = capsys.readouterr().err
            assert "no such run dir" in err

    def test_workers_without_subcommand_prints_help(self, capsys):
        assert main(["workers"]) == 1
        assert "usage" in capsys.readouterr().out


class TestResumeFingerprintMismatch:
    """--resume against a journal from another configuration must fail
    loudly: one line naming both fingerprints, exit 2 — never a silent
    restart."""

    def test_cli_resume_mismatch_exits_2(
        self, test_scale, tmp_path, capsys, monkeypatch
    ):
        from repro.harness.artifacts import _campaign_key
        from repro.harness.resilience import Journal
        from repro.designspace import sampling_space
        from repro.simulator import Simulator
        from repro.workloads import BENCHMARK_NAMES

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(experiments, "_CONTEXTS", {})
        monkeypatch.setattr(
            "repro.cli.get_scale", lambda name=None: test_scale
        )
        # Plant a journal bound to a different fingerprint exactly where
        # cached_campaign will look for it.
        key = _campaign_key(
            test_scale, sampling_space(), BENCHMARK_NAMES,
            Simulator().memory_mode,
        )
        journal_path = (
            tmp_path / f"campaign-{test_scale.name}-{key}.journal.jsonl"
        )
        Journal.open(journal_path, "feedc0ffee000000")

        assert main(["run", "F1", "--resume"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1
        assert "Traceback" not in err
        assert "feedc0ffee000000" in err
        assert err.count("fingerprint") >= 2


class TestObservabilityFlags:
    def test_run_and_sweep_parsers_accept_trace_and_metrics(self):
        args = build_parser().parse_args(
            ["run", "T1", "--trace", "out.jsonl", "--metrics"]
        )
        assert args.trace == "out.jsonl" and args.metrics is True
        args = build_parser().parse_args(
            ["sweep", "--space", "sampling", "--trace", "t.jsonl"]
        )
        assert args.space == "sampling" and args.trace == "t.jsonl"
        assert args.metrics is False

    def test_verbosity_flags_set_log_level(self):
        import logging

        from repro.cli import _configure_logging

        logger = logging.getLogger("repro")
        _configure_logging(verbose=0, quiet=False)
        assert logger.level == logging.WARNING
        _configure_logging(verbose=1, quiet=False)
        assert logger.level == logging.INFO
        _configure_logging(verbose=2, quiet=False)
        assert logger.level == logging.DEBUG
        _configure_logging(verbose=0, quiet=True)
        assert logger.level == logging.ERROR
        # idempotent: repeated configuration adds no duplicate handlers
        _configure_logging(verbose=0, quiet=False)
        marked = [
            h for h in logger.handlers
            if getattr(h, "_repro_cli", False)
        ]
        assert len(marked) == 1

    def test_run_with_trace_writes_valid_file(
        self, ctx, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr(experiments, "_CONTEXTS", {ctx.scale.name: ctx})
        monkeypatch.setattr(
            "repro.cli.get_scale", lambda name=None: ctx.scale
        )
        trace_path = tmp_path / "run.jsonl"
        assert main(
            ["run", "T1", "--trace", str(trace_path), "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "--- metrics ---" in out
        assert trace_path.exists()
        assert main(["trace", "validate", str(trace_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_trace_summary_and_tree(self, tmp_path, capsys):
        from repro.obs import configure_tracing, disable_tracing, get_tracer

        path = tmp_path / "t.jsonl"
        configure_tracing(path)
        with get_tracer().span("outer"):
            with get_tracer().span("inner"):
                pass
        disable_tracing()
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "inner" in out and "2 spans" in out
        assert main(["trace", "tree", str(path)]) == 0
        tree = capsys.readouterr().out
        assert "outer" in tree and "└─" in tree

    def test_trace_commands_fail_cleanly_on_missing_file(self, capsys):
        assert main(["trace", "summary", "/no/such/trace.jsonl"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1

    def test_trace_validate_rejects_corruption(self, tmp_path, capsys):
        from repro.obs import configure_tracing, disable_tracing, get_tracer

        path = tmp_path / "t.jsonl"
        configure_tracing(path)
        with get_tracer().span("ok"):
            pass
        disable_tracing()
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"ok"', '"KO"')
        path.write_text("\n".join(lines) + "\n")
        assert main(["trace", "validate", str(path)]) == 2
        assert "checksum" in capsys.readouterr().err


class TestErrorHygiene:
    """Expected operational errors print one line and exit 2."""

    def test_scale_error_is_one_line(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        assert main(["info"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_artifact_error_is_one_line(self, capsys, monkeypatch):
        from repro.harness import ArtifactError

        def explode(*args, **kwargs):
            raise ArtifactError("artifact went missing")

        monkeypatch.setattr("repro.cli.shared_context", explode)
        assert main(["run", "T1", "--scale", "ci"]) == 2
        err = capsys.readouterr().err
        assert "error: artifact went missing" in err
        assert "Traceback" not in err

    def test_sweep_error_is_one_line(self, capsys, monkeypatch):
        from repro.harness import SweepError

        def explode(*args, **kwargs):
            raise SweepError("bad sweep configuration")

        monkeypatch.setattr("repro.cli.shared_context", explode)
        assert main(["sweep", "--scale", "ci"]) == 2
        err = capsys.readouterr().err
        assert "error: bad sweep configuration" in err

    def test_chunk_failure_prints_report_summary(self, capsys, monkeypatch):
        from repro.harness import ChunkFailure, RunReport

        report = RunReport(total_chunks=8, completed=3)
        report.failure = "chunk 5 ('gzip', 'train') failed: injected"

        def explode(*args, **kwargs):
            raise ChunkFailure(report.failure, report)

        monkeypatch.setattr("repro.cli.shared_context", explode)
        assert main(["run", "T1", "--scale", "ci"]) == 2
        err = capsys.readouterr().err
        assert "chunks 3/8" in err
        assert "chunk 5" in err


class TestAnalyze:
    """End-to-end coverage of the `repro analyze` subcommand."""

    def _write_bad_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Doc."""\n\n\ndef read(path):\n    try:\n'
            "        return open(path).read()\n"
            "    except:  # noqa: E722\n        return None\n"
        )
        return bad

    def test_analyze_json_smoke(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        bad = self._write_bad_file(tmp_path)
        assert main(["analyze", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_analyzed"] == 1
        assert payload["summary"]["error"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "HYG001"
        assert finding["line"] == 7
        assert finding["path"].endswith("bad.py")

    def test_analyze_text_clean_exits_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        good = tmp_path / "good.py"
        good.write_text('"""Doc."""\n\nVALUE = 1\n')
        assert main(["analyze", str(good)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_analyze_strict_fails_on_warnings(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        warn = tmp_path / "warn.py"
        warn.write_text(
            '"""Doc."""\n\n\ndef is_half(x):\n    return x == 0.5\n'
        )
        assert main(["analyze", str(warn)]) == 0  # warnings don't fail
        assert main(["analyze", str(warn), "--strict"]) == 1
        capsys.readouterr()

    def test_analyze_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._write_bad_file(tmp_path)
        assert main(["analyze", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "analysis-baseline.json").exists()
        capsys.readouterr()
        # baselined finding no longer fails, even in strict mode... but the
        # TODO reason is the author's cue to justify it for the gate tests.
        assert main(["analyze", str(tmp_path), "--strict"]) == 0
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_analyze_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "NUM001", "LAY001", "CON001", "HYG001"):
            assert rule_id in out

    def test_analyze_select_and_missing_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = self._write_bad_file(tmp_path)
        assert main(["analyze", str(bad), "--select", "NUM001"]) == 0
        capsys.readouterr()
        assert main(["analyze", str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_analyze_non_python_file_is_a_usage_error(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        notes = tmp_path / "notes.md"
        notes.write_text("# notes\n")
        assert main(["analyze", str(notes)]) == 2
        assert "not a Python file" in capsys.readouterr().err

    def test_analyze_jobs_matches_serial(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._write_bad_file(tmp_path)
        assert main(["analyze", str(tmp_path), "--no-cache"]) == 1
        serial_out = capsys.readouterr().out
        assert main(
            ["analyze", str(tmp_path), "--no-cache", "--jobs", "2"]
        ) == 1
        assert capsys.readouterr().out == serial_out

    def test_analyze_cache_round_trip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._write_bad_file(tmp_path)
        assert main(["analyze", str(tmp_path)]) == 1
        capsys.readouterr()
        assert (tmp_path / ".repro_cache" / "analysis").is_dir()
        assert main(["analyze", str(tmp_path)]) == 1
        assert "bad.py" in capsys.readouterr().out

    def test_analyze_graph_dumps_json(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        flow = tmp_path / "flow.py"
        flow.write_text(
            '"""Doc."""\n\n'
            "def work(chunk):\n"
            "    return chunk\n\n"
            "def drive(pool, chunks):\n"
            "    return [pool.submit(work, c) for c in chunks]\n"
        )
        assert main(["analyze", str(flow), "--graph"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entrypoints"] == ["flow.work"]
        assert payload["calls"]["flow.drive"] == ["flow.work"]
