"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
import repro.experiments as experiments


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F9b" in out and "X3" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "375,000" in out
        assert "262,500" in out

    def test_unknown_experiment_id(self, capsys):
        assert main(["run", "F99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_scale_choices_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "T1", "--scale", "galactic"])


class TestRun:
    def test_run_t1_with_shared_context(self, ctx, capsys, monkeypatch):
        # reuse the session context instead of building a 'ci' one
        monkeypatch.setattr(experiments, "_CONTEXTS", {ctx.scale.name: ctx})
        monkeypatch.setenv("REPRO_SCALE", "ci")
        monkeypatch.setattr(
            "repro.cli.get_scale", lambda name=None: ctx.scale
        )
        assert main(["run", "T1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "375,000" in out

    def test_run_multiple_ids(self, ctx, capsys, monkeypatch):
        monkeypatch.setattr(experiments, "_CONTEXTS", {ctx.scale.name: ctx})
        monkeypatch.setattr(
            "repro.cli.get_scale", lambda name=None: ctx.scale
        )
        assert main(["run", "T1", "T3"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "T3" in out
