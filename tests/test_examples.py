"""Smoke tests keeping the examples runnable.

All examples must at least compile; the cheaper ones are executed
end-to-end in subprocesses at CI scale (sharing the session's temporary
campaign cache through ``REPRO_CACHE_DIR``).
"""

import os
import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute in the test suite.
RUNNABLE = (
    "quickstart.py",
    "workload_characterization.py",
    "custom_workload.py",
)


def test_examples_directory_populated():
    names = {path.name for path in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 8


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", RUNNABLE)
def test_example_runs(name):
    env = dict(os.environ)
    env.setdefault("REPRO_SCALE", "ci")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"


def test_examples_have_module_docstrings():
    for path in ALL_EXAMPLES:
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
