"""Tests for the 2-D hypervolume indicator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.studies import pareto
from repro.studies.pareto import hypervolume_2d


class TestHypervolume:
    def test_single_point_rectangle(self):
        volume = hypervolume_2d(
            np.array([1.0]), np.array([2.0]), reference=(3.0, 5.0)
        )
        assert volume == pytest.approx((3 - 1) * (5 - 2))

    def test_two_trade_off_points(self):
        # (1,3) and (2,1) against reference (4,4):
        # staircase area = (4-1)*(4-3) + (4-2)*(3-1) = 3 + 4 = 7
        volume = hypervolume_2d(
            np.array([1.0, 2.0]), np.array([3.0, 1.0]), reference=(4.0, 4.0)
        )
        assert volume == pytest.approx(7.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d(
            np.array([1.0, 2.0]), np.array([3.0, 1.0]), reference=(4.0, 4.0)
        )
        with_dominated = hypervolume_2d(
            np.array([1.0, 2.0, 2.5]), np.array([3.0, 1.0, 3.5]),
            reference=(4.0, 4.0),
        )
        assert with_dominated == pytest.approx(base)

    def test_rejects_reference_inside_set(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.array([1.0]), np.array([2.0]), reference=(1.0, 5.0))

    def test_better_frontier_has_larger_volume(self):
        reference = (10.0, 10.0)
        worse = hypervolume_2d(
            np.array([3.0, 5.0]), np.array([5.0, 3.0]), reference
        )
        better = hypervolume_2d(
            np.array([2.0, 4.0]), np.array([4.0, 2.0]), reference
        )
        assert better > worse

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 9.0), st.floats(0.1, 9.0)),
            min_size=1,
            max_size=30,
        )
    )
    def test_volume_positive_and_bounded(self, raw):
        delay = np.array([p[0] for p in raw])
        power = np.array([p[1] for p in raw])
        reference = (10.0, 10.0)
        volume = hypervolume_2d(delay, power, reference)
        assert 0.0 < volume <= 10.0 * 10.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 9.0), st.floats(0.1, 9.0)),
            min_size=1,
            max_size=20,
        ),
        st.tuples(st.floats(0.1, 9.0), st.floats(0.1, 9.0)),
    )
    def test_adding_points_never_decreases_volume(self, raw, extra):
        delay = np.array([p[0] for p in raw])
        power = np.array([p[1] for p in raw])
        reference = (10.0, 10.0)
        base = hypervolume_2d(delay, power, reference)
        grown = hypervolume_2d(
            np.append(delay, extra[0]), np.append(power, extra[1]), reference
        )
        assert grown >= base - 1e-9


class TestFrontierQuality:
    def test_hypervolume_ratio_near_one(self, ctx):
        """Figure 3's visual claim, as one number: the simulated frontier
        covers nearly the same dominated volume as the predicted one."""
        validation = pareto.validate_frontier(ctx, "ammp")
        ratio = validation.hypervolume_ratio()
        assert 0.7 < ratio < 1.4
