"""Tests for the pareto frontier study (Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.studies import pareto
from repro.studies.pareto import discretized_frontier, pareto_indices


class TestParetoIndices:
    def test_single_point(self):
        assert pareto_indices(np.array([1.0]), np.array([1.0])).tolist() == [0]

    def test_dominated_point_removed(self):
        delay = np.array([1.0, 2.0])
        power = np.array([1.0, 2.0])
        assert pareto_indices(delay, power).tolist() == [0]

    def test_trade_off_points_kept(self):
        delay = np.array([1.0, 2.0, 3.0])
        power = np.array([3.0, 2.0, 1.0])
        assert pareto_indices(delay, power).tolist() == [0, 1, 2]

    def test_interior_point_removed(self):
        delay = np.array([1.0, 2.0, 3.0])
        power = np.array([3.0, 2.5, 1.0])  # middle dominated? no — keep
        assert pareto_indices(delay, power).tolist() == [0, 1, 2]
        power = np.array([3.0, 3.5, 1.0])  # middle strictly dominated by first
        assert pareto_indices(delay, power).tolist() == [0, 2]

    def test_equal_delay_keeps_cheapest(self):
        delay = np.array([1.0, 1.0, 2.0])
        power = np.array([5.0, 3.0, 1.0])
        assert pareto_indices(delay, power).tolist() == [1, 2]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pareto_indices(np.array([1.0]), np.array([1.0, 2.0]))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)),
            min_size=1,
            max_size=60,
        )
    )
    def test_no_frontier_point_is_dominated(self, raw):
        delay = np.array([p[0] for p in raw])
        power = np.array([p[1] for p in raw])
        frontier = pareto_indices(delay, power)
        for i in frontier:
            dominated = (
                (delay <= delay[i]) & (power <= power[i])
                & ((delay < delay[i]) | (power < power[i]))
            )
            assert not dominated.any()

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)),
            min_size=1,
            max_size=60,
        )
    )
    def test_every_non_frontier_point_is_dominated(self, raw):
        delay = np.array([p[0] for p in raw])
        power = np.array([p[1] for p in raw])
        frontier = set(pareto_indices(delay, power).tolist())
        for i in range(len(raw)):
            if i in frontier:
                continue
            dominated = (
                (delay <= delay[i]) & (power <= power[i])
                & ((delay < delay[i]) | (power < power[i]))
            )
            duplicate_kept = any(
                delay[j] == delay[i] and power[j] == power[i] for j in frontier
            )
            assert dominated.any() or duplicate_kept


class TestDiscretizedFrontier:
    def test_subset_of_candidates(self):
        rng = np.random.default_rng(0)
        delay = rng.uniform(1, 10, 200)
        power = rng.uniform(1, 100, 200)
        chosen = discretized_frontier(delay, power, bins=20)
        assert set(chosen.tolist()) <= set(range(200))

    def test_result_is_non_dominated(self):
        rng = np.random.default_rng(1)
        delay = rng.uniform(1, 10, 200)
        power = rng.uniform(1, 100, 200)
        chosen = discretized_frontier(delay, power, bins=20)
        sub_frontier = pareto_indices(delay[chosen], power[chosen])
        assert len(sub_frontier) == len(chosen)

    def test_bins_must_be_positive(self):
        with pytest.raises(ValueError):
            discretized_frontier(np.array([1.0]), np.array([1.0]), bins=0)

    def test_more_bins_no_fewer_points(self):
        rng = np.random.default_rng(2)
        delay = rng.uniform(1, 10, 300)
        power = 50.0 / delay + rng.uniform(0, 1, 300)  # clean trade-off
        few = discretized_frontier(delay, power, bins=5)
        many = discretized_frontier(delay, power, bins=40)
        assert len(many) >= len(few)


class TestStudyOutputs:
    def test_characterization_covers_exploration_set(self, ctx):
        table = pareto.characterize(ctx, "ammp")
        assert len(table) == ctx.scale.exploration_limit
        assert (table.bips > 0).all()
        assert (table.watts > 0).all()

    def test_frontier_points_belong_to_table(self, ctx):
        front = pareto.frontier(ctx, "mcf", bins=25)
        table = ctx.predict_exploration("mcf")
        for i, point in zip(front.indices, front.points):
            assert table.points[i] == point

    def test_frontier_sorted_by_delay(self, ctx):
        front = pareto.frontier(ctx, "ammp", bins=25)
        assert (np.diff(front.delay) >= 0).all()
        assert (np.diff(front.power) <= 0).all()

    def test_efficiency_optimum_is_argmax(self, ctx):
        row = pareto.efficiency_optimum(ctx, "gzip", validate=False)
        table = ctx.predict_exploration("gzip")
        assert row.predicted_efficiency == pytest.approx(float(table.efficiency.max()))

    def test_table2_covers_suite(self, ctx):
        rows = pareto.table2(ctx, validate=False)
        assert [r.benchmark for r in rows] == list(ctx.benchmarks)

    def test_validated_optimum_has_errors(self, ctx):
        row = pareto.efficiency_optimum(ctx, "gzip", validate=True)
        assert np.isfinite(row.delay_error)
        assert np.isfinite(row.power_error)

    def test_validate_frontier_summary(self, ctx):
        validation = pareto.validate_frontier(ctx, "ammp")
        assert len(validation.points) <= ctx.scale.frontier_validations
        assert (validation.simulated_delay > 0).all()
        assert validation.delay_errors.stats.n == len(validation.points)

    def test_resource_trend_levels(self, ctx):
        trend = pareto.resource_trend(ctx, "mcf", "l2_mb")
        assert set(trend) <= {0.25, 0.5, 1.0, 2.0, 4.0}
        # mcf: mean delay falls as L2 grows (Figure 2's arrow)
        levels = sorted(trend)
        assert trend[levels[0]]["mean_delay"] > trend[levels[-1]]["mean_delay"]
