"""Tests for design space samplers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designspace import (
    DesignSpace,
    Parameter,
    ParameterError,
    sample_halton,
    sample_stratified,
    sample_uar,
    sampling_space,
    split_train_validation,
)


@pytest.fixture(scope="module")
def toy_space():
    return DesignSpace(
        [
            Parameter(name="a", values=(1, 2, 3, 4)),
            Parameter(name="b", values=(1, 2, 3)),
            Parameter(name="c", values=(1, 2)),
        ]
    )


class TestUAR:
    def test_count(self, toy_space):
        assert len(sample_uar(toy_space, 10, seed=1)) == 10

    def test_unique_by_default(self, toy_space):
        points = sample_uar(toy_space, 20, seed=1)
        assert len(set(points)) == 20

    def test_unique_cannot_exceed_space(self, toy_space):
        with pytest.raises(ParameterError):
            sample_uar(toy_space, len(toy_space) + 1, seed=1)

    def test_with_replacement_can_exceed_space(self, toy_space):
        points = sample_uar(toy_space, 50, seed=1, unique=False)
        assert len(points) == 50

    def test_deterministic_with_seed(self, toy_space):
        assert sample_uar(toy_space, 8, seed=5) == sample_uar(toy_space, 8, seed=5)

    def test_different_seeds_differ(self, toy_space):
        a = sample_uar(toy_space, 12, seed=1)
        b = sample_uar(toy_space, 12, seed=2)
        assert a != b

    def test_zero_count(self, toy_space):
        assert sample_uar(toy_space, 0, seed=1) == []

    def test_negative_count_rejected(self, toy_space):
        with pytest.raises(ParameterError):
            sample_uar(toy_space, -1)

    def test_rejection_path_on_huge_space(self):
        # |S| = 375,000 >> 20 * count triggers the rejection sampler.
        points = sample_uar(sampling_space(), 100, seed=3)
        assert len(set(points)) == 100

    def test_all_points_valid(self, toy_space):
        for point in sample_uar(toy_space, 24, seed=2):
            assert point in toy_space

    def test_roughly_uniform_coverage(self, toy_space):
        # Exhaustive draw covers the whole space exactly once.
        points = sample_uar(toy_space, len(toy_space), seed=0)
        assert len(set(points)) == len(toy_space)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_membership_property(self, seed):
        space = sampling_space()
        for point in sample_uar(space, 5, seed=seed):
            assert point in space


class TestStratified:
    def test_per_level_counts(self, toy_space):
        points = sample_stratified(toy_space, "a", per_level=3, seed=1)
        assert len(points) == 4 * 3
        for level in (1, 2, 3, 4):
            assert sum(1 for p in points if p["a"] == level) == 3

    def test_deterministic(self, toy_space):
        a = sample_stratified(toy_space, "a", 2, seed=9)
        b = sample_stratified(toy_space, "a", 2, seed=9)
        assert a == b

    def test_unknown_parameter(self, toy_space):
        with pytest.raises(ParameterError):
            sample_stratified(toy_space, "bogus", 2)


class TestHalton:
    def test_deterministic(self, toy_space):
        assert sample_halton(toy_space, 10) == sample_halton(toy_space, 10)

    def test_count_and_membership(self, toy_space):
        points = sample_halton(toy_space, 30)
        assert len(points) == 30
        assert all(point in toy_space for point in points)

    def test_covers_all_levels_of_each_parameter(self, toy_space):
        points = sample_halton(toy_space, 60)
        for parameter in toy_space.parameters:
            seen = {point[parameter.name] for point in points}
            assert seen == set(parameter.values)

    def test_negative_count_rejected(self, toy_space):
        with pytest.raises(ParameterError):
            sample_halton(toy_space, -1)

    def test_too_many_parameters_rejected(self):
        parameters = [
            Parameter(name=f"p{i}", values=(1, 2)) for i in range(13)
        ]
        with pytest.raises(ParameterError):
            sample_halton(DesignSpace(parameters), 4)


class TestSplit:
    def test_sizes(self, toy_space):
        points = sample_uar(toy_space, 20, seed=1)
        train, validation = split_train_validation(points, 5, seed=2)
        assert len(train) == 15
        assert len(validation) == 5

    def test_disjoint_and_complete(self, toy_space):
        points = sample_uar(toy_space, 20, seed=1)
        train, validation = split_train_validation(points, 5, seed=2)
        assert set(train) | set(validation) == set(points)
        assert not set(train) & set(validation)

    def test_cannot_hold_out_more_than_available(self, toy_space):
        points = sample_uar(toy_space, 4, seed=1)
        with pytest.raises(ParameterError):
            split_train_validation(points, 5)
