"""Tests for response transforms."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.regression import (
    IdentityTransform,
    LogTransform,
    SqrtTransform,
    TransformError,
    get_transform,
)


class TestIdentity:
    def test_round_trip(self):
        y = np.array([-2.0, 0.0, 5.5])
        transform = IdentityTransform()
        assert (transform.inverse(transform.forward(y)) == y).all()


class TestSqrt:
    def test_forward(self):
        assert SqrtTransform().forward(np.array([4.0]))[0] == 2.0

    def test_round_trip(self):
        y = np.array([0.0, 0.25, 9.0])
        transform = SqrtTransform()
        assert transform.inverse(transform.forward(y)) == pytest.approx(y)

    def test_rejects_negative(self):
        with pytest.raises(TransformError):
            SqrtTransform().forward(np.array([-1.0]))

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=20))
    def test_round_trip_property(self, values):
        y = np.array(values)
        transform = SqrtTransform()
        assert transform.inverse(transform.forward(y)) == pytest.approx(y, rel=1e-9)


class TestLog:
    def test_forward(self):
        assert LogTransform().forward(np.array([np.e]))[0] == pytest.approx(1.0)

    def test_round_trip(self):
        y = np.array([0.1, 1.0, 250.0])
        transform = LogTransform()
        assert transform.inverse(transform.forward(y)) == pytest.approx(y)

    def test_rejects_zero(self):
        with pytest.raises(TransformError):
            LogTransform().forward(np.array([0.0]))

    def test_rejects_negative(self):
        with pytest.raises(TransformError):
            LogTransform().forward(np.array([-3.0]))

    @given(st.lists(st.floats(1e-6, 1e6), min_size=1, max_size=20))
    def test_round_trip_property(self, values):
        y = np.array(values)
        transform = LogTransform()
        assert transform.inverse(transform.forward(y)) == pytest.approx(y, rel=1e-9)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_transform("sqrt"), SqrtTransform)
        assert isinstance(get_transform("log"), LogTransform)
        assert isinstance(get_transform("identity"), IdentityTransform)

    def test_unknown_name(self):
        with pytest.raises(TransformError, match="choices"):
            get_transform("boxcox")

    def test_names_stable(self):
        assert SqrtTransform().name == "sqrt"
        assert LogTransform().name == "log"
