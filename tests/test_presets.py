"""Tests pinning the paper's model specifications (Sections 3.2-3.3)."""

import pytest

from repro.regression import (
    InteractionTerm,
    SplineTerm,
    extended_terms,
    linear_terms,
    main_effects_only_terms,
    paper_terms,
    performance_spec,
    power_spec,
)
from repro.regression.presets import EXTENDED_PREDICTORS, PREDICTORS


def spline_knots(terms):
    return {
        term.name: term.knots for term in terms if isinstance(term, SplineTerm)
    }


def interaction_pairs(terms):
    return {
        frozenset((term.a, term.b))
        for term in terms
        if isinstance(term, InteractionTerm)
    }


class TestPaperTerms:
    def test_every_table1_predictor_has_a_main_effect(self):
        knots = spline_knots(paper_terms())
        assert set(knots) == set(PREDICTORS)

    def test_knot_counts_follow_section_3_3(self):
        knots = spline_knots(paper_terms())
        # strong predictors: 4 knots
        assert knots["depth"] == 4
        assert knots["gpr_phys"] == 4
        # weak predictors: 3 knots
        for name in ("br_resv", "il1_kb", "dl1_kb", "l2_mb"):
            assert knots[name] == 3

    def test_domain_interactions_of_section_3_2(self):
        pairs = interaction_pairs(paper_terms())
        assert frozenset(("depth", "dl1_kb")) in pairs     # depth x caches
        assert frozenset(("depth", "l2_mb")) in pairs
        assert frozenset(("width", "gpr_phys")) in pairs   # width x window
        assert frozenset(("width", "br_resv")) in pairs
        assert frozenset(("il1_kb", "l2_mb")) in pairs     # adjacent levels
        assert frozenset(("dl1_kb", "l2_mb")) in pairs

    def test_no_unjustified_interactions(self):
        # exactly the six domain-specified pairs
        assert len(interaction_pairs(paper_terms())) == 6


class TestSpecs:
    def test_performance_uses_sqrt(self):
        assert performance_spec().transform.name == "sqrt"
        assert performance_spec().response == "bips"

    def test_power_uses_log(self):
        assert power_spec().transform.name == "log"
        assert power_spec().response == "watts"

    def test_specs_share_term_structure(self):
        perf = performance_spec()
        power = power_spec()
        assert len(perf.terms) == len(power.terms)

    def test_describe_is_readable(self):
        text = performance_spec().describe()
        assert "sqrt(bips)" in text
        assert "spline(depth)" in text
        assert "interaction(depthxdl1_kb)" in text


class TestAblationVariants:
    def test_main_effects_only_has_no_interactions(self):
        assert not interaction_pairs(main_effects_only_terms())
        assert set(spline_knots(main_effects_only_terms())) == set(PREDICTORS)

    def test_linear_terms_cover_predictors(self):
        terms = linear_terms()
        assert len(terms) == len(PREDICTORS)
        assert not spline_knots(terms)


class TestExtendedTerms:
    def test_superset_of_paper_terms(self):
        assert len(extended_terms()) > len(paper_terms())

    def test_covers_extended_predictors(self):
        names = set()
        for term in extended_terms():
            names.update(term.predictors)
        assert names == set(EXTENDED_PREDICTORS)

    def test_associativity_interacts_with_dl1(self):
        pairs = interaction_pairs(extended_terms())
        assert frozenset(("dl1_assoc", "dl1_kb")) in pairs
        assert frozenset(("in_order", "width")) in pairs
