"""Tests for table/figure text rendering."""

import pytest

from repro.designspace import exploration_space
from repro.harness import (
    Series,
    ascii_scatter,
    render_boxplot,
    render_boxplot_panel,
    render_design_point,
    render_series,
    render_table,
)
from repro.harness.tables import TableError
from repro.regression import boxplot_stats


class TestTable:
    def test_basic_rendering(self):
        text = render_table(["a", "b"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "30" in lines[3]

    def test_title(self):
        text = render_table(["a"], [[1]], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_ragged_rows_rejected(self):
        with pytest.raises(TableError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.12345], [12.345], [1234.5]])
        assert "0.123" in text
        assert "12.35" in text or "12.34" in text
        assert "1234" in text or "1235" in text

    def test_columns_aligned(self):
        text = render_table(["col", "x"], [[1, 2], [100, 3]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_render_design_point(self):
        point = exploration_space().point_at(0)
        text = render_design_point(point)
        assert "depth=" in text and "l2_mb=" in text


class TestSeries:
    def test_render(self):
        series = Series("line", (1, 2), (0.5, 1.5))
        assert render_series(series) == "line: (1, 0.500) (2, 1.500)"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Series("bad", (1, 2), (1.0,))

    def test_precision(self):
        series = Series("p", (1,), (0.123456,))
        assert "0.12346" in render_series(series, precision=5)


class TestBoxplotRendering:
    def test_render_boxplot_contains_quartiles(self):
        stats = boxplot_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        text = render_boxplot("label", stats)
        assert "label" in text
        assert "3.00" in text  # median
        assert "n=5" in text

    def test_percent_mode(self):
        stats = boxplot_stats([0.05, 0.10, 0.15])
        text = render_boxplot("x", stats, percent=True)
        assert "10.00%" in text

    def test_panel_stacks_labels(self):
        stats = boxplot_stats([1.0, 2.0])
        text = render_boxplot_panel("title", {"a": stats, "b": stats})
        lines = text.splitlines()
        assert lines[0] == "title"
        assert len(lines) == 3


class TestScatter:
    def test_dimensions(self):
        text = ascii_scatter([0, 1, 2], [0, 1, 4], width=20, height=5)
        lines = text.splitlines()
        assert len(lines) == 6  # header + 5 rows
        assert all(len(line) == 20 for line in lines[1:])

    def test_points_plotted(self):
        text = ascii_scatter([0, 1], [0, 1], width=10, height=4)
        assert text.count("*") == 2

    def test_degenerate_single_point(self):
        text = ascii_scatter([1.0], [2.0])
        assert "*" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_scatter([1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            ascii_scatter([], [])
