"""Tests for k-fold cross-validation and prediction intervals."""

import numpy as np
import pytest

from repro.regression import (
    FitError,
    LinearTerm,
    ModelSpec,
    SplineTerm,
    SqrtTransform,
    compare_specs,
    cross_validate,
    fit_ols,
)


def make_data(n=200, noise=0.2, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(1, 10, n)
    y = 3.0 + 2.0 * x + noise * rng.standard_normal(n)
    return {"x": x, "y": y}


class TestCrossValidation:
    def test_pooled_error_count(self):
        data = make_data()
        result = cross_validate(ModelSpec("y", (LinearTerm("x"),)), data, folds=5)
        assert result.errors.size == 200
        assert result.folds == 5
        assert len(result.fold_medians) == 5

    def test_accurate_model_has_small_cv_error(self):
        data = make_data(noise=0.05)
        result = cross_validate(ModelSpec("y", (LinearTerm("x"),)), data)
        assert result.median_percent < 2.0

    def test_cv_detects_worse_model(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(1, 10, 300)
        data = {"x": x, "y": np.exp(x / 3) + 0.1 * rng.standard_normal(300)}
        linear = cross_validate(ModelSpec("y", (LinearTerm("x"),)), data)
        spline = cross_validate(ModelSpec("y", (SplineTerm("x", knots=5),)), data)
        assert spline.median < linear.median

    def test_deterministic_with_seed(self):
        data = make_data()
        spec = ModelSpec("y", (LinearTerm("x"),))
        a = cross_validate(spec, data, seed=3)
        b = cross_validate(spec, data, seed=3)
        assert np.allclose(np.sort(a.errors), np.sort(b.errors))

    def test_rejects_single_fold(self):
        with pytest.raises(FitError):
            cross_validate(ModelSpec("y", (LinearTerm("x"),)), make_data(), folds=1)

    def test_rejects_more_folds_than_points(self):
        with pytest.raises(FitError):
            cross_validate(
                ModelSpec("y", (LinearTerm("x"),)), make_data(n=60), folds=100
            )

    def test_compare_specs_keys(self):
        data = make_data()
        results = compare_specs(
            {
                "linear": ModelSpec("y", (LinearTerm("x"),)),
                "spline": ModelSpec("y", (SplineTerm("x", knots=4),)),
            },
            data,
        )
        assert set(results) == {"linear", "spline"}

    def test_stats_available(self):
        data = make_data()
        result = cross_validate(ModelSpec("y", (LinearTerm("x"),)), data)
        stats = result.stats()
        assert stats.n == 200


class TestPredictionIntervals:
    def make_model(self, noise=1.0, transform=None):
        rng = np.random.default_rng(1)
        x = rng.uniform(1, 10, 500)
        y = 10.0 + 2.0 * x + noise * rng.standard_normal(500)
        if transform is not None:
            y = np.maximum(y, 0.1) ** 2  # keep positive for sqrt response
            spec = ModelSpec("y", (LinearTerm("x"),), transform=transform)
        else:
            spec = ModelSpec("y", (LinearTerm("x"),))
        return fit_ols(spec, {"x": x, "y": y}), x, y

    def test_interval_contains_point_prediction(self):
        model, x, _ = self.make_model()
        query = {"x": np.linspace(1, 10, 20)}
        low, high = model.prediction_interval(query)
        predicted = model.predict(query)
        assert (low <= predicted + 1e-9).all()
        assert (high >= predicted - 1e-9).all()

    def test_coverage_near_nominal(self):
        model, x, y = self.make_model(noise=1.0)
        low, high = model.prediction_interval({"x": x}, level=0.95)
        coverage = ((y >= low) & (y <= high)).mean()
        assert 0.90 <= coverage <= 0.99

    def test_wider_at_higher_level(self):
        model, _, _ = self.make_model()
        query = {"x": np.array([5.0])}
        low50, high50 = model.prediction_interval(query, level=0.5)
        low99, high99 = model.prediction_interval(query, level=0.99)
        assert high99[0] - low99[0] > high50[0] - low50[0]

    def test_sqrt_transform_lower_bound_non_negative(self):
        model, _, _ = self.make_model(noise=6.0, transform=SqrtTransform())
        query = {"x": np.array([1.0, 5.0, 10.0])}
        low, high = model.prediction_interval(query, level=0.999)
        assert (low >= 0.0).all()
        assert (high >= low).all()

    def test_invalid_level(self):
        model, _, _ = self.make_model()
        with pytest.raises(FitError):
            model.prediction_interval({"x": np.array([1.0])}, level=1.2)
