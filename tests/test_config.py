"""Tests for machine configuration resolution."""

import pytest

from repro.designspace import exploration_space, extended_space
from repro.simulator import (
    ARCHITECTED_GPR,
    ConfigError,
    MachineConfig,
    baseline_config,
    baseline_point,
    config_from_point,
)
from repro.workloads.trace import OP_FP, OP_FP_DIV, OP_INT


class TestBaseline:
    def test_table3_values(self):
        config = baseline_config()
        assert config.depth_fo4 == 19.0
        assert config.width == 4
        assert config.gpr_phys == 80
        assert config.fpr_phys == 72
        assert config.il1_kb == 64.0
        assert config.dl1_kb == 32.0
        assert config.l2_mb == 2.0

    def test_dispatch_rate_is_9_per_table3(self):
        assert baseline_config().dispatch_rate == 9

    def test_l2_latency_near_9_cycles(self):
        # Table 3: 9-cycle L2 at 19 FO4
        assert baseline_config().l2_latency == pytest.approx(10, abs=1)

    def test_memory_latency_near_77_cycles(self):
        assert baseline_config().memory_latency == pytest.approx(79, abs=3)

    def test_rename_registers(self):
        config = baseline_config()
        assert config.gpr_rename == 80 - ARCHITECTED_GPR
        assert config.fpr_rename == 72 - 32


class TestValidation:
    def test_rejects_too_few_physical_registers(self):
        with pytest.raises(ConfigError, match="rename"):
            baseline_config().with_overrides(gpr_phys=ARCHITECTED_GPR)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            baseline_config().with_overrides(width=0)

    def test_rejects_zero_queue(self):
        with pytest.raises(ConfigError):
            baseline_config().with_overrides(ls_queue=0)

    def test_rejects_impossible_depth(self):
        with pytest.raises(Exception):
            baseline_config().with_overrides(depth_fo4=2.0)


class TestLatencies:
    def test_op_latency_scales_with_depth(self):
        shallow = baseline_config().with_overrides(depth_fo4=30.0)
        deep = baseline_config().with_overrides(depth_fo4=12.0)
        assert deep.op_latency(OP_FP) > shallow.op_latency(OP_FP)

    def test_int_is_single_cycle_at_12_fo4_or_deeper(self):
        assert baseline_config().with_overrides(depth_fo4=12.0).op_latency(OP_INT) == 1

    def test_divide_is_long(self):
        config = baseline_config()
        assert config.op_latency(OP_FP_DIV) >= 3 * config.op_latency(OP_FP)

    def test_data_latency_ordering(self):
        config = baseline_config()
        assert (
            config.data_latency("l1")
            < config.data_latency("l2")
            < config.data_latency("mem")
        )

    def test_data_latency_unknown_level(self):
        with pytest.raises(ConfigError):
            baseline_config().data_latency("l3")

    def test_fetch_penalty_zero_on_hit(self):
        assert baseline_config().fetch_penalty("l1") == 0

    def test_fetch_penalty_ordering(self):
        config = baseline_config()
        assert 0 < config.fetch_penalty("l2") < config.fetch_penalty("mem")

    def test_cache_latency_grows_with_size(self):
        small = baseline_config().with_overrides(dl1_kb=8.0)
        large = baseline_config().with_overrides(dl1_kb=128.0)
        assert large.dl1_latency >= small.dl1_latency


class TestFromPoint:
    def test_resolves_derived_settings(self):
        space = exploration_space()
        point = space.point(
            depth=12, width=8, gpr_phys=130, br_resv=15,
            il1_kb=256, dl1_kb=128, l2_mb=4.0,
        )
        config = config_from_point(space, point)
        assert config.functional_units == 4
        assert config.ls_queue == 45
        assert config.fpr_phys == 112
        assert config.fx_resv == 28

    def test_overrides_win(self):
        space = exploration_space()
        config = config_from_point(space, baseline_point(space), in_order=True)
        assert config.in_order is True

    def test_extended_space_parameters_honoured(self):
        space = extended_space()
        point = space.point(
            depth=12, width=2, gpr_phys=40, br_resv=6,
            il1_kb=16, dl1_kb=8, l2_mb=0.25, dl1_assoc=8, in_order=1,
        )
        config = config_from_point(space, point)
        assert config.dl1_assoc == 8
        assert config.in_order is True

    def test_describe_keys(self):
        summary = baseline_config().describe()
        for key in ("depth_fo4", "width", "frequency_ghz", "l2_mb", "memory_latency"):
            assert key in summary
