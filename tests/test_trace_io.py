"""Tests for trace save/load."""

import json

import numpy as np
import pytest

from repro.simulator import Simulator, baseline_config
from repro.workloads import (
    TraceError,
    generate_trace,
    get_profile,
    load_trace,
    save_trace,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_profile("twolf"), 3000, seed=13)


class TestRoundTrip:
    def test_columns_identical(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "twolf.npz")
        loaded = load_trace(path)
        for column in ("op", "src1", "src2", "mem_block", "data_reuse",
                       "iblock", "instr_reuse", "taken", "branch_site"):
            assert (getattr(loaded, column) == getattr(trace, column)).all(), column

    def test_header_round_trips(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert loaded.name == trace.name
        assert loaded.ref_instructions == trace.ref_instructions
        assert loaded.metadata == trace.metadata

    def test_simulation_identical_after_reload(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        simulator = Simulator()
        original = simulator.simulate(trace, baseline_config())
        reloaded = simulator.simulate(loaded, baseline_config())
        assert original.cycles == reloaded.cycles
        assert original.watts == pytest.approx(reloaded.watts)

    def test_creates_parent_directories(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "deep" / "dir" / "t.npz")
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="unreadable"):
            load_trace(tmp_path / "absent.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_version_mismatch(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        # rewrite the header with a wrong version
        with np.load(path, allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in archive.files if k != "header"}
        header = json.dumps({"version": 999, "name": "x", "ref_instructions": 1e9})
        np.savez_compressed(path, header=np.array(header), **arrays)
        with pytest.raises(TraceError, match="version"):
            load_trace(path)
