"""Tests for the fault-tolerant execution layer.

Every recovery path — retry, timeout, pool restart, serial degradation,
journal resume — is exercised through the deterministic fault-injection
hook, never with real crashes or sleeps in test code.
"""

import json

import numpy as np
import pytest

from repro.harness import get_scale, run_campaign
from repro.harness.resilience import (
    ChunkFailure,
    ChunkTask,
    CorruptResultError,
    Fault,
    FaultPlan,
    Journal,
    JournalFingerprintError,
    ResilienceConfig,
    ResilienceError,
    RetryPolicy,
    TransientWorkerError,
    append_record,
    read_journal_records,
    run_chunks,
)
from repro.simulator import Simulator


def _double_chunk(values):
    """Picklable test workload: double each value."""
    return [v * 2 for v in values]


def _tasks(n_chunks=4, chunk_len=3):
    return [
        ChunkTask(
            index=i,
            fn=_double_chunk,
            args=([i * 10 + j for j in range(chunk_len)],),
            size=chunk_len,
            meta=("chunk", i),
        )
        for i in range(n_chunks)
    ]


def _expected(tasks):
    return [_double_chunk(*task.args) for task in tasks]


def _validate_length(task, payload):
    if not isinstance(payload, list) or len(payload) != task.size:
        raise CorruptResultError(f"chunk {task.index} payload truncated")


class TestRetryPolicy:
    def test_classification(self):
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        policy = RetryPolicy()
        assert policy.classify(BrokenProcessPool("dead")) == "transient"
        assert policy.classify(FuturesTimeout("slow")) == "transient"
        assert policy.classify(TimeoutError("slow")) == "transient"
        assert policy.classify(TransientWorkerError("flaky")) == "transient"
        assert policy.classify(RuntimeError("bug")) == "permanent"
        assert policy.classify(ValueError("bad input")) == "permanent"

    def test_backoff_deterministic_and_growing(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.5)
        first = policy.backoff_seconds(3, 1)
        assert first == policy.backoff_seconds(3, 1)  # same inputs, same delay
        assert policy.backoff_seconds(3, 3) > policy.backoff_seconds(3, 1)
        assert 0.1 <= first <= 0.1 * 1.5

    def test_zero_base_means_no_delay(self):
        assert RetryPolicy().backoff_seconds(0, 1) == 0.0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(chunk_timeout=0.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(backoff_factor=0.5)


class TestFaultPlan:
    def test_fires_on_listed_attempts_only(self):
        plan = FaultPlan([Fault(chunk=2, kind="transient", attempts=(1, 3))])
        assert plan.fault_for(2, 1) == "transient"
        assert plan.fault_for(2, 2) is None
        assert plan.fault_for(2, 3) == "transient"
        assert plan.fault_for(1, 1) is None

    def test_empty_attempts_fires_always(self):
        plan = FaultPlan([Fault(chunk=0, kind="permanent", attempts=())])
        for attempt in (1, 2, 5):
            assert plan.fault_for(0, attempt) == "permanent"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ResilienceError):
            Fault(chunk=0, kind="meltdown")


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        journal = Journal.open(path, "fp-1")
        journal.record(0, attempts=1, payload=[1, 2])
        journal.record(2, attempts=3, payload=[5, 6])

        reopened = Journal.open(path, "fp-1")
        assert reopened.completed == {0: [1, 2], 2: [5, 6]}
        assert reopened.attempts == {0: 1, 2: 3}

    def test_fingerprint_mismatch_discards(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        journal = Journal.open(path, "fp-old")
        journal.record(0, attempts=1, payload=[1])

        reopened = Journal.open(path, "fp-new")
        assert reopened.completed == {}
        # the file was recreated with the new fingerprint
        assert Journal.open(path, "fp-new").completed == {}

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        journal = Journal.open(path, "fp")
        journal.record(0, attempts=1, payload=[1])
        with open(path, "a") as handle:
            handle.write('{"sha": "abcd", "body": {"kind": "chu')  # interrupt

        reopened = Journal.open(path, "fp")
        assert reopened.completed == {0: [1]}

    def test_checksum_mismatch_skipped(self, tmp_path, caplog):
        path = tmp_path / "run.journal.jsonl"
        journal = Journal.open(path, "fp")
        journal.record(0, attempts=1, payload=[1])
        tampered = {
            "sha": "0" * 16,
            "body": {"kind": "chunk", "index": 1, "payload": [9]},
        }
        with open(path, "a") as handle:
            handle.write(json.dumps(tampered) + "\n")

        with caplog.at_level("WARNING"):
            reopened = Journal.open(path, "fp")
        assert reopened.completed == {0: [1]}
        assert any("checksum" in r.message for r in caplog.records)


class TestTornTailEveryOffset:
    """A crash can cut the final journal record at *any* byte.

    The tolerant reader must, for every possible truncation point of the
    last record, return exactly the intact records with a structured
    ``journal_torn_tail`` warning — never an exception, never a partial
    or corrupted body.
    """

    def _journal(self, tmp_path, n_records=3):
        path = tmp_path / "torn.journal.jsonl"
        for i in range(n_records):
            append_record(
                path,
                {"kind": "chunk", "index": i, "payload": [i, i * 2]},
            )
        return path

    def test_truncation_at_every_byte_of_last_record(self, tmp_path):
        path = self._journal(tmp_path)
        data = path.read_bytes()
        intact = data[: data.rfind(b"\n", 0, len(data) - 1) + 1]
        expected, clean_warnings = read_journal_records(path)
        assert clean_warnings == []
        assert [b["index"] for b in expected] == [0, 1, 2]

        for cut in range(len(intact), len(data)):
            path.write_bytes(data[:cut])
            bodies, warnings = read_journal_records(path)
            if cut in (len(intact), len(data) - 1):
                # Cut exactly at the record boundary (nothing of the
                # last record remains) or only the trailing newline is
                # missing (the record is bytewise complete): no tear.
                expected_tail = [0, 1] if cut == len(intact) else [0, 1, 2]
                assert [b["index"] for b in bodies] == expected_tail
                assert warnings == []
                continue
            assert [b["index"] for b in bodies] == [0, 1], (
                f"wrong records after truncating at byte {cut}"
            )
            assert len(warnings) == 1, f"no warning at byte {cut}"
            warning = warnings[0]
            assert warning["kind"] in (
                "journal_torn_tail",
                "journal_bad_checksum",
            )
            assert warning["path"] == str(path)
            assert warning["line"] == 3

    def test_torn_tail_recovers_on_append(self, tmp_path):
        path = self._journal(tmp_path, n_records=2)
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear the second record
        bodies, warnings = read_journal_records(path)
        assert [b["index"] for b in bodies] == [0]
        assert warnings[0]["kind"] in (
            "journal_torn_tail",
            "journal_bad_checksum",
        )
        # The journal stays appendable: the torn line is superseded by a
        # rewritten record on the next line.
        append_record(path, {"kind": "chunk", "index": 1, "payload": [1]})
        bodies, _ = read_journal_records(path)
        assert [b["index"] for b in bodies] == [0, 1]

    def test_merged_tear_swallows_next_record(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        # A tear that ate record 1's newline merges it with record 2
        # into one undecodable line: both are lost, with a warning —
        # record 0 survives.
        path.write_bytes(lines[0] + lines[1][:-10] + lines[2])
        bodies, warnings = read_journal_records(path)
        assert [b["index"] for b in bodies] == [0]
        assert warnings
        assert warnings[0]["line"] == 2

    def test_sealed_tear_keeps_later_records(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        # A sealed interior tear (garbage line with its own newline, as
        # append_record leaves after repairing a torn tail): the damage
        # is skipped, but later checksummed records stay trusted.
        path.write_bytes(lines[0] + lines[1][:-10] + b"\n" + lines[2])
        bodies, warnings = read_journal_records(path)
        assert [b["index"] for b in bodies] == [0, 2]
        assert warnings[0]["kind"] == "journal_corrupt_line"
        assert warnings[0]["line"] == 2


class TestRunChunksSerial:
    def test_clean_run(self):
        tasks = _tasks()
        results, report = run_chunks(tasks)
        assert results == _expected(tasks)
        assert report.completed == report.total_chunks == len(tasks)
        assert report.retried == 0 and report.failure is None

    def test_transient_fault_retries(self):
        tasks = _tasks()
        faults = FaultPlan([Fault(chunk=1, kind="transient", attempts=(1,))])
        results, report = run_chunks(tasks, faults=faults)
        assert results == _expected(tasks)
        assert report.retried == 1
        assert report.chunks[1].attempts == 2
        assert "TransientWorkerError" in report.chunks[1].errors[0]

    def test_permanent_fault_aborts_with_named_chunk(self):
        faults = FaultPlan([Fault(chunk=2, kind="permanent")])
        with pytest.raises(ChunkFailure) as excinfo:
            run_chunks(_tasks(), faults=faults)
        assert "chunk 2" in str(excinfo.value)
        report = excinfo.value.report
        assert report.failure is not None and "chunk 2" in report.failure
        assert report.chunks[2].status == "failed"
        # chunks before the failure completed and are accounted
        assert report.completed == 2

    def test_exhausted_retries_abort(self):
        faults = FaultPlan([Fault(chunk=0, kind="transient", attempts=())])
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(ChunkFailure, match="exhausted 2 attempts"):
            run_chunks(_tasks(), policy=policy, faults=faults)

    def test_kill_and_hang_map_to_transient_in_process(self):
        # in-process execution cannot kill or hang the driver; both kinds
        # surface as retryable worker errors instead
        faults = FaultPlan(
            [
                Fault(chunk=0, kind="kill", attempts=(1,)),
                Fault(chunk=1, kind="hang", attempts=(1,)),
            ]
        )
        tasks = _tasks()
        results, report = run_chunks(tasks, faults=faults)
        assert results == _expected(tasks)
        assert report.retried == 2

    def test_corrupt_payload_caught_by_validator_and_retried(self):
        faults = FaultPlan([Fault(chunk=3, kind="corrupt", attempts=(1,))])
        tasks = _tasks()
        results, report = run_chunks(
            tasks, faults=faults, validate=_validate_length
        )
        assert results == _expected(tasks)
        assert report.retried == 1
        assert "CorruptResultError" in report.chunks[3].errors[0]
        retries = [
            e for e in report.events if e["name"] == "resilience.retry"
        ]
        assert len(retries) == 1
        assert retries[0]["attrs"]["chunk"] == 3

    def test_corrupt_payload_without_validator_passes_through(self):
        # the validator is the contract: without one, corruption is silent
        faults = FaultPlan([Fault(chunk=0, kind="corrupt", attempts=(1,))])
        tasks = _tasks(n_chunks=1)
        results, _ = run_chunks(tasks, faults=faults)
        assert len(results[0]) == tasks[0].size - 1


class TestRunChunksParallel:
    def test_matches_serial_under_transient_faults(self):
        tasks = _tasks(n_chunks=6)
        faults = FaultPlan(
            [
                Fault(chunk=0, kind="transient", attempts=(1,)),
                Fault(chunk=4, kind="transient", attempts=(1,)),
            ]
        )
        results, report = run_chunks(tasks, workers=2, faults=faults)
        assert results == _expected(tasks)
        assert report.retried == 2

    def test_killed_worker_restarts_pool(self):
        tasks = _tasks(n_chunks=5)
        faults = FaultPlan([Fault(chunk=1, kind="kill", attempts=(1,))])
        results, report = run_chunks(tasks, workers=2, faults=faults)
        assert results == _expected(tasks)
        assert report.pool_restarts >= 1
        restarts = [
            e for e in report.events if e["name"] == "resilience.pool_restart"
        ]
        assert len(restarts) == report.pool_restarts

    def test_repeated_pool_breakage_degrades_to_serial(self):
        tasks = _tasks(n_chunks=4)
        faults = FaultPlan([Fault(chunk=2, kind="kill", attempts=(1,))])
        policy = RetryPolicy(max_pool_restarts=0)
        results, report = run_chunks(
            tasks, workers=2, policy=policy, faults=faults
        )
        assert results == _expected(tasks)
        assert report.degraded
        degraded = [
            e for e in report.events if e["name"] == "resilience.degraded"
        ]
        assert len(degraded) == 1
        assert degraded[0]["attrs"]["remaining_chunks"] >= 1

    def test_hang_hits_chunk_timeout_and_retries(self):
        tasks = _tasks(n_chunks=3)
        faults = FaultPlan([Fault(chunk=0, kind="hang", attempts=(1,))])
        policy = RetryPolicy(chunk_timeout=0.5)
        results, report = run_chunks(
            tasks, workers=2, policy=policy, faults=faults
        )
        assert results == _expected(tasks)
        assert report.chunks[0].attempts == 2
        assert any("chunk_timeout" in e for e in report.chunks[0].errors)

    def test_out_of_order_completion_returns_in_task_order(self):
        seen = []
        tasks = _tasks(n_chunks=8, chunk_len=2)
        results, _ = run_chunks(
            tasks,
            workers=4,
            on_chunk=lambda task, record, payload: seen.append(task.index),
        )
        assert results == _expected(tasks)
        assert sorted(seen) == list(range(8))


class TestJournalResume:
    def test_resume_after_abort_skips_completed_chunks(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        tasks = _tasks(n_chunks=5)
        faults = FaultPlan([Fault(chunk=3, kind="permanent")])

        with pytest.raises(ChunkFailure):
            run_chunks(tasks, journal=Journal.open(path, "fp"), faults=faults)
        assert path.exists()

        journal = Journal.open(path, "fp")
        assert set(journal.completed) == {0, 1, 2}

        statuses = []
        results, report = run_chunks(
            tasks,
            journal=journal,
            on_chunk=lambda task, record, payload: statuses.append(
                record.status
            ),
        )
        assert results == _expected(tasks)
        assert report.resumed == 3
        assert statuses.count("resumed") == 3
        assert report.completed == 5

    def test_resumed_results_identical_to_clean_run(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        tasks = _tasks(n_chunks=4)
        clean, _ = run_chunks(tasks)

        with pytest.raises(ChunkFailure):
            run_chunks(
                tasks,
                journal=Journal.open(path, "fp"),
                faults=FaultPlan([Fault(chunk=2, kind="permanent")]),
            )
        resumed, report = run_chunks(tasks, journal=Journal.open(path, "fp"))
        assert resumed == clean
        assert report.resumed == 2


@pytest.fixture(scope="module")
def resilience_scale():
    return get_scale("ci").with_overrides(
        name="resilience-test", trace_length=500, n_train=6, n_validation=3
    )


@pytest.fixture(scope="module")
def clean_campaign(resilience_scale):
    return run_campaign(
        Simulator(), scale=resilience_scale, benchmarks=["gzip"]
    )


def _assert_campaigns_bitwise_equal(campaign, other, benchmarks=("gzip",)):
    for bench in benchmarks:
        for split in ("train", "validation"):
            ours = campaign.dataset(bench, split).metrics
            theirs = other.dataset(bench, split).metrics
            assert np.array_equal(ours["bips"], theirs["bips"])
            assert np.array_equal(ours["watts"], theirs["watts"])


class TestCampaignResilience:
    def test_fault_injected_parallel_matches_serial(
        self, resilience_scale, clean_campaign
    ):
        """Worker exceptions on the first attempt of two chunks must not
        perturb the assembled datasets (acceptance criterion)."""
        faults = FaultPlan(
            [
                Fault(chunk=0, kind="transient", attempts=(1,)),
                Fault(chunk=4, kind="transient", attempts=(1,)),
            ]
        )
        campaign = run_campaign(
            Simulator(),
            scale=resilience_scale,
            benchmarks=["gzip"],
            workers=2,
            resilience=ResilienceConfig(faults=faults),
        )
        _assert_campaigns_bitwise_equal(campaign, clean_campaign)
        assert campaign.run_report.retried == 2
        assert campaign.run_report.failure is None

    def test_permanent_failure_names_chunk_in_report(self, resilience_scale):
        faults = FaultPlan([Fault(chunk=2, kind="permanent")])
        with pytest.raises(ChunkFailure) as excinfo:
            run_campaign(
                Simulator(),
                scale=resilience_scale,
                benchmarks=["gzip"],
                resilience=ResilienceConfig(faults=faults),
            )
        assert "chunk 2" in excinfo.value.report.failure
        assert "gzip" in excinfo.value.report.failure

    def test_kill_then_resume_bitwise_identical(
        self, resilience_scale, clean_campaign, tmp_path
    ):
        """The acceptance scenario: a chunk killed mid-run aborts the
        campaign, and resuming from the journal completes with results
        bitwise-identical to an uninterrupted serial run."""
        journal_path = tmp_path / "campaign.journal.jsonl"
        kill = ResilienceConfig(
            policy=RetryPolicy(max_attempts=1, max_pool_restarts=0),
            journal_path=journal_path,
            faults=FaultPlan([Fault(chunk=5, kind="kill", attempts=())]),
        )
        with pytest.raises(ChunkFailure):
            run_campaign(
                Simulator(),
                scale=resilience_scale,
                benchmarks=["gzip"],
                workers=2,
                resilience=kill,
            )
        assert journal_path.exists()

        resumed = run_campaign(
            Simulator(),
            scale=resilience_scale,
            benchmarks=["gzip"],
            workers=2,
            resilience=ResilienceConfig(
                journal_path=journal_path, resume=True
            ),
        )
        _assert_campaigns_bitwise_equal(resumed, clean_campaign)
        assert resumed.run_report.resumed >= 1
        # success removes the journal
        assert not journal_path.exists()

    def test_journal_ignored_across_layout_changes(
        self, resilience_scale, tmp_path
    ):
        """A journal written for one campaign shape must not leak results
        into a differently-shaped campaign: an explicit resume fails
        loudly naming both fingerprints, and a non-resume run discards
        the stale journal and restarts."""
        journal_path = tmp_path / "campaign.journal.jsonl"
        with pytest.raises(ChunkFailure):
            run_campaign(
                Simulator(),
                scale=resilience_scale,
                benchmarks=["gzip"],
                resilience=ResilienceConfig(
                    policy=RetryPolicy(max_attempts=1),
                    journal_path=journal_path,
                    faults=FaultPlan([Fault(chunk=8, kind="permanent")]),
                ),
            )
        other_scale = resilience_scale.with_overrides(
            name="resilience-other", n_train=7
        )
        with pytest.raises(JournalFingerprintError) as excinfo:
            run_campaign(
                Simulator(),
                scale=other_scale,
                benchmarks=["gzip"],
                resilience=ResilienceConfig(
                    journal_path=journal_path, resume=True
                ),
            )
        # The one-line error names both fingerprints (16 hex chars each).
        assert str(excinfo.value).count("fingerprint") >= 2
        campaign = run_campaign(
            Simulator(),
            scale=other_scale,
            benchmarks=["gzip"],
            resilience=ResilienceConfig(journal_path=journal_path),
        )
        assert campaign.run_report.resumed == 0
        assert len(campaign.train_points) == 7


class TestSweepResilience:
    @pytest.fixture(scope="class")
    def predictor_and_source(self, ctx):
        return ctx.predictor("gzip"), ctx.exploration_source()

    @staticmethod
    def _reducers():
        from repro.harness import CollectReducer, TopKReducer

        return [
            CollectReducer(metrics=("bips", "watts")),
            TopKReducer(metric="efficiency", k=3),
        ]

    def test_fault_injected_sweep_matches_serial(self, predictor_and_source):
        from repro.harness.sweep import run_sweep

        predictor, source = predictor_and_source
        serial = run_sweep(predictor, source, self._reducers(), block_size=64)

        faults = FaultPlan(
            [
                Fault(chunk=0, kind="transient", attempts=(1,)),
                Fault(chunk=2, kind="corrupt", attempts=(1,)),
            ]
        )
        resilient = run_sweep(
            predictor,
            source,
            self._reducers(),
            block_size=64,
            workers=2,
            resilience=ResilienceConfig(faults=faults),
        )
        assert resilient.run_report.retried == 2
        s_collected, s_best = serial.results
        r_collected, r_best = resilient.results
        assert np.array_equal(
            s_collected.metric("bips"), r_collected.metric("bips")
        )
        assert np.array_equal(
            s_collected.metric("watts"), r_collected.metric("watts")
        )
        assert np.array_equal(s_best.indices, r_best.indices)
        assert np.array_equal(s_best.efficiency, r_best.efficiency)

    def test_sweep_journal_resume_matches_serial(
        self, predictor_and_source, tmp_path
    ):
        from repro.harness.sweep import run_sweep

        predictor, source = predictor_and_source
        serial = run_sweep(predictor, source, self._reducers(), block_size=64)

        journal_path = tmp_path / "sweep.journal.jsonl"
        with pytest.raises(ChunkFailure):
            run_sweep(
                predictor,
                source,
                self._reducers(),
                block_size=64,
                resilience=ResilienceConfig(
                    policy=RetryPolicy(max_attempts=1),
                    journal_path=journal_path,
                    faults=FaultPlan([Fault(chunk=3, kind="permanent")]),
                ),
            )
        assert journal_path.exists()

        resumed = run_sweep(
            predictor,
            source,
            self._reducers(),
            block_size=64,
            resilience=ResilienceConfig(
                journal_path=journal_path, resume=True
            ),
        )
        assert resumed.run_report.resumed >= 1
        s_collected, s_best = serial.results
        r_collected, r_best = resumed.results
        assert np.array_equal(
            s_collected.metric("bips"), r_collected.metric("bips")
        )
        assert np.array_equal(s_best.indices, r_best.indices)
        assert not journal_path.exists()
