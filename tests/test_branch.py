"""Tests for branch predictors."""

import pytest

from repro.simulator import (
    BimodalPredictor,
    GSharePredictor,
    OneBitBHT,
    PredictorConfigError,
    build_predictor,
)


class TestOneBitBHT:
    def test_learns_constant_branch(self):
        predictor = OneBitBHT(entries=16)
        outcomes = [predictor.predict_and_update(3, True) for _ in range(10)]
        assert all(outcomes)  # initialized taken, stays correct

    def test_learns_after_one_flip(self):
        predictor = OneBitBHT(entries=16)
        assert predictor.predict_and_update(3, False) is False  # mispredict
        assert predictor.predict_and_update(3, False) is True

    def test_alternating_pattern_always_wrong(self):
        predictor = OneBitBHT(entries=16)
        predictor.predict_and_update(3, False)  # table now False
        results = [
            predictor.predict_and_update(3, i % 2 == 0) for i in range(10)
        ]
        assert not any(results)  # 1-bit thrashes on alternation

    def test_site_aliasing_by_modulo(self):
        predictor = OneBitBHT(entries=4)
        predictor.predict_and_update(1, False)
        # site 5 aliases onto entry 1
        assert predictor.predict_and_update(5, False) is True

    def test_stats(self):
        predictor = OneBitBHT(entries=16)
        predictor.predict_and_update(0, True)
        predictor.predict_and_update(0, False)
        assert predictor.stats.predictions == 2
        assert predictor.stats.mispredictions == 1
        assert predictor.stats.mispredict_rate == 0.5

    def test_rejects_bad_entries(self):
        with pytest.raises(PredictorConfigError):
            OneBitBHT(entries=0)


class TestBimodal:
    def test_hysteresis_survives_single_flip(self):
        predictor = BimodalPredictor(entries=16)
        for _ in range(4):
            predictor.predict_and_update(2, True)   # saturate to 3
        predictor.predict_and_update(2, False)       # 3 -> 2, still taken
        assert predictor.predict_and_update(2, True) is True

    def test_counter_saturates(self):
        predictor = BimodalPredictor(entries=16)
        for _ in range(10):
            predictor.predict_and_update(2, False)
        assert predictor._table[2] == 0

    def test_bimodal_beats_1bit_on_loop_pattern(self):
        # TTTTTN repeated: bimodal mispredicts once per iteration, 1-bit twice
        pattern = ([True] * 5 + [False]) * 40
        bimodal = BimodalPredictor(entries=4)
        one_bit = OneBitBHT(entries=4)
        bimodal_miss = sum(not bimodal.predict_and_update(0, t) for t in pattern)
        onebit_miss = sum(not one_bit.predict_and_update(0, t) for t in pattern)
        assert bimodal_miss < onebit_miss


class TestGShare:
    def test_learns_history_dependent_pattern(self):
        # strictly alternating outcomes are perfectly predictable from
        # 1 bit of global history once trained
        predictor = GSharePredictor(entries=256, history_bits=4)
        pattern = [bool(i % 2) for i in range(400)]
        misses = sum(not predictor.predict_and_update(7, t) for t in pattern)
        assert misses < 30  # training transient only

    def test_rejects_bad_history(self):
        with pytest.raises(PredictorConfigError):
            GSharePredictor(history_bits=-1)

    def test_history_register_bounded(self):
        predictor = GSharePredictor(entries=64, history_bits=3)
        for i in range(100):
            predictor.predict_and_update(i % 5, bool(i % 3))
        assert 0 <= predictor._history < 8


class TestFactory:
    def test_default_is_table3_bht(self):
        predictor = build_predictor()
        assert isinstance(predictor, OneBitBHT)
        assert predictor.entries == 16 * 1024

    def test_by_name(self):
        assert isinstance(build_predictor("bimodal-2bit"), BimodalPredictor)
        assert isinstance(build_predictor("gshare"), GSharePredictor)

    def test_unknown_name(self):
        with pytest.raises(PredictorConfigError, match="choices"):
            build_predictor("tage")
