"""Tests for the mechanistic interval performance model."""

import numpy as np
import pytest

from repro.baselines import IntervalModel, TraceStatistics, interval_model_for
from repro.baselines.interval import _interpolate_curve
from repro.simulator import Simulator, baseline_config
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def gzip_model():
    trace = generate_trace(get_profile("gzip"), 4000, seed=3)
    return interval_model_for(trace), trace


class TestTraceStatistics:
    def test_fractions_sum_sensibly(self, gzip_model):
        model, trace = gzip_model
        stats = model.statistics
        assert stats.instructions == len(trace)
        total = stats.load_fraction + stats.store_fraction + stats.branch_fraction
        assert 0 < total < 1

    def test_mispredict_rate_in_unit_interval(self, gzip_model):
        model, _ = gzip_model
        assert 0 <= model.statistics.mispredict_rate <= 1

    def test_curves_monotone(self, gzip_model):
        model, _ = gzip_model
        curve = model.statistics.data_miss_curve
        values = [curve[k] for k in sorted(curve)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestInterpolation:
    CURVE = {64: 0.5, 256: 0.25, 1024: 0.05}

    def test_exact_keys(self):
        assert _interpolate_curve(self.CURVE, 256) == pytest.approx(0.25)

    def test_clamps_below_and_above(self):
        assert _interpolate_curve(self.CURVE, 1) == 0.5
        assert _interpolate_curve(self.CURVE, 10**6) == 0.05

    def test_interpolates_between(self):
        mid = _interpolate_curve(self.CURVE, 128)
        assert 0.25 < mid < 0.5


class TestPrediction:
    def test_cpi_positive(self, gzip_model):
        model, _ = gzip_model
        assert model.cycles_per_instruction(baseline_config()) > 0

    def test_bips_responds_to_depth(self, gzip_model):
        model, _ = gzip_model
        deep = model.predict_bips(baseline_config().with_overrides(depth_fo4=12.0))
        shallow = model.predict_bips(baseline_config().with_overrides(depth_fo4=30.0))
        assert deep != shallow

    def test_bigger_l2_helps_memory_bound_workload(self):
        trace = generate_trace(get_profile("mcf"), 4000, seed=3)
        model = interval_model_for(trace)
        small = model.predict_bips(baseline_config().with_overrides(l2_mb=0.25))
        large = model.predict_bips(baseline_config().with_overrides(l2_mb=4.0))
        assert large > small

    def test_tracks_simulator_for_compute_bound(self, gzip_model):
        model, trace = gzip_model
        config = baseline_config()
        predicted = model.predict_bips(config)
        actual = Simulator().simulate(trace, config).bips
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_rank_correlation_with_simulator(self, gzip_model):
        """Zero-training mechanism should still rank designs sensibly."""
        from repro.designspace import exploration_space, sample_uar
        from repro.regression import spearman
        from repro.simulator import config_from_point

        model, trace = gzip_model
        space = exploration_space()
        simulator = Simulator()
        points = sample_uar(space, 20, seed=5)
        predicted, actual = [], []
        for point in points:
            config = config_from_point(space, point)
            predicted.append(model.predict_bips(config))
            actual.append(simulator.simulate(trace, config).bips)
        assert spearman(np.array(predicted), np.array(actual)) > 0.6
