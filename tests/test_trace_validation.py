"""Tests for trace-versus-profile conformance validation."""

import dataclasses

import pytest

from repro.workloads import (
    BENCHMARK_NAMES,
    generate_trace,
    get_profile,
    validate_trace,
)


class TestSuiteConformance:
    @pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
    def test_suite_traces_conform(self, bench_name):
        profile = get_profile(bench_name)
        trace = generate_trace(profile, 20000, seed=5)
        report = validate_trace(trace, profile)
        assert report.passed, "\n".join(str(c) for c in report.failures())

    def test_report_structure(self):
        profile = get_profile("gzip")
        trace = generate_trace(profile, 10000, seed=5)
        report = validate_trace(trace, profile)
        names = {check.name for check in report.checks}
        assert "mix_int" in names
        assert "branch_persistence" in names
        assert "data_survival_1024" in names
        assert report.benchmark == "gzip"

    def test_as_dict(self):
        profile = get_profile("gzip")
        trace = generate_trace(profile, 5000, seed=5)
        payload = validate_trace(trace, profile).as_dict()
        for entry in payload.values():
            assert {"expected", "observed", "tolerance"} <= set(entry)


class TestMismatchDetection:
    def test_wrong_profile_fails_mix(self):
        # a gzip trace should not conform to the mcf profile
        gzip_trace = generate_trace(get_profile("gzip"), 20000, seed=5)
        report = validate_trace(gzip_trace, get_profile("mcf"))
        assert not report.passed
        failing = {check.name for check in report.failures()}
        assert any(name.startswith("mix_") for name in failing)

    def test_wrong_reuse_profile_fails_survival(self):
        # mcf's memory behaviour should not pass as gzip's
        mcf_trace = generate_trace(get_profile("mcf"), 20000, seed=5)
        report = validate_trace(mcf_trace, get_profile("gzip"))
        failing = {check.name for check in report.failures()}
        assert any(name.startswith("data_survival") for name in failing)

    def test_perturbed_branch_behaviour_detected(self):
        profile = get_profile("mesa")  # highly predictable branches
        trace = generate_trace(profile, 20000, seed=5)
        claimed = dataclasses.replace(profile, unpredictable_rate=0.9)
        report = validate_trace(trace, claimed)
        failing = {check.name for check in report.failures()}
        assert "branch_persistence" in failing

    def test_check_str_mentions_status(self):
        profile = get_profile("gzip")
        trace = generate_trace(profile, 5000, seed=5)
        report = validate_trace(trace, profile)
        assert any("[ok]" in str(check) for check in report.checks)
