"""Tests for the pipeline depth study (Section 5)."""

import numpy as np
import pytest

from repro.studies import depth


class TestOriginalAnalysis:
    def test_sweep_covers_exploration_depths(self, ctx):
        analysis = depth.original_analysis(ctx, "gzip")
        assert analysis.depths == [12, 15, 18, 21, 24, 27, 30]
        assert analysis.efficiency.shape == (7,)

    def test_non_depth_parameters_pinned_at_baseline(self, ctx):
        analysis = depth.original_analysis(ctx, "gzip")
        baseline = ctx.baseline
        for point in analysis.points:
            for name in point.names:
                if name != "depth":
                    assert point[name] == baseline[name]

    def test_relative_peaks_at_one(self, ctx):
        analysis = depth.original_analysis(ctx, "ammp")
        relative = analysis.relative()
        assert relative.max() == pytest.approx(1.0)
        assert analysis.optimal_depth in analysis.depths


class TestEnhancedAnalysis:
    def test_distributions_per_depth(self, ctx):
        analysis = depth.enhanced_analysis(ctx, "mcf")
        assert set(analysis.distributions) == set(analysis.depths)
        for stats in analysis.distributions.values():
            assert stats.n > 0

    def test_bound_points_live_at_their_depth(self, ctx):
        analysis = depth.enhanced_analysis(ctx, "mcf")
        for d, point in analysis.bound_points.items():
            assert point["depth"] == d

    def test_bound_efficiency_is_distribution_max(self, ctx):
        analysis = depth.enhanced_analysis(ctx, "gzip")
        for d, stats in analysis.distributions.items():
            bound = analysis.bound_efficiency[d]
            assert bound >= stats.whisker_high - 1e-12

    def test_bound_relative_to_best_bound_max_one(self, ctx):
        analysis = depth.enhanced_analysis(ctx, "gzip")
        relative = analysis.bound_relative_to_best_bound()
        assert max(relative.values()) == pytest.approx(1.0)

    def test_exceed_fraction_in_unit_interval(self, ctx):
        analysis = depth.enhanced_analysis(ctx, "ammp")
        for fraction in analysis.exceed_baseline_fraction.values():
            assert 0.0 <= fraction <= 1.0


class TestSuiteSummary:
    def test_shapes(self, ctx):
        summary = depth.suite_depth_summary(ctx)
        assert len(summary.original_relative) == len(summary.depths)
        assert set(summary.distributions) == set(summary.depths)
        assert set(summary.per_benchmark) == set(ctx.benchmarks)

    def test_original_line_normalized(self, ctx):
        summary = depth.suite_depth_summary(ctx)
        assert summary.original_relative.max() <= 1.0 + 1e-9

    def test_enhanced_bound_exceeds_original_line(self, ctx):
        # the whole-space max should beat the constrained line somewhere
        summary = depth.suite_depth_summary(ctx)
        best_bound = max(summary.bound_relative.values())
        assert best_bound > max(summary.original_relative) - 0.05


class TestCacheDistribution:
    def test_fractions_sum_to_one(self, ctx):
        distribution = depth.top_percentile_cache_distribution(ctx, percentile=90)
        for d, shares in distribution.items():
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_sizes_are_space_levels(self, ctx):
        distribution = depth.top_percentile_cache_distribution(ctx, percentile=90)
        sizes = set(ctx.exploration_space.parameter("dl1_kb").values)
        for shares in distribution.values():
            assert set(shares) == sizes

    def test_invalid_percentile(self, ctx):
        with pytest.raises(ValueError):
            depth.top_percentile_cache_distribution(ctx, percentile=0)


class TestValidation:
    def test_validation_shapes(self, ctx):
        validation = depth.validate_depth_study(ctx, benchmarks=["gzip", "mcf"])
        n = len(validation.depths)
        assert validation.predicted_original.shape == (n,)
        assert validation.simulated_original.shape == (n,)
        assert validation.predicted_enhanced.shape == (n,)
        assert validation.simulated_enhanced.shape == (n,)

    def test_simulated_relative_peaks_at_one(self, ctx):
        validation = depth.validate_depth_study(ctx, benchmarks=["gzip"])
        assert validation.simulated_original.max() == pytest.approx(1.0)

    def test_decomposition_positive(self, ctx):
        validation = depth.validate_depth_study(ctx, benchmarks=["gzip"])
        for analysis in ("original", "enhanced"):
            assert (validation.predicted_bips[analysis] > 0).all()
            assert (validation.simulated_watts[analysis] > 0).all()

    def test_predicted_and_simulated_correlate(self, ctx):
        # high-level trend agreement (Figure 6's claim), loose at test scale
        validation = depth.validate_depth_study(ctx, benchmarks=["gzip", "gcc"])
        correlation = np.corrcoef(
            validation.predicted_original, validation.simulated_original
        )[0, 1]
        assert correlation > 0.5
